//! The paper's Figure 2.1: direct spatial search in PSQL with dual
//! alphanumeric + pictorial output.
//!
//! "Find all the cities in a given area" — the area entered by
//! coordinates (here the Eastern US window), filtered by population,
//! with the qualifying cities displayed both as a table and highlighted
//! on the map.
//!
//! Run with: `cargo run --example psql_cities`

use packed_rtree::psql::database::PictorialDatabase;
use packed_rtree::psql::exec::query;
use packed_rtree::psql::render::render;

fn main() {
    let db = PictorialDatabase::with_us_map();

    let text = "select city, state, population, loc \
                from cities \
                on us-map \
                at loc covered-by {82.5 +- 17.5, 25 +- 20} \
                where population > 450000";
    println!("PSQL> {text}\n");

    let result = query(&db, text).expect("valid query");

    // Channel 1: the "standard terminal" (Figure 2.1a).
    println!("{result}");

    // Channel 2: the "graphics monitor" (Figure 2.1b) — qualifying
    // cities highlighted with their names on the picture.
    let map = render(
        db.picture("us-map").expect("picture exists"),
        &result.highlights,
        110,
        28,
    );
    println!("{map}");

    // A second query showing a pictorial function: big lakes by area.
    let text2 = "select lake, area(loc), volume from lakes where area(loc) >= 4";
    println!("PSQL> {text2}\n");
    let result2 = query(&db, text2).expect("valid query");
    println!("{result2}");
}
