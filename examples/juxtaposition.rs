//! The paper's Figure 2.2 and nested mappings: juxtaposition of
//! dissimilar pictures over one geographic area ("geographic join") and
//! location binding across query levels.
//!
//! Run with: `cargo run --example juxtaposition`

use packed_rtree::psql::database::PictorialDatabase;
use packed_rtree::psql::exec::query;
use packed_rtree::psql::join::{nested_loop_join, rtree_join, JoinStats};
use packed_rtree::psql::SpatialOp;

fn main() {
    let db = PictorialDatabase::with_us_map();

    // Figure 2.2: cities juxtaposed with time zones — information from
    // two pictures of the same area combined by spatial relationship.
    let text = "select city, zone, hour-diff \
                from cities, time-zones \
                on us-map, time-zone-map \
                at cities.loc covered-by time-zones.loc";
    println!("PSQL> {text}\n");
    let result = query(&db, text).expect("valid query");
    println!("{result}");

    // The engine ran this as a simultaneous descent of both R-trees;
    // show how much that pruning buys over the nested-loop baseline.
    let cities_tree = db.picture("us-map").unwrap().tree();
    let zones_tree = db.picture("time-zone-map").unwrap().tree();
    let mut fast = JoinStats::default();
    let mut slow = JoinStats::default();
    rtree_join(cities_tree, zones_tree, SpatialOp::CoveredBy, &mut fast);
    nested_loop_join(cities_tree, zones_tree, SpatialOp::CoveredBy, &mut slow);
    println!(
        "simultaneous R-tree search: {} node pairs; nested loop: {} pairs\n",
        fast.node_pairs_visited, slow.node_pairs_visited
    );

    // The paper's nested mapping: lakes covered by some Eastern state,
    // the inner mapping's locations binding the outer at-clause.
    let text2 = "select lake, area, lakes.loc \
                 from lakes \
                 on lake-map \
                 at lakes.loc covered-by \
                 (select states.loc from states on state-map \
                  at states.loc covered-by {78 +- 22, 25 +- 25})";
    println!("PSQL> {text2}\n");
    let result2 = query(&db, text2).expect("valid query");
    println!("{result2}");

    // Indirect spatial search (§1 requirement 3): find by alphanumeric
    // attribute, then use the association to place objects on the map.
    let text3 = "select city, population, loc from cities where population > 9000000";
    println!("PSQL> {text3}\n");
    let result3 = query(&db, text3).expect("valid query");
    println!("{result3}");
    println!(
        "highlighted on us-map: {:?}",
        result3
            .highlights
            .iter()
            .map(|h| h.label.as_str())
            .collect::<Vec<_>>()
    );
}
