//! The paper's theoretical results, demonstrated through the public API:
//! Lemma 3.1 (rotation to distinct x), Theorem 3.2 (zero-overlap packing
//! of points), Theorem 3.3 (impossible for regions).
//!
//! Run with: `cargo run --example theory`

use packed_rtree::geom::{transform, Point};
use packed_rtree::pack::counterexample::{is_counterexample, pinwheel};
use packed_rtree::pack::zero_overlap::zero_overlap_partition;

fn main() {
    // Lemma 3.1 on the hardest input: a vertical line (F(S) = 1).
    let line: Vec<Point> = (0..16).map(|i| Point::new(3.0, i as f64)).collect();
    println!(
        "Lemma 3.1: F(S) = {} for 16 collinear points sharing x = 3",
        transform::distinct_x_count(&line)
    );
    let angle = transform::rotation_with_distinct_x(&line).expect("lemma guarantees");
    let rotated = transform::rotate_all(&line, angle);
    println!(
        "           after rotating by {angle:.4} rad: F(S) = {} = |S|",
        transform::distinct_x_count(&rotated)
    );

    // Theorem 3.2: the constructive zero-overlap partition.
    let witness = zero_overlap_partition(&line, 4).expect("distinct points");
    println!(
        "\nTheorem 3.2: {} groups of <= 4, pairwise disjoint MBRs: {}",
        witness.groups.len(),
        witness.is_disjoint()
    );
    for (i, mbr) in witness.rotated_mbrs.iter().enumerate() {
        println!("  group {i}: {mbr}");
    }

    // Theorem 3.3: the pinwheel of disjoint regions that cannot be packed
    // with zero overlap.
    let regions = pinwheel();
    println!(
        "\nTheorem 3.3: pinwheel of {} disjoint regions",
        regions.len()
    );
    for (i, r) in regions.iter().enumerate() {
        println!("  R{i} = {r}");
    }
    println!(
        "  zero-overlap grouping exists: {}",
        !is_counterexample(&regions, 4)
    );
    println!("\nHence PACK aims to *minimize* coverage and overlap rather than");
    println!("chase an unattainable zero — and skips the impractical rotation.");
}
