//! Quick start: bulk-load an R-tree with PACK, search it, and compare
//! against Guttman's dynamic INSERT.
//!
//! Run with: `cargo run --example quickstart`

use packed_rtree::geom::{Point, Rect};
use packed_rtree::index::{ItemId, RTree, RTreeConfig, SearchStats, SplitPolicy};
use packed_rtree::pack::pack;
use packed_rtree::workload::{points, queries, rng, PAPER_UNIVERSE};

fn main() {
    // The paper's workload: uniformly random points in [0, 1000]^2.
    let mut rng = rng(1985);
    let pts = points::uniform(&mut rng, &PAPER_UNIVERSE, 900);
    let items = points::as_items(&pts);

    // Bulk-load with the paper's PACK algorithm (nearest-neighbour
    // grouping over ascending-x order)...
    let packed = pack(items.clone(), RTreeConfig::PAPER);

    // ...and build the same data dynamically with Guttman INSERT.
    let mut dynamic = RTree::new(RTreeConfig::PAPER.with_split(SplitPolicy::Linear));
    for (mbr, id) in items {
        dynamic.insert(mbr, id);
    }

    println!("== structure (Table 1's C, O, D, N) ==");
    for (name, tree) in [("PACK", &packed), ("INSERT", &dynamic)] {
        let m = tree.metrics();
        println!(
            "{name:7} coverage={:9.0}  overlap={:8.0}  depth={}  nodes={}",
            m.coverage, m.overlap, m.depth, m.nodes
        );
    }

    // The paper's query: "Is point (x, y) contained in the database?"
    let query_points = queries::point_queries(&mut rng, &PAPER_UNIVERSE, 1000);
    let mut packed_stats = SearchStats::default();
    let mut dynamic_stats = SearchStats::default();
    for &q in &query_points {
        packed.point_query(q, &mut packed_stats);
        dynamic.point_query(q, &mut dynamic_stats);
    }
    println!("\n== search cost (Table 1's A, 1000 random point queries) ==");
    println!(
        "PACK    A = {:.3} nodes/query",
        packed_stats.avg_nodes_visited()
    );
    println!(
        "INSERT  A = {:.3} nodes/query",
        dynamic_stats.avg_nodes_visited()
    );

    // Window search: everything within a 100x100 window.
    let window = Rect::new(450.0, 450.0, 550.0, 550.0);
    let mut stats = SearchStats::default();
    let hits = packed.search_within(&window, &mut stats);
    println!(
        "\nwindow {window}: {} points found visiting {} of {} nodes",
        hits.len(),
        stats.nodes_visited,
        packed.node_count()
    );

    // Nearest-neighbour search (the 1995 follow-up, cheap on packed trees).
    let q = Point::new(500.0, 500.0);
    let mut nn_stats = SearchStats::default();
    let neighbors = packed.nearest_neighbors(q, 5, &mut nn_stats);
    println!("\n5 nearest to {q}:");
    for n in neighbors {
        println!("  {} at distance {:.2}", n.item, n.distance_sq.sqrt());
    }

    // Packed trees remain ordinary R-trees: dynamic updates still work.
    let mut tree = packed;
    tree.insert(Rect::from_point(q), ItemId(10_000));
    assert!(tree.remove(Rect::from_point(q), ItemId(10_000)));
    println!("\ninsert + delete on the packed tree: ok (tree still valid)");
    tree.validate_with(false).expect("valid after updates");
}
