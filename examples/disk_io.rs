//! Packed R-trees on simulated disk: page layout, buffer pools, and why
//! "R-trees are better in dealing with paging and disk I/O buffering"
//! (§1).
//!
//! Stores a packed and a dynamically built tree in page files (one node
//! per 4 KiB page), then runs the same query workload through LRU buffer
//! pools of varying size, reporting page requests and hit ratios.
//!
//! Run with: `cargo run --example disk_io`

use packed_rtree::index::{RTree, RTreeConfig, SearchStats, SplitPolicy};
use packed_rtree::pack::pack;
use packed_rtree::storage::{BufferPool, DiskRTree, Pager};
use packed_rtree::workload::{points, queries, rng, PAPER_UNIVERSE};

fn main() -> std::io::Result<()> {
    let mut rng = rng(7);
    let pts = points::uniform(&mut rng, &PAPER_UNIVERSE, 5000);
    let items = points::as_items(&pts);

    // Page-filling branching factor (a 4 KiB page holds 102 entries).
    let config = RTreeConfig::with_branching(64);
    let packed = pack(items.clone(), config);
    let mut dynamic = RTree::new(config.with_split(SplitPolicy::Linear));
    for (mbr, id) in items {
        dynamic.insert(mbr, id);
    }

    let windows = queries::window_queries(&mut rng, &PAPER_UNIVERSE, 400, 0.01);

    println!("tree            pages  depth");
    let pager_p = Pager::temp()?;
    let disk_packed = DiskRTree::store(&packed, &pager_p)?;
    println!(
        "PACK            {:5}  {}",
        disk_packed.pages(),
        disk_packed.depth()
    );
    let pager_d = Pager::temp()?;
    let disk_dynamic = DiskRTree::store(&dynamic, &pager_d)?;
    println!(
        "INSERT          {:5}  {}",
        disk_dynamic.pages(),
        disk_dynamic.depth()
    );

    println!("\npool size  tree    page requests  disk reads  hit ratio");
    for pool_size in [4usize, 16, 64, 256] {
        for (name, disk, pager) in [
            ("PACK", &disk_packed, &pager_p),
            ("INSERT", &disk_dynamic, &pager_d),
        ] {
            let pool = BufferPool::new(pager, pool_size);
            let mut stats = SearchStats::default();
            for w in &windows {
                disk.search_within(&pool, w, &mut stats)?;
            }
            let b = pool.stats();
            println!(
                "{pool_size:9}  {name:6}  {:13}  {:10}  {:8.1}%",
                b.hits + b.misses,
                b.misses,
                b.hit_ratio() * 100.0
            );
        }
    }

    println!("\nPacked trees touch fewer pages per query (fewer, fuller nodes),");
    println!("so the same buffer pool goes further — the effect §1 predicts.");
    Ok(())
}
