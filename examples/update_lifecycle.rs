//! §3.4's update problem: a PACKed tree degrades gracefully under
//! Guttman INSERT/DELETE and recovers after re-packing — the paper's
//! proposed "dynamic invocation of the PACK algorithm".
//!
//! Run with: `cargo run --example update_lifecycle`

use packed_rtree::index::{RTreeConfig, SearchStats};
use packed_rtree::pack::{AutoRepack, PackStrategy};
use packed_rtree::workload::{points, queries, rng, PAPER_UNIVERSE};

fn main() {
    let mut rng = rng(42);
    let pts = points::uniform(&mut rng, &PAPER_UNIVERSE, 600);
    let items = points::as_items(&pts);
    let query_points = queries::point_queries(&mut rng, &PAPER_UNIVERSE, 500);

    // Auto-repacking tree: reorganize after churn worth 30% of the data.
    let mut tree = AutoRepack::new(items.clone(), RTreeConfig::PAPER, 0.30)
        .with_strategy(PackStrategy::NearestNeighbor);

    let cost = |t: &AutoRepack| {
        let mut stats = SearchStats::default();
        for &q in &query_points {
            t.point_query(q, &mut stats);
        }
        stats.avg_nodes_visited()
    };

    println!("freshly packed:       A = {:.2} nodes/query", cost(&tree));

    // Churn: repeatedly delete the oldest tenth and insert fresh points.
    let mut next_id = 10_000u64;
    let mut live = items;
    for round in 1..=6 {
        // Delete 60 old points.
        for (mbr, id) in live.drain(..60) {
            assert!(tree.remove(mbr, id));
        }
        // Insert 60 new ones.
        let fresh = points::uniform(&mut rng, &PAPER_UNIVERSE, 60);
        for p in fresh {
            let mbr = packed_rtree::geom::Rect::from_point(p);
            let id = packed_rtree::index::ItemId(next_id);
            next_id += 1;
            tree.insert(mbr, id);
            live.push((mbr, id));
        }
        println!(
            "after churn round {round}: A = {:.2} nodes/query  (repacks so far: {})",
            cost(&tree),
            tree.repacks()
        );
    }

    // Force a final reorganization and compare.
    tree.force_repack();
    println!("after final repack:   A = {:.2} nodes/query", cost(&tree));
    tree.tree().validate_with(false).expect("valid tree");
    println!(
        "\ntree: {} items, {} nodes, depth {}",
        tree.tree().len(),
        tree.tree().node_count(),
        tree.tree().depth()
    );
}
