//! The seeded differential fuzz driver.
//!
//! Generates random pictorial datasets — points, rectangles, segments,
//! including degenerate, touching, and zero-area shapes — plus random
//! query streams, then runs engine and oracle side by side at four
//! levels of the stack (see the crate docs). A divergence is shrunk by
//! greedy deletion to a minimal counterexample and reported with the
//! seed and case index that reproduce it:
//!
//! ```text
//! cargo run --release -p rtree-oracle --bin differential_fuzz
//! ORACLE_FUZZ_SEEDS=42 ORACLE_FUZZ_CASES=500 cargo run ...
//! ```
//!
//! Everything is deterministic in the seed: the generator is the
//! workspace's xoshiro-based [`StdRng`] and the case index counts
//! top-level generations, so `(seed, case_index)` pins one exact input.

use crate::image::TreeImage;
use crate::invariant::{validate_deep, DeepChecks};
use crate::reference;
use pictorial_relational::{Column, ColumnType, Schema, Value};
use psql::functions::FunctionRegistry;
use psql::{exec, parse_query, PictorialDatabase, SpatialOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_geom::{Point, Rect, Region, Segment, SpatialObject};
use rtree_index::{
    BatchScratch, FrozenRTree, ItemId, RTree, RTreeConfig, SearchScratch, SearchStats,
};
use rtree_storage::{BufferPool, DiskRTree, PagedRTree, Pager};

const ALL_OPS: [SpatialOp; 4] = [
    SpatialOp::Covering,
    SpatialOp::CoveredBy,
    SpatialOp::Overlapping,
    SpatialOp::Disjoined,
];

/// One generated input: a dataset plus a query stream.
#[derive(Debug, Clone)]
pub struct Case {
    /// The objects of the picture, in insertion order (object ids are
    /// positions).
    pub objects: Vec<SpatialObject>,
    /// Query windows (degenerate rectangles allowed).
    pub windows: Vec<Rect>,
    /// Point-query probes.
    pub probes: Vec<Point>,
    /// k-nearest-neighbour queries.
    pub knn: Vec<(Point, usize)>,
    /// Which objects the dynamic-tree phase removes (aligned with
    /// `objects`).
    pub remove_mask: Vec<bool>,
    /// Whether to also run the disk representations (`DiskRTree`,
    /// `PagedRTree`) for this case.
    pub check_disk: bool,
    /// Whether the PSQL database packs its picture before querying
    /// (exercises the packed path; otherwise the dynamic insert path).
    pub pack_db: bool,
    /// Mixed read/write split: the first `pack_prefix` objects load
    /// before the pack, the rest arrive as dynamic inserts that buffer
    /// in the delta tree while the frozen main tree keeps serving.
    pub pack_prefix: usize,
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// RNG seed; every divergence reports it back.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: usize,
}

/// A reproducible engine-vs-oracle disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the run that found it.
    pub seed: u64,
    /// Index of the generated case within that run.
    pub case_index: usize,
    /// What disagreed, human-readable.
    pub detail: String,
    /// The (shrunken) input that still reproduces the disagreement.
    pub case: Case,
    /// Whether shrinking reached a fixpoint within its budget.
    pub minimized: bool,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "divergence (seed {}, case {}{}):",
            self.seed,
            self.case_index,
            if self.minimized { ", minimized" } else { "" }
        )?;
        writeln!(f, "  {}", self.detail)?;
        write!(f, "  input: {:?}", self.case)
    }
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/// A coordinate on the fuzz grid: usually an integer in `0..=12`,
/// sometimes a quarter step. Both are exact binary fractions, so they
/// survive the `Display` → PSQL-lexer round trip bit-for-bit and window
/// centre/half-extent arithmetic stays exact.
fn coord(rng: &mut StdRng) -> f64 {
    if rng.gen_bool(0.25) {
        rng.gen_range(0..=48u32) as f64 / 4.0
    } else {
        rng.gen_range(0..=12u32) as f64
    }
}

fn rect(rng: &mut StdRng) -> Rect {
    let (x0, x1) = minmax(coord(rng), coord(rng));
    let (y0, y1) = minmax(coord(rng), coord(rng));
    Rect::new(x0, y0, x1, y1)
}

fn minmax(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn object(rng: &mut StdRng) -> SpatialObject {
    let roll = rng.gen_range(0..100u32);
    if roll < 45 {
        SpatialObject::Point(Point::new(coord(rng), coord(rng)))
    } else if roll < 85 {
        // Rectangle-shaped regions; degenerate rectangles collapse to
        // the honest class so `Region` always has positive area.
        let r = rect(rng);
        if r.width() == 0.0 && r.height() == 0.0 {
            SpatialObject::Point(Point::new(r.min_x, r.min_y))
        } else if r.is_degenerate() {
            SpatialObject::Segment(Segment::new(
                Point::new(r.min_x, r.min_y),
                Point::new(r.max_x, r.max_y),
            ))
        } else {
            SpatialObject::Region(Region::rectangle(r))
        }
    } else {
        SpatialObject::Segment(Segment::new(
            Point::new(coord(rng), coord(rng)),
            Point::new(coord(rng), coord(rng)),
        ))
    }
}

fn generate(rng: &mut StdRng) -> Case {
    let n = rng.gen_range(0..=48usize);
    let objects: Vec<SpatialObject> = (0..n).map(|_| object(rng)).collect();
    let windows = (0..rng.gen_range(1..=6usize)).map(|_| rect(rng)).collect();
    let probes = (0..rng.gen_range(0..=4usize))
        .map(|_| Point::new(coord(rng), coord(rng)))
        .collect();
    let knn = (0..rng.gen_range(0..=3usize))
        .map(|_| {
            let p = Point::new(coord(rng), coord(rng));
            let k = rng.gen_range(0..=n + 2);
            (p, k)
        })
        .collect();
    let remove_mask = (0..n).map(|_| rng.gen_bool(0.4)).collect();
    let pack_prefix = rng.gen_range(0..=n);
    Case {
        objects,
        windows,
        probes,
        knn,
        remove_mask,
        check_disk: rng.gen_bool(0.3),
        pack_db: rng.gen_bool(0.5),
        pack_prefix,
    }
}

// ---------------------------------------------------------------------
// Level 1: geometry predicates
// ---------------------------------------------------------------------

/// All fuzz regions are axis-aligned rectangles, so object-level ground
/// truth for every operator reduces to interval arithmetic on MBRs.
fn check_geom(case: &Case) -> Option<String> {
    for (i, a) in case.objects.iter().enumerate() {
        for (j, b) in case.objects.iter().enumerate() {
            let (ma, mb) = (a.mbr(), b.mbr());
            let over = SpatialOp::Overlapping.eval_objects(a, b);
            let dis = SpatialOp::Disjoined.eval_objects(a, b);
            if over == dis {
                return Some(format!(
                    "objects {i},{j}: overlapping={over} and disjoined={dis} \
                     are not complements ({a:?} vs {b:?})"
                ));
            }
            if over != reference::ref_intersects(&ma, &mb) {
                return Some(format!(
                    "objects {i},{j}: overlapping={over} but interval ground \
                     truth says {} ({a:?} vs {b:?})",
                    !over
                ));
            }
            let cb = SpatialOp::CoveredBy.eval_objects(a, b);
            if cb != reference::ref_covers(&mb, &ma) {
                return Some(format!(
                    "objects {i},{j}: covered-by={cb} but interval ground \
                     truth says {} ({a:?} vs {b:?})",
                    !cb
                ));
            }
            for op in ALL_OPS {
                if op.eval_objects(a, b) != op.flip().eval_objects(b, a) {
                    return Some(format!(
                        "objects {i},{j}: `a {op} b` != `b {} a` ({a:?} vs {b:?})",
                        op.flip()
                    ));
                }
            }
        }
    }
    for (i, obj) in case.objects.iter().enumerate() {
        for (wi, w) in case.windows.iter().enumerate() {
            if let Some(d) = check_window_predicates(obj, w) {
                return Some(format!("object {i}, window {wi}: {d}"));
            }
        }
    }
    None
}

/// Window-level algebra plus exact ground truth where the class allows.
fn check_window_predicates(obj: &SpatialObject, w: &Rect) -> Option<String> {
    let over = SpatialOp::Overlapping.eval_window(obj, w);
    let dis = SpatialOp::Disjoined.eval_window(obj, w);
    let cb = SpatialOp::CoveredBy.eval_window(obj, w);
    let cov = SpatialOp::Covering.eval_window(obj, w);
    let mbr = obj.mbr();
    if over == dis {
        return Some(format!(
            "overlapping={over} and disjoined={dis} are not complements \
             ({obj:?} vs {w:?})"
        ));
    }
    // Containment either way implies a shared point (closed sets are
    // never empty), and overlap never exceeds MBR contact.
    if (cb || cov) && !over {
        return Some(format!(
            "covered-by={cb}/covering={cov} without overlapping ({obj:?} vs {w:?})"
        ));
    }
    if over && !reference::ref_intersects(&mbr, w) {
        return Some(format!(
            "overlapping=true but the MBRs are disjoint ({obj:?} vs {w:?})"
        ));
    }
    // `within_window` is `w.covers(mbr)` for every class: exact ground
    // truth from interval arithmetic.
    if cb != reference::ref_covers(w, &mbr) {
        return Some(format!(
            "covered-by={cb} but interval ground truth says {} ({obj:?} vs {w:?})",
            !cb
        ));
    }
    // Exact `covering` ground truth per class.
    match obj {
        SpatialObject::Point(p) => {
            let expect = w.min_x == p.x && w.max_x == p.x && w.min_y == p.y && w.max_y == p.y;
            if cov != expect {
                return Some(format!(
                    "point covering={cov}, ground truth {expect} ({p:?} vs {w:?})"
                ));
            }
            if over != reference::ref_intersects(&mbr, w) {
                return Some(format!(
                    "point overlapping={over} disagrees with interval test ({p:?} vs {w:?})"
                ));
            }
        }
        SpatialObject::Region(r) => {
            let expect = reference::ref_covers(&r.mbr(), w);
            if cov != expect {
                return Some(format!(
                    "rect-region covering={cov}, ground truth {expect} ({r:?} vs {w:?})"
                ));
            }
            if over != reference::ref_intersects(&mbr, w) {
                return Some(format!(
                    "rect-region overlapping={over} disagrees with interval test ({r:?} vs {w:?})"
                ));
            }
        }
        SpatialObject::Segment(s) => {
            // Exact only for axis-aligned segments; diagonal segments get
            // the implication check above plus: covering requires a
            // degenerate window inside the segment's MBR.
            let horizontal = s.a.y == s.b.y;
            let vertical = s.a.x == s.b.x;
            if horizontal || vertical {
                let expect = if horizontal {
                    let (lo, hi) = minmax(s.a.x, s.b.x);
                    w.min_y == s.a.y && w.max_y == s.a.y && lo <= w.min_x && w.max_x <= hi
                } else {
                    let (lo, hi) = minmax(s.a.y, s.b.y);
                    w.min_x == s.a.x && w.max_x == s.a.x && lo <= w.min_y && w.max_y <= hi
                };
                if cov != expect {
                    return Some(format!(
                        "axis-aligned segment covering={cov}, ground truth {expect} \
                         ({s:?} vs {w:?})"
                    ));
                }
            } else if cov && !(w.is_degenerate() && reference::ref_covers(&mbr, w)) {
                return Some(format!(
                    "diagonal segment claims to cover a non-degenerate or \
                     outside window ({s:?} vs {w:?})"
                ));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Level 2: tree queries
// ---------------------------------------------------------------------

fn sorted(mut ids: Vec<ItemId>) -> Vec<ItemId> {
    ids.sort_unstable_by_key(|&ItemId(i)| i);
    ids
}

fn check_tree(case: &Case) -> Option<String> {
    let items: Vec<(Rect, ItemId)> = case
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| (o.mbr(), ItemId(i as u64)))
        .collect();
    let packed = packed_rtree_core::pack(items.clone(), RTreeConfig::PAPER);
    if let Err(e) = validate_deep(&TreeImage::of_rtree(&packed), DeepChecks::packed()) {
        return Some(format!("packed tree fails validate_deep: {e}"));
    }

    let mut scratch = SearchScratch::new();
    for (wi, w) in case.windows.iter().enumerate() {
        for within in [true, false] {
            let mut stats = SearchStats::default();
            let engine = if within {
                packed.search_within(w, &mut stats)
            } else {
                packed.search_intersecting(w, &mut stats)
            };
            let fast = if within {
                packed.search_within_into(w, &mut scratch).to_vec()
            } else {
                packed.search_intersecting_into(w, &mut scratch).to_vec()
            };
            if engine != fast {
                return Some(format!(
                    "window {wi} within={within}: stats path {engine:?} != \
                     scratch path {fast:?}"
                ));
            }
            let expect = sorted(reference::window_items(&items, w, within));
            let got = sorted(engine);
            if got != expect {
                return Some(format!(
                    "window {wi} within={within}: engine {got:?} != linear scan {expect:?}"
                ));
            }
            let (rec, count) = reference::recursive_window_search(&packed, w, within);
            if sorted(rec) != got {
                return Some(format!(
                    "window {wi} within={within}: recursive reference disagrees"
                ));
            }
            if (
                stats.nodes_visited,
                stats.leaf_nodes_visited,
                stats.items_reported,
            ) != (
                count.nodes_visited,
                count.leaf_nodes_visited,
                count.items_reported,
            ) {
                return Some(format!(
                    "window {wi} within={within}: engine counters \
                     ({}, {}, {}) != recursive counters ({}, {}, {}) — \
                     avg_nodes_visited accounting is off",
                    stats.nodes_visited,
                    stats.leaf_nodes_visited,
                    stats.items_reported,
                    count.nodes_visited,
                    count.leaf_nodes_visited,
                    count.items_reported
                ));
            }
        }
    }

    for (pi, &p) in case.probes.iter().enumerate() {
        let mut stats = SearchStats::default();
        let engine = packed.point_query(p, &mut stats);
        let fast = packed.point_query_into(p, &mut scratch).to_vec();
        if engine != fast {
            return Some(format!(
                "probe {pi}: stats path {engine:?} != scratch path {fast:?}"
            ));
        }
        let expect = sorted(reference::point_items(&items, p));
        let got = sorted(engine);
        if got != expect {
            return Some(format!(
                "probe {pi}: engine {got:?} != linear scan {expect:?}"
            ));
        }
        let (rec, count) = reference::recursive_point_query(&packed, p);
        if sorted(rec) != got {
            return Some(format!("probe {pi}: recursive reference disagrees"));
        }
        if (
            stats.nodes_visited,
            stats.leaf_nodes_visited,
            stats.items_reported,
        ) != (
            count.nodes_visited,
            count.leaf_nodes_visited,
            count.items_reported,
        ) {
            return Some(format!("probe {pi}: point-query counters disagree"));
        }
    }

    for (ki, &(p, k)) in case.knn.iter().enumerate() {
        let mut stats = SearchStats::default();
        let engine: Vec<f64> = packed
            .nearest_neighbors(p, k, &mut stats)
            .iter()
            .map(|n| n.distance_sq)
            .collect();
        let expect = reference::nearest_distances(&items, p, k);
        if engine != expect {
            return Some(format!(
                "knn {ki} (k={k}): engine distances {engine:?} != reference {expect:?}"
            ));
        }
    }

    // Juxtaposition joins: split the dataset in two and join.
    let a_items: Vec<_> = items.iter().copied().step_by(2).collect();
    let b_items: Vec<_> = items.iter().copied().skip(1).step_by(2).collect();
    let tree_a = packed_rtree_core::pack(a_items.clone(), RTreeConfig::PAPER);
    let tree_b = packed_rtree_core::pack(b_items.clone(), RTreeConfig::PAPER);
    for op in ALL_OPS {
        let expect = reference::join_pairs(&a_items, &b_items, op);
        let mut js = psql::join::JoinStats::default();
        let mut fast = psql::join::rtree_join(&tree_a, &tree_b, op, &mut js);
        fast.sort_unstable_by_key(|&(ItemId(x), ItemId(y))| (x, y));
        if fast != expect {
            return Some(format!(
                "join {op}: rtree_join {fast:?} != nested reference {expect:?}"
            ));
        }
        let mut ns = psql::join::JoinStats::default();
        let mut naive = psql::join::nested_loop_join(&tree_a, &tree_b, op, &mut ns);
        naive.sort_unstable_by_key(|&(ItemId(x), ItemId(y))| (x, y));
        if naive != expect {
            return Some(format!("join {op}: nested_loop_join disagrees"));
        }
    }

    // Dynamic tree: Guttman inserts, then removes per mask, validating
    // the deep invariants after every mutation batch.
    let mut dynamic = RTree::new(RTreeConfig::PAPER);
    for &(r, id) in &items {
        dynamic.insert(r, id);
    }
    if let Err(e) = validate_deep(&TreeImage::of_rtree(&dynamic), DeepChecks::dynamic()) {
        return Some(format!(
            "dynamic tree fails validate_deep after inserts: {e}"
        ));
    }
    let mut survivors = Vec::new();
    for (i, &(r, id)) in items.iter().enumerate() {
        if case.remove_mask.get(i).copied().unwrap_or(false) {
            if !dynamic.remove(r, id) {
                return Some(format!("dynamic remove of item {i} returned false"));
            }
            if let Err(e) = validate_deep(&TreeImage::of_rtree(&dynamic), DeepChecks::dynamic()) {
                return Some(format!(
                    "dynamic tree fails validate_deep after removing item {i}: {e}"
                ));
            }
        } else {
            survivors.push((r, id));
        }
    }
    for (wi, w) in case.windows.iter().enumerate() {
        let mut stats = SearchStats::default();
        let got = sorted(dynamic.search_intersecting(w, &mut stats));
        let expect = sorted(reference::window_items(&survivors, w, false));
        if got != expect {
            return Some(format!(
                "window {wi} on post-remove dynamic tree: {got:?} != {expect:?}"
            ));
        }
    }

    // Level 4: the frozen arena must be bit-identical to the pointer
    // tree — same result order, same counters, on every query path.
    if let Some(d) = check_frozen(case, &packed, &tree_a, &tree_b) {
        return Some(d);
    }

    if case.check_disk {
        if let Some(d) = check_disk_trees(case, &items, &packed) {
            return Some(d);
        }
    }
    None
}

/// Frozen-vs-pointer bit-identity: every query path must return the
/// same items in the same order with the same [`SearchStats`] /
/// [`psql::join::JoinStats`] counters, because the frozen arena is a
/// layout change, not an algorithm change.
fn check_frozen(case: &Case, packed: &RTree, tree_a: &RTree, tree_b: &RTree) -> Option<String> {
    let frozen = FrozenRTree::freeze(packed);
    if let Err(e) = validate_deep(&TreeImage::of_frozen(&frozen), DeepChecks::packed()) {
        return Some(format!("frozen tree fails validate_deep: {e}"));
    }
    if frozen.items() != packed.items() {
        return Some("frozen items() enumeration differs from pointer tree".into());
    }

    let mut scratch = SearchScratch::new();
    for (wi, w) in case.windows.iter().enumerate() {
        for within in [true, false] {
            let mut ps = SearchStats::default();
            let mut fs = SearchStats::default();
            let (pointer, frozen_got) = if within {
                (
                    packed.search_within(w, &mut ps),
                    frozen.search_within(w, &mut fs),
                )
            } else {
                (
                    packed.search_intersecting(w, &mut ps),
                    frozen.search_intersecting(w, &mut fs),
                )
            };
            if frozen_got != pointer {
                return Some(format!(
                    "frozen window {wi} within={within}: {frozen_got:?} != pointer {pointer:?}"
                ));
            }
            if fs != ps {
                return Some(format!(
                    "frozen window {wi} within={within}: stats {fs:?} != pointer {ps:?}"
                ));
            }
            let fast = if within {
                frozen.search_within_into(w, &mut scratch).to_vec()
            } else {
                frozen.search_intersecting_into(w, &mut scratch).to_vec()
            };
            if fast != pointer {
                return Some(format!(
                    "frozen window {wi} within={within}: scratch path diverges"
                ));
            }
        }
    }

    for (pi, &p) in case.probes.iter().enumerate() {
        let mut ps = SearchStats::default();
        let mut fs = SearchStats::default();
        let pointer = packed.point_query(p, &mut ps);
        let frozen_got = frozen.point_query(p, &mut fs);
        if frozen_got != pointer || fs != ps {
            return Some(format!(
                "frozen probe {pi}: {frozen_got:?}/{fs:?} != pointer {pointer:?}/{ps:?}"
            ));
        }
        if frozen.point_query_into(p, &mut scratch) != pointer.as_slice() {
            return Some(format!("frozen probe {pi}: scratch path diverges"));
        }
    }

    for (ki, &(p, k)) in case.knn.iter().enumerate() {
        let mut ps = SearchStats::default();
        let mut fs = SearchStats::default();
        let pointer = packed.nearest_neighbors(p, k, &mut ps);
        let frozen_got = frozen.nearest_neighbors(p, k, &mut fs);
        if frozen_got != pointer || fs != ps {
            return Some(format!(
                "frozen knn {ki} (k={k}): neighbors or stats diverge from pointer tree"
            ));
        }
        if frozen.nearest_neighbors_into(p, k, scratch.knn()) != pointer.as_slice() {
            return Some(format!("frozen knn {ki} (k={k}): scratch path diverges"));
        }
    }

    // SIMD-vs-scalar: the explicit lane kernels behind the default
    // query paths must be bit-identical to the always-compiled scalar
    // kernels — same items, same order, same counters.
    for (wi, w) in case.windows.iter().enumerate() {
        for within in [true, false] {
            let mut ds = SearchStats::default();
            let mut ss = SearchStats::default();
            let (default_got, scalar_got) = if within {
                (
                    frozen.search_within(w, &mut ds),
                    frozen.search_within_scalar(w, &mut ss),
                )
            } else {
                (
                    frozen.search_intersecting(w, &mut ds),
                    frozen.search_intersecting_scalar(w, &mut ss),
                )
            };
            if scalar_got != default_got || ss != ds {
                return Some(format!(
                    "frozen window {wi} within={within}: scalar kernel diverges from default"
                ));
            }
        }
    }
    for (pi, &p) in case.probes.iter().enumerate() {
        let mut ds = SearchStats::default();
        let mut ss = SearchStats::default();
        if frozen.point_query_scalar(p, &mut ss) != frozen.point_query(p, &mut ds) || ss != ds {
            return Some(format!(
                "frozen probe {pi}: scalar kernel diverges from default"
            ));
        }
    }
    for (ki, &(p, k)) in case.knn.iter().enumerate() {
        let mut ds = SearchStats::default();
        let mut ss = SearchStats::default();
        if frozen.nearest_neighbors_scalar(p, k, &mut ss) != frozen.nearest_neighbors(p, k, &mut ds)
            || ss != ds
        {
            return Some(format!(
                "frozen knn {ki} (k={k}): scalar kernel diverges from default"
            ));
        }
    }

    // Batched-vs-single: executing the whole query stream as one batch
    // must reproduce every per-query result slice in input order, and
    // the batch's stats must equal the sum of the single-query stats.
    let mut batch = BatchScratch::new();
    for within in [true, false] {
        let mut bs = SearchStats::default();
        let batched = frozen.batch_windows_stats(&case.windows, within, &mut batch, &mut bs);
        let mut sum = SearchStats::default();
        for (wi, w) in case.windows.iter().enumerate() {
            let single = if within {
                frozen.search_within(w, &mut sum)
            } else {
                frozen.search_intersecting(w, &mut sum)
            };
            if batched.get(wi) != single.as_slice() {
                return Some(format!(
                    "batched window {wi} within={within}: diverges from single query"
                ));
            }
        }
        if bs != sum {
            return Some(format!(
                "batched windows within={within}: stats {bs:?} != summed {sum:?}"
            ));
        }
    }
    {
        let mut bs = SearchStats::default();
        let batched = frozen.batch_points_stats(&case.probes, &mut batch, &mut bs);
        let mut sum = SearchStats::default();
        for (pi, &p) in case.probes.iter().enumerate() {
            if batched.get(pi) != frozen.point_query(p, &mut sum).as_slice() {
                return Some(format!("batched probe {pi}: diverges from single query"));
            }
        }
        if bs != sum {
            return Some(format!("batched probes: stats {bs:?} != summed {sum:?}"));
        }
    }
    {
        let mut bs = SearchStats::default();
        let batched = frozen.batch_knn_stats(&case.knn, &mut batch, &mut bs);
        let mut sum = SearchStats::default();
        for (ki, &(p, k)) in case.knn.iter().enumerate() {
            if batched.get(ki) != frozen.nearest_neighbors(p, k, &mut sum).as_slice() {
                return Some(format!(
                    "batched knn {ki} (k={k}): diverges from single query"
                ));
            }
        }
        if bs != sum {
            return Some(format!("batched knn: stats {bs:?} != summed {sum:?}"));
        }
    }

    let frozen_a = FrozenRTree::freeze(tree_a);
    let frozen_b = FrozenRTree::freeze(tree_b);
    for op in ALL_OPS {
        let mut ps = psql::join::JoinStats::default();
        let mut fs = psql::join::JoinStats::default();
        let pointer = psql::join::rtree_join(tree_a, tree_b, op, &mut ps);
        let frozen_got = psql::join::frozen_join(&frozen_a, &frozen_b, op, &mut fs);
        if frozen_got != pointer {
            return Some(format!(
                "frozen join {op}: pairs {frozen_got:?} != pointer {pointer:?}"
            ));
        }
        if fs != ps {
            return Some(format!("frozen join {op}: stats {fs:?} != pointer {ps:?}"));
        }
    }
    None
}

/// Same differential checks against the two on-disk representations.
fn check_disk_trees(case: &Case, items: &[(Rect, ItemId)], packed: &RTree) -> Option<String> {
    let pager = match Pager::temp() {
        Ok(p) => p,
        Err(e) => return Some(format!("Pager::temp failed: {e}")),
    };
    let disk = match DiskRTree::store(packed, &pager) {
        Ok(d) => d,
        Err(e) => return Some(format!("DiskRTree::store failed: {e}")),
    };
    let pool = BufferPool::new(&pager, 64);
    let cfg = RTreeConfig::PAPER;
    match TreeImage::of_disk_tree(&disk, &pool, cfg.max_entries, cfg.min_entries) {
        Ok(img) => {
            if let Err(e) = validate_deep(&img, DeepChecks::packed()) {
                return Some(format!("DiskRTree image fails validate_deep: {e}"));
            }
        }
        Err(e) => return Some(format!("DiskRTree image dump failed: {e}")),
    }
    for (wi, w) in case.windows.iter().enumerate() {
        let mut stats = SearchStats::default();
        match disk.search_within(&pool, w, &mut stats) {
            Ok(got) => {
                let expect = sorted(reference::window_items(items, w, true));
                if sorted(got) != expect {
                    return Some(format!("DiskRTree window {wi}: within search diverges"));
                }
            }
            Err(e) => return Some(format!("DiskRTree search failed: {e}")),
        }
    }
    for (pi, &p) in case.probes.iter().enumerate() {
        let mut stats = SearchStats::default();
        match disk.point_query(&pool, p, &mut stats) {
            Ok(got) => {
                if sorted(got) != sorted(reference::point_items(items, p)) {
                    return Some(format!("DiskRTree probe {pi}: point query diverges"));
                }
            }
            Err(e) => return Some(format!("DiskRTree point query failed: {e}")),
        }
    }

    // Freezing a disk image must reproduce the in-memory frozen tree's
    // answers (page ids differ, BFS indices don't).
    match disk.freeze(&pool, cfg) {
        Ok(frozen) => {
            if let Err(e) = validate_deep(&TreeImage::of_frozen(&frozen), DeepChecks::packed()) {
                return Some(format!("frozen DiskRTree fails validate_deep: {e}"));
            }
            for (wi, w) in case.windows.iter().enumerate() {
                let mut ps = SearchStats::default();
                let mut fs = SearchStats::default();
                let pointer = packed.search_within(w, &mut ps);
                let got = frozen.search_within(w, &mut fs);
                if got != pointer || fs != ps {
                    return Some(format!(
                        "frozen DiskRTree window {wi}: diverges from pointer tree"
                    ));
                }
                let mut ss = SearchStats::default();
                if frozen.search_within_scalar(w, &mut ss) != got || ss != fs {
                    return Some(format!(
                        "frozen DiskRTree window {wi}: scalar kernel diverges"
                    ));
                }
            }
            // The batched path over a disk-rehydrated frozen tree.
            let mut batch = BatchScratch::new();
            let batched = frozen.batch_windows(&case.windows, true, &mut batch);
            for (wi, w) in case.windows.iter().enumerate() {
                let single = frozen.search_within(w, &mut SearchStats::default());
                if batched.get(wi) != single.as_slice() {
                    return Some(format!(
                        "frozen DiskRTree batched window {wi}: diverges from single query"
                    ));
                }
            }
        }
        Err(e) => return Some(format!("DiskRTree freeze failed: {e}")),
    }

    let pager2 = match Pager::temp() {
        Ok(p) => p,
        Err(e) => return Some(format!("Pager::temp failed: {e}")),
    };
    let mut paged = match PagedRTree::from_tree(packed, &pager2, 32) {
        Ok(t) => t,
        Err(e) => return Some(format!("PagedRTree::from_tree failed: {e}")),
    };
    let mut survivors = Vec::new();
    for (i, &(r, id)) in items.iter().enumerate() {
        if case.remove_mask.get(i).copied().unwrap_or(false) {
            match paged.remove(r, id) {
                Ok(true) => {}
                Ok(false) => return Some(format!("PagedRTree remove of item {i} returned false")),
                Err(e) => return Some(format!("PagedRTree remove failed: {e}")),
            }
            match TreeImage::of_paged_tree(&paged) {
                Ok(img) => {
                    if let Err(e) = validate_deep(&img, DeepChecks::dynamic()) {
                        return Some(format!(
                            "PagedRTree fails validate_deep after removing item {i}: {e}"
                        ));
                    }
                }
                Err(e) => return Some(format!("PagedRTree image dump failed: {e}")),
            }
        } else {
            survivors.push((r, id));
        }
    }
    for (wi, w) in case.windows.iter().enumerate() {
        let mut stats = SearchStats::default();
        match paged.search_within(w, &mut stats) {
            Ok(got) => {
                let expect = sorted(reference::window_items(&survivors, w, true));
                if sorted(got) != expect {
                    return Some(format!(
                        "PagedRTree window {wi} after removes: within search diverges"
                    ));
                }
            }
            Err(e) => return Some(format!("PagedRTree search failed: {e}")),
        }
    }

    // A tree reshaped by Guttman deletes still freezes: same answers,
    // dynamic (not packed) fill invariants.
    match paged.freeze() {
        Ok(frozen) => {
            if let Err(e) = validate_deep(&TreeImage::of_frozen(&frozen), DeepChecks::dynamic()) {
                return Some(format!(
                    "frozen PagedRTree fails validate_deep after removes: {e}"
                ));
            }
            for (wi, w) in case.windows.iter().enumerate() {
                let mut fs = SearchStats::default();
                let got = sorted(frozen.search_within(w, &mut fs));
                let expect = sorted(reference::window_items(&survivors, w, true));
                if got != expect {
                    return Some(format!(
                        "frozen PagedRTree window {wi} after removes: diverges from oracle"
                    ));
                }
            }
        }
        Err(e) => return Some(format!("PagedRTree freeze failed: {e}")),
    }
    None
}

// ---------------------------------------------------------------------
// Level 3: PSQL text end-to-end
// ---------------------------------------------------------------------

fn check_psql(case: &Case) -> Option<String> {
    let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
    let setup = (|| -> Result<(), String> {
        db.create_picture("pic", Rect::new(-1.0, -1.0, 14.0, 14.0))
            .map_err(|e| e.to_string())?;
        let schema = Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("loc", ColumnType::Pointer),
        ])
        .map_err(|e| e.to_string())?;
        db.catalog_mut()
            .create_relation("objs", schema)
            .map_err(|e| e.to_string())?;
        db.associate("objs", "loc", "pic")
            .map_err(|e| e.to_string())?;
        for (i, obj) in case.objects.iter().enumerate() {
            let label = format!("o{i}");
            let ptr = db
                .add_object("pic", obj.clone(), &label)
                .map_err(|e| e.to_string())?;
            db.insert("objs", vec![Value::str(&label), Value::Pointer(ptr)])
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    })();
    if let Err(e) = setup {
        return Some(format!("PSQL setup failed: {e}"));
    }
    if case.pack_db {
        db.pack_all();
    }

    let functions = FunctionRegistry::with_builtins();
    let mut scratch = SearchScratch::new();
    for (wi, w) in case.windows.iter().enumerate() {
        let cx = (w.min_x + w.max_x) / 2.0;
        let cy = (w.min_y + w.max_y) / 2.0;
        let dx = (w.max_x - w.min_x) / 2.0;
        let dy = (w.max_y - w.min_y) / 2.0;
        for op in ALL_OPS {
            let text = format!(
                "select name from objs on pic at loc {} {{{cx} +- {dx}, {cy} +- {dy}}}",
                op.name()
            );
            let query = match parse_query(&text) {
                Ok(q) => q,
                Err(e) => return Some(format!("window {wi} {op}: parse failed for {text:?}: {e}")),
            };
            let rs = match exec::execute_with_scratch(&db, &query, &functions, &mut scratch) {
                Ok(rs) => rs,
                Err(e) => return Some(format!("window {wi} {op}: execution failed: {e}")),
            };
            let mut got: Vec<String> = rs
                .rows
                .iter()
                .map(|row| {
                    row.first()
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_owned()
                })
                .collect();
            got.sort_unstable();
            let mut expect: Vec<String> = reference::window_objects(&case.objects, op, w)
                .into_iter()
                .map(|id| format!("o{id}"))
                .collect();
            expect.sort_unstable();
            if got != expect {
                return Some(format!(
                    "window {wi} {op} (pack={}): PSQL rows {got:?} != oracle {expect:?} \
                     for query {text:?}",
                    case.pack_db
                ));
            }
            if rs.highlights.len() != rs.rows.len() {
                return Some(format!(
                    "window {wi} {op}: {} highlights for {} rows",
                    rs.highlights.len(),
                    rs.rows.len()
                ));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Level 4: mixed read/write (frozen main ∪ delta)
// ---------------------------------------------------------------------

/// The sustained-write path: load a prefix of the objects, pack (so the
/// picture carries a frozen main tree), then insert the rest dynamically
/// so they buffer in the delta tree. Every query path — stats, scratch,
/// and batched — must be bit-identical to brute force over *all* objects
/// (packed ∪ delta), both before and after `merge_deltas` folds the
/// delta back into a freshly packed main tree.
fn check_mixed(case: &Case) -> Option<String> {
    let split = case.pack_prefix.min(case.objects.len());
    let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
    if let Err(e) = db.create_picture("pic", Rect::new(-1.0, -1.0, 14.0, 14.0)) {
        return Some(format!("mixed setup failed: {e}"));
    }
    for obj in &case.objects[..split] {
        if let Err(e) = db.add_object("pic", obj.clone(), "loaded") {
            return Some(format!("mixed load failed: {e}"));
        }
    }
    db.pack_all();
    // The frozen-vs-pointer size gate is a performance heuristic; lift
    // it so small generated pictures drive the frozen+delta merge path.
    db.picture_mut("pic").expect("pic").force_frozen_queries();
    for obj in &case.objects[split..] {
        if let Err(e) = db.add_object("pic", obj.clone(), "delta") {
            return Some(format!("mixed insert failed: {e}"));
        }
    }
    {
        let pic = db.picture("pic").expect("pic");
        if pic.packed_len() != split || pic.delta_len() != case.objects.len() - split {
            return Some(format!(
                "mixed partition wrong: packed_len {} / delta_len {} for split \
                 {split} of {} objects",
                pic.packed_len(),
                pic.delta_len(),
                case.objects.len()
            ));
        }
        if !db.frozen_intact() {
            return Some("dynamic inserts dropped a frozen tree".into());
        }
        if let Some(d) = check_mixed_queries(case, pic, "pre-merge") {
            return Some(d);
        }
    }

    // Folding the delta into a fresh pack must not change one answer.
    let merged = db.merge_deltas();
    let pic = db.picture("pic").expect("pic");
    if (merged > 0) != (split < case.objects.len()) {
        return Some(format!(
            "merge_deltas folded {merged} pictures with a delta of {}",
            case.objects.len() - split
        ));
    }
    if pic.delta_len() != 0 || pic.packed_len() != case.objects.len() {
        return Some(format!(
            "post-merge partition wrong: packed_len {} / delta_len {}",
            pic.packed_len(),
            pic.delta_len()
        ));
    }
    check_mixed_queries(case, pic, "post-merge")
}

/// Every picture query path against brute force over all objects.
fn check_mixed_queries(case: &Case, pic: &psql::picture::Picture, stage: &str) -> Option<String> {
    let mut scratch = SearchScratch::new();
    for (wi, w) in case.windows.iter().enumerate() {
        for op in ALL_OPS {
            let expect = reference::window_objects(&case.objects, op, w);
            let mut stats = SearchStats::default();
            let mut got = pic.search_window(op, w, &mut stats);
            got.sort_unstable();
            if got != expect {
                return Some(format!(
                    "mixed {stage} window {wi} {op}: engine {got:?} != brute \
                     force {expect:?}"
                ));
            }
            let mut fast = pic.search_window_fast(op, w, &mut scratch);
            fast.sort_unstable();
            if fast != expect {
                return Some(format!(
                    "mixed {stage} window {wi} {op}: scratch path {fast:?} != \
                     brute force {expect:?}"
                ));
            }
        }
    }

    // The batched executor path over the same query pack.
    let queries: Vec<(SpatialOp, Rect)> = case
        .windows
        .iter()
        .flat_map(|&w| ALL_OPS.iter().map(move |&op| (op, w)))
        .collect();
    let mut batch = BatchScratch::new();
    for (qi, ((op, w), got)) in queries
        .iter()
        .zip(pic.search_windows_batch(&queries, &mut batch))
        .enumerate()
    {
        let mut got = got;
        got.sort_unstable();
        if got != reference::window_objects(&case.objects, *op, w) {
            return Some(format!(
                "mixed {stage} batched query {qi} ({op}): diverges from brute force"
            ));
        }
    }

    // k-NN compares distance sequences (ties at the cut-off make the
    // k-th identity legitimately ambiguous).
    let items: Vec<(Rect, ItemId)> = case
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| (o.mbr(), ItemId(i as u64)))
        .collect();
    let dist = |p: Point, ids: &[u64]| -> Vec<f64> {
        ids.iter()
            .map(|&id| case.objects[id as usize].mbr().min_distance_sq(p))
            .collect()
    };
    for (ki, &(p, k)) in case.knn.iter().enumerate() {
        let expect = reference::nearest_distances(&items, p, k);
        let mut stats = SearchStats::default();
        let got = dist(p, &pic.nearest(p, k, &mut stats));
        if got != expect {
            return Some(format!(
                "mixed {stage} knn {ki} (k={k}): distances {got:?} != brute \
                 force {expect:?}"
            ));
        }
        let fast = dist(p, &pic.nearest_fast(p, k, &mut scratch));
        if fast != expect {
            return Some(format!(
                "mixed {stage} knn {ki} (k={k}): scratch path diverges from \
                 brute force"
            ));
        }
    }
    for (ki, got) in pic.nearest_batch(&case.knn, &mut batch).iter().enumerate() {
        let (p, k) = case.knn[ki];
        if dist(p, got) != reference::nearest_distances(&items, p, k) {
            return Some(format!(
                "mixed {stage} batched knn {ki} (k={k}): diverges from brute force"
            ));
        }
    }
    None
}

/// Runs the full differential check — geometry predicates, tree paths,
/// PSQL end-to-end, and the mixed read/write delta level — returning the
/// first disagreement found.
pub fn check_case(case: &Case) -> Option<String> {
    check_geom(case)
        .or_else(|| check_tree(case))
        .or_else(|| check_psql(case))
        .or_else(|| check_mixed(case))
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedy deletion shrinking: repeatedly drop one object / window /
/// probe / knn query; keep any smaller case that still diverges. Returns
/// `(smallest case, detail, reached fixpoint)`.
fn shrink(case: Case, detail: String, budget: usize) -> (Case, String, bool) {
    let mut best = case;
    let mut best_detail = detail;
    let mut checks = 0usize;
    loop {
        let mut improved = false;
        let candidates = removal_candidates(&best);
        for cand in candidates {
            if checks >= budget {
                return (best, best_detail, false);
            }
            checks += 1;
            if let Some(d) = check_case(&cand) {
                best = cand;
                best_detail = d;
                improved = true;
                break; // restart from the smaller case
            }
        }
        if !improved {
            return (best, best_detail, true);
        }
    }
}

fn removal_candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for i in 0..case.objects.len() {
        let mut c = case.clone();
        c.objects.remove(i);
        c.remove_mask.remove(i);
        if i < c.pack_prefix {
            c.pack_prefix -= 1;
        }
        out.push(c);
    }
    for i in 0..case.windows.len() {
        if case.windows.len() > 1 {
            let mut c = case.clone();
            c.windows.remove(i);
            out.push(c);
        }
    }
    for i in 0..case.probes.len() {
        let mut c = case.clone();
        c.probes.remove(i);
        out.push(c);
    }
    for i in 0..case.knn.len() {
        let mut c = case.clone();
        c.knn.remove(i);
        out.push(c);
    }
    out
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Runs `config.cases` generated cases, shrinking and collecting
/// divergences (stopping after five — a stuck run reports the pattern,
/// not ten thousand copies of it).
pub fn run(config: &FuzzConfig) -> Vec<Divergence> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for case_index in 0..config.cases {
        let case = generate(&mut rng);
        if let Some(detail) = check_case(&case) {
            let (case, detail, minimized) = shrink(case, detail, 2000);
            out.push(Divergence {
                seed: config.seed,
                case_index,
                detail,
                case,
                minimized,
            });
            if out.len() >= 5 {
                break;
            }
        }
    }
    out
}

/// Runs several seeds, concatenating their divergences.
pub fn run_seeds(seeds: &[u64], cases: usize) -> Vec<Divergence> {
    seeds
        .iter()
        .flat_map(|&seed| run(&FuzzConfig { seed, cases }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_is_clean() {
        let divergences = run(&FuzzConfig { seed: 7, cases: 25 });
        assert!(
            divergences.is_empty(),
            "engine diverged from oracle:\n{}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let ca = generate(&mut a);
        let cb = generate(&mut b);
        assert_eq!(format!("{ca:?}"), format!("{cb:?}"));
    }

    #[test]
    fn shrinking_reduces_a_planted_divergence() {
        // Plant a fake "divergence": any case whose object list contains
        // a point at (3, 3) "fails". The shrinker should strip everything
        // else.
        let case = Case {
            objects: vec![
                SpatialObject::Point(Point::new(1.0, 1.0)),
                SpatialObject::Point(Point::new(3.0, 3.0)),
                SpatialObject::Point(Point::new(5.0, 5.0)),
            ],
            windows: vec![Rect::new(0.0, 0.0, 8.0, 8.0), Rect::new(1.0, 1.0, 2.0, 2.0)],
            probes: vec![Point::new(0.0, 0.0)],
            knn: vec![(Point::new(2.0, 2.0), 1)],
            remove_mask: vec![false, false, false],
            check_disk: false,
            pack_db: false,
            pack_prefix: 2,
        };
        let fails = |c: &Case| {
            c.objects
                .iter()
                .any(|o| matches!(o, SpatialObject::Point(p) if p.x == 3.0 && p.y == 3.0))
        };
        // Reuse the production shrink loop against the planted predicate.
        let mut best = case;
        loop {
            let mut improved = false;
            for cand in removal_candidates(&best) {
                if fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        assert_eq!(best.objects.len(), 1);
        assert!(best.probes.is_empty());
        assert!(best.knn.is_empty());
        assert_eq!(best.windows.len(), 1);
    }
}
