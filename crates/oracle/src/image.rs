//! A representation-neutral snapshot of an R-tree's structure.
//!
//! The workspace has three tree representations — the in-memory arena
//! [`RTree`], the read-only page image [`DiskRTree`], and the updatable
//! [`PagedRTree`] — and one set of structural invariants they must all
//! satisfy. [`TreeImage`] is the common denominator: every variant is
//! flattened into the same id → node map, and
//! [`validate_deep`](crate::invariant::validate_deep) checks the
//! invariants once, against the image, instead of three times against
//! three APIs.

use rtree_geom::Rect;
use rtree_index::{Child, FrozenRTree, ItemId, RTree};
use rtree_storage::codec::DiskNode;
use rtree_storage::{BufferPool, DiskRTree, PagedRTree, StorageResult};
use std::collections::HashMap;

/// What one entry of an image node points at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImageChild {
    /// A child node, by image id.
    Node(u64),
    /// A data item (leaf entries only).
    Item(ItemId),
}

/// One entry: bounding rectangle plus child reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageEntry {
    /// The entry's MBR as stored in the parent.
    pub mbr: Rect,
    /// What it points at.
    pub child: ImageChild,
}

/// One node of the flattened tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageNode {
    /// Height above the leaves (0 = leaf), as recorded by the
    /// representation.
    pub level: u32,
    /// The node's entries.
    pub entries: Vec<ImageEntry>,
}

/// A flattened tree: everything `validate_deep` needs, decoupled from
/// where the nodes came from.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeImage {
    /// All reachable nodes, keyed by representation-specific id
    /// (arena index or page number).
    pub nodes: HashMap<u64, ImageNode>,
    /// Image id of the root node.
    pub root: u64,
    /// The depth the representation declares (root's expected level).
    pub declared_depth: u32,
    /// The item count the representation declares.
    pub declared_len: usize,
    /// Maximum entries per node (the branching factor `M`).
    pub max_entries: usize,
    /// Guttman's minimum fill `m` (checked only when asked).
    pub min_entries: usize,
}

impl TreeImage {
    /// Snapshots an in-memory [`RTree`] by walking from the root (freed
    /// arena slots are invisible, exactly like unreferenced pages).
    pub fn of_rtree(tree: &RTree) -> TreeImage {
        let mut nodes = HashMap::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            let entries = node
                .entries
                .iter()
                .map(|e| ImageEntry {
                    mbr: e.mbr,
                    child: match e.child {
                        Child::Node(c) => {
                            stack.push(c);
                            ImageChild::Node(c.index() as u64)
                        }
                        Child::Item(item) => ImageChild::Item(item),
                    },
                })
                .collect();
            nodes.insert(
                id.index() as u64,
                ImageNode {
                    level: node.level,
                    entries,
                },
            );
        }
        TreeImage {
            nodes,
            root: tree.root().index() as u64,
            declared_depth: tree.depth(),
            declared_len: tree.len(),
            max_entries: tree.config().max_entries,
            min_entries: tree.config().min_entries,
        }
    }

    /// Snapshots a read-only [`DiskRTree`]. The disk image does not
    /// record its packing configuration, so the caller supplies the
    /// `(max, min)` entry bounds the tree was built with.
    pub fn of_disk_tree(
        tree: &DiskRTree,
        pool: &BufferPool<'_>,
        max_entries: usize,
        min_entries: usize,
    ) -> StorageResult<TreeImage> {
        Ok(from_disk_nodes(
            tree.dump_nodes(pool)?,
            tree.depth(),
            tree.len(),
            max_entries,
            min_entries,
        ))
    }

    /// Snapshots a [`PagedRTree`] — including one freshly reopened after
    /// a crash, which is exactly when deep validation earns its keep.
    pub fn of_paged_tree(tree: &PagedRTree<'_>) -> StorageResult<TreeImage> {
        Ok(from_disk_nodes(
            tree.dump_nodes()?,
            tree.depth(),
            tree.len(),
            tree.config().max_entries,
            tree.config().min_entries,
        ))
    }

    /// Snapshots a [`FrozenRTree`]. Image ids are the BFS node indices
    /// of the arena; only the populated lanes of each node appear as
    /// entries (the NaN padding lanes are layout, not structure).
    pub fn of_frozen(tree: &FrozenRTree) -> TreeImage {
        let mut nodes = HashMap::new();
        // BFS from the root, deriving each node's level from its
        // parent's (the arena stores only the leaf boundary).
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((tree.root_index(), tree.depth()));
        while let Some((index, level)) = queue.pop_front() {
            let is_leaf = tree.is_leaf_index(index);
            let entries = (0..tree.entry_count(index))
                .map(|lane| ImageEntry {
                    mbr: tree.entry_mbr(index, lane),
                    child: if is_leaf {
                        ImageChild::Item(tree.entry_child_item(index, lane))
                    } else {
                        let child = tree.entry_child_node(index, lane);
                        queue.push_back((child, level - 1));
                        ImageChild::Node(child as u64)
                    },
                })
                .collect();
            nodes.insert(index as u64, ImageNode { level, entries });
        }
        TreeImage {
            nodes,
            root: tree.root_index() as u64,
            declared_depth: tree.depth(),
            declared_len: tree.len(),
            max_entries: tree.config().max_entries,
            min_entries: tree.config().min_entries,
        }
    }

    /// Renumbers the image's node ids into a DFS preorder starting at 0,
    /// following entries in stored order. Two images of the *same logical
    /// tree* held in different representations (arena indices vs page
    /// numbers) canonicalize to equal values, so bit-identity between an
    /// in-memory pack and an external on-disk pack is a plain `==`.
    pub fn canonical(&self) -> TreeImage {
        let mut renamed: HashMap<u64, u64> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if renamed.contains_key(&id) {
                continue;
            }
            renamed.insert(id, order.len() as u64);
            order.push(id);
            // Push children in reverse so DFS visits them left-to-right.
            for e in self.nodes[&id].entries.iter().rev() {
                if let ImageChild::Node(c) = e.child {
                    stack.push(c);
                }
            }
        }
        let nodes = order
            .iter()
            .map(|old| {
                let node = &self.nodes[old];
                let entries = node
                    .entries
                    .iter()
                    .map(|e| ImageEntry {
                        mbr: e.mbr,
                        child: match e.child {
                            ImageChild::Node(c) => ImageChild::Node(renamed[&c]),
                            item => item,
                        },
                    })
                    .collect();
                (
                    renamed[old],
                    ImageNode {
                        level: node.level,
                        entries,
                    },
                )
            })
            .collect();
        TreeImage {
            nodes,
            root: 0,
            declared_depth: self.declared_depth,
            declared_len: self.declared_len,
            max_entries: self.max_entries,
            min_entries: self.min_entries,
        }
    }

    /// Total leaf entries in the image (the item count actually present).
    pub fn leaf_entry_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.level == 0)
            .map(|n| n.entries.len())
            .sum()
    }
}

/// Converts a `dump_nodes` result (breadth-first from the root, so the
/// first element is the root) into an image.
fn from_disk_nodes(
    dump: Vec<(rtree_storage::PageId, DiskNode)>,
    depth: u32,
    len: usize,
    max_entries: usize,
    min_entries: usize,
) -> TreeImage {
    let root = dump.first().map_or(0, |(pid, _)| pid.0 as u64);
    let nodes = dump
        .into_iter()
        .map(|(pid, node)| {
            let entries = (0..node.entries.len())
                .map(|i| ImageEntry {
                    mbr: node.entries[i].mbr,
                    child: if node.is_leaf() {
                        ImageChild::Item(node.child_item(i))
                    } else {
                        ImageChild::Node(node.child_page(i).0 as u64)
                    },
                })
                .collect();
            (
                pid.0 as u64,
                ImageNode {
                    level: node.level,
                    entries,
                },
            )
        })
        .collect();
    TreeImage {
        nodes,
        root,
        declared_depth: depth,
        declared_len: len,
        max_entries,
        min_entries,
    }
}
