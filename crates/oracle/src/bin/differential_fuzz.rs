//! Bounded differential fuzz run for CI and local use.
//!
//! ```text
//! cargo run --release -p rtree-oracle --bin differential_fuzz
//! ORACLE_FUZZ_SEEDS=1,2,3 ORACLE_FUZZ_CASES=500 cargo run ...
//! ```
//!
//! Exits non-zero if any engine-vs-oracle divergence is found, printing
//! each shrunken counterexample with the `(seed, case)` pair that
//! reproduces it deterministically.

use rtree_oracle::run_seeds;
use std::process::ExitCode;

fn main() -> ExitCode {
    let seeds: Vec<u64> = match std::env::var("ORACLE_FUZZ_SEEDS") {
        Ok(s) => match s.split(',').map(|p| p.trim().parse()).collect() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ORACLE_FUZZ_SEEDS must be a comma-separated list of u64: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => vec![1985, 2718, 3141],
    };
    let cases: usize = match std::env::var("ORACLE_FUZZ_CASES") {
        Ok(s) => match s.trim().parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ORACLE_FUZZ_CASES must be a usize: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => 200,
    };

    println!(
        "differential fuzz: {} seed(s) × {cases} case(s), five levels \
         (geom predicates, tree queries, frozen/SIMD/batched identity, \
         PSQL end-to-end, mixed read/write frozen+delta)",
        seeds.len()
    );
    let divergences = run_seeds(&seeds, cases);
    if divergences.is_empty() {
        println!("ok: engine and oracle agree on every generated case");
        ExitCode::SUCCESS
    } else {
        for d in &divergences {
            eprintln!("{d}");
        }
        eprintln!(
            "{} divergence(s); reproduce with ORACLE_FUZZ_SEEDS=<seed>",
            divergences.len()
        );
        ExitCode::FAILURE
    }
}
