//! The differential-testing oracle for the packed R-tree stack.
//!
//! Every query the engine answers through an R-tree has a trivially
//! correct — and trivially slow — answer: scan everything. This crate
//! holds those brute-force references ([`reference`]), a structural
//! validator that checks the deep R-tree invariants on all three tree
//! representations ([`invariant`] over [`image::TreeImage`]), and a
//! seeded differential fuzz driver ([`fuzz`]) that generates random
//! pictorial datasets and query streams, runs engine and oracle side by
//! side at four levels of the stack, and shrinks any divergence to a
//! minimal counterexample:
//!
//! 1. **Geometry** — the spatial-operator algebra on object pairs
//!    (complement, flip symmetry, and interval-arithmetic ground truth
//!    for point/rectangle operands).
//! 2. **Tree** — `search_within` / `search_intersecting` / `point_query`
//!    through both the instrumented stats path and the allocation-free
//!    [`SearchScratch`](rtree_index::SearchScratch) path, plus k-NN,
//!    joins, and the `avg_nodes_visited` accounting against a literal
//!    recursive implementation of the paper's `SEARCH` (§3.1).
//! 3. **PSQL** — query text end-to-end through the parser, planner, and
//!    `execute_with_scratch` (the entry point the concurrent query
//!    service uses), compared against direct evaluation of the operator
//!    over all objects.
//! 4. **Mixed read/write** — a prefix of the objects is loaded and
//!    packed (frozen main tree), the rest arrive as dynamic inserts
//!    buffered in the delta tree; every query path (stats, scratch,
//!    batched) must be bit-identical to brute force over packed ∪
//!    delta, before and after the merge folds the delta back in.
//!
//! Reproduction is deterministic: every counterexample carries the seed
//! and case index that produced it (see `DESIGN.md` §11).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod fuzz;
pub mod image;
pub mod invariant;
pub mod reference;

pub use fuzz::{run_seeds, Divergence, FuzzConfig};
pub use image::TreeImage;
pub use invariant::{validate_deep, DeepChecks};
