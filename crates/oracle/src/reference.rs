//! Brute-force reference implementations.
//!
//! Each function answers a query by scanning every item — no tree, no
//! pruning, no shared code with the engine's traversals beyond the
//! geometry predicates deliberately under test. The engine must agree
//! with these on every input.

use psql::SpatialOp;
use rtree_geom::{Point, Rect, SpatialObject};
use rtree_index::{Child, ItemId, NodeId, RTree};

// ---------------------------------------------------------------------
// Interval-arithmetic ground truth for the rectangle predicates.
//
// Written against the raw coordinates, independently of `Rect`'s own
// methods, so a sign slip or strict-vs-inclusive mix-up in `Rect` cannot
// hide by appearing on both sides of the comparison. Closed-set
// semantics: rectangles (including zero-area ones) own their boundary.
// ---------------------------------------------------------------------

fn spans_meet(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> bool {
    // Two closed intervals share a point iff neither is strictly past
    // the other.
    !(a_hi < b_lo || b_hi < a_lo)
}

fn span_inside(inner_lo: f64, inner_hi: f64, outer_lo: f64, outer_hi: f64) -> bool {
    outer_lo <= inner_lo && inner_hi <= outer_hi
}

/// Ground truth for [`Rect::intersects`]: the closed rectangles share at
/// least one point (boundary contact counts).
pub fn ref_intersects(a: &Rect, b: &Rect) -> bool {
    spans_meet(a.min_x, a.max_x, b.min_x, b.max_x) && spans_meet(a.min_y, a.max_y, b.min_y, b.max_y)
}

/// Ground truth for [`Rect::covers`]: every point of `b` lies in `a`.
pub fn ref_covers(a: &Rect, b: &Rect) -> bool {
    span_inside(b.min_x, b.max_x, a.min_x, a.max_x)
        && span_inside(b.min_y, b.max_y, a.min_y, a.max_y)
}

/// Ground truth for [`Rect::disjoint`]: the exact complement of
/// [`ref_intersects`].
pub fn ref_disjoint(a: &Rect, b: &Rect) -> bool {
    !ref_intersects(a, b)
}

// ---------------------------------------------------------------------
// Linear-scan query references.
// ---------------------------------------------------------------------

/// Reference window search over raw `(mbr, id)` items: `within = true`
/// reproduces the paper's `WITHIN` leaf test (`covered-by`), `false` the
/// intersection semantics. Results are in item order.
pub fn window_items(items: &[(Rect, ItemId)], window: &Rect, within: bool) -> Vec<ItemId> {
    items
        .iter()
        .filter(|(mbr, _)| {
            if within {
                ref_covers(window, mbr)
            } else {
                ref_intersects(mbr, window)
            }
        })
        .map(|&(_, id)| id)
        .collect()
}

/// Reference point query: every item whose MBR contains `p`.
pub fn point_items(items: &[(Rect, ItemId)], p: Point) -> Vec<ItemId> {
    let probe = Rect::from_point(p);
    items
        .iter()
        .filter(|(mbr, _)| ref_intersects(mbr, &probe))
        .map(|&(_, id)| id)
        .collect()
}

/// Reference evaluation of a PSQL spatial operator between every object
/// of a picture and a constant window: ids (by position, matching
/// `Picture` object ids) of objects satisfying `obj op window`.
pub fn window_objects(objects: &[SpatialObject], op: SpatialOp, window: &Rect) -> Vec<u64> {
    objects
        .iter()
        .enumerate()
        .filter(|(_, obj)| op.eval_window(obj, window))
        .map(|(i, _)| i as u64)
        .collect()
}

/// Reference k-nearest-neighbour: the `k` smallest `min_distance_sq`
/// values from `p` to the item MBRs, ascending. Only distances are
/// returned because ties at the cut-off make the identity of the k-th
/// neighbour legitimately ambiguous.
pub fn nearest_distances(items: &[(Rect, ItemId)], p: Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = items
        .iter()
        .map(|(mbr, _)| mbr.min_distance_sq(p))
        .collect();
    d.sort_by(f64::total_cmp);
    d.truncate(k);
    d
}

/// Reference juxtaposition join at the MBR level, matching the contract
/// of `psql::join::rtree_join`: pairs passing `intersects` +
/// [`SpatialOp::mbr_filter`], or all MBR-disjoint pairs for `Disjoined`.
/// Pairs are sorted for set comparison.
pub fn join_pairs(
    a: &[(Rect, ItemId)],
    b: &[(Rect, ItemId)],
    op: SpatialOp,
) -> Vec<(ItemId, ItemId)> {
    let mut out = Vec::new();
    for &(ra, ia) in a {
        for &(rb, ib) in b {
            let keep = if op == SpatialOp::Disjoined {
                ref_disjoint(&ra, &rb)
            } else {
                ref_intersects(&ra, &rb) && op.mbr_filter(&ra, &rb)
            };
            if keep {
                out.push((ia, ib));
            }
        }
    }
    out.sort_unstable_by_key(|&(ItemId(x), ItemId(y))| (x, y));
    out
}

// ---------------------------------------------------------------------
// Reference recursive SEARCH: the paper's §3.1 algorithm written as the
// obvious recursion, with its own visit counters. The engine's iterative
// traversal must report identical results *and* identical counters —
// this is what keeps `avg_nodes_visited` (the paper's Table 1 metric)
// honest.
// ---------------------------------------------------------------------

/// Node-visit counters accumulated by the recursive references, mirroring
/// the fields of [`rtree_index::SearchStats`] for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalCount {
    /// Total nodes visited (the root always counts).
    pub nodes_visited: u64,
    /// Leaf nodes among them.
    pub leaf_nodes_visited: u64,
    /// Leaf entries reported.
    pub items_reported: u64,
}

/// The paper's `SEARCH` as a literal recursion: descend every entry whose
/// MBR `INTERSECTS` the window; at the leaves report entries `WITHIN`
/// (`within = true`) or intersecting (`within = false`).
pub fn recursive_window_search(
    tree: &RTree,
    window: &Rect,
    within: bool,
) -> (Vec<ItemId>, TraversalCount) {
    let mut out = Vec::new();
    let mut count = TraversalCount::default();
    recurse_window(tree, tree.root(), window, within, &mut out, &mut count);
    (out, count)
}

fn recurse_window(
    tree: &RTree,
    id: NodeId,
    window: &Rect,
    within: bool,
    out: &mut Vec<ItemId>,
    count: &mut TraversalCount,
) {
    let node = tree.node(id);
    count.nodes_visited += 1;
    if node.is_leaf() {
        count.leaf_nodes_visited += 1;
        for e in &node.entries {
            let hit = if within {
                e.mbr.covered_by(window)
            } else {
                e.mbr.intersects(window)
            };
            if hit {
                count.items_reported += 1;
                out.push(e.child.expect_item());
            }
        }
    } else {
        for e in &node.entries {
            if e.mbr.intersects(window) {
                recurse_window(tree, e.child.expect_node(), window, within, out, count);
            }
        }
    }
}

/// The Table 1 point query as a literal recursion: descend (and report)
/// only entries whose MBR contains the point.
pub fn recursive_point_query(tree: &RTree, p: Point) -> (Vec<ItemId>, TraversalCount) {
    let mut out = Vec::new();
    let mut count = TraversalCount::default();
    recurse_point(tree, tree.root(), p, &mut out, &mut count);
    (out, count)
}

fn recurse_point(
    tree: &RTree,
    id: NodeId,
    p: Point,
    out: &mut Vec<ItemId>,
    count: &mut TraversalCount,
) {
    let node = tree.node(id);
    count.nodes_visited += 1;
    if node.is_leaf() {
        count.leaf_nodes_visited += 1;
    }
    for e in &node.entries {
        if e.mbr.contains_point(p) {
            match e.child {
                Child::Node(c) => recurse_point(tree, c, p, out, count),
                Child::Item(item) => {
                    count.items_reported += 1;
                    out.push(item);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packed_rtree_core::pack;
    use rtree_index::{RTreeConfig, SearchStats};

    fn grid_items(n: u64) -> Vec<(Rect, ItemId)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Rect::new(x, y, x + 0.5, y + 0.5), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn interval_references_agree_with_rect() {
        let cases = [
            (Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(2.0, 0.0, 4.0, 2.0)), // edge touch
            (Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(2.0, 2.0, 4.0, 4.0)), // corner touch
            (Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(3.0, 3.0, 4.0, 4.0)), // apart
            (Rect::new(0.0, 0.0, 4.0, 4.0), Rect::new(1.0, 1.0, 2.0, 2.0)), // nested
            (Rect::new(1.0, 1.0, 1.0, 1.0), Rect::new(1.0, 0.0, 1.0, 2.0)), // degenerate
        ];
        for (a, b) in cases {
            assert_eq!(ref_intersects(&a, &b), a.intersects(&b), "{a:?} {b:?}");
            assert_eq!(ref_disjoint(&a, &b), a.disjoint(&b), "{a:?} {b:?}");
            assert_eq!(ref_covers(&a, &b), a.covers(&b), "{a:?} {b:?}");
        }
    }

    #[test]
    fn recursive_search_matches_engine_results_and_counters() {
        let items = grid_items(100);
        let tree = pack(items.clone(), RTreeConfig::PAPER);
        let window = Rect::new(1.25, 1.25, 6.75, 6.75);
        for within in [true, false] {
            let mut stats = SearchStats::default();
            let engine = if within {
                tree.search_within(&window, &mut stats)
            } else {
                tree.search_intersecting(&window, &mut stats)
            };
            let (reference, count) = recursive_window_search(&tree, &window, within);
            // The iterative engine pops its stack LIFO, so it reports the
            // same items in a different order than the recursion.
            let mut engine_sorted = engine.clone();
            engine_sorted.sort_unstable_by_key(|&ItemId(i)| i);
            let mut reference_sorted = reference.clone();
            reference_sorted.sort_unstable_by_key(|&ItemId(i)| i);
            assert_eq!(engine_sorted, reference_sorted, "within={within}");
            assert_eq!(stats.nodes_visited, count.nodes_visited);
            assert_eq!(stats.leaf_nodes_visited, count.leaf_nodes_visited);
            assert_eq!(stats.items_reported, count.items_reported);
            let mut expect = window_items(&items, &window, within);
            expect.sort_unstable_by_key(|&ItemId(i)| i);
            assert_eq!(engine_sorted, expect);
        }
    }

    #[test]
    fn nearest_distances_are_sorted_prefix() {
        let items = grid_items(30);
        let d = nearest_distances(&items, Point::new(3.3, 1.1), 5);
        assert_eq!(d.len(), 5);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }
}
