//! Deep structural validation of a [`TreeImage`].
//!
//! Checks the full R-tree contract from outside the engine:
//!
//! 1. **Reachability** — every node is reachable from the root through
//!    exactly one parent (no sharing, no orphans, no cycles).
//! 2. **Uniform leaf depth** — levels decrease by exactly 1 along every
//!    edge and every leaf sits at level 0, so all leaves are equally
//!    deep ("the height-balanced property").
//! 3. **MBR tightness** — each internal entry's rectangle equals the
//!    exact MBR of its child's entries: minimal, not merely containing.
//! 4. **Entry bounds** — no node exceeds `M`; optionally every non-root
//!    node holds at least `m` (Guttman trees); optionally at most one
//!    node per level is under-full (freshly packed trees, §3.3's "one
//!    partially-filled node for leftover entries per level").
//! 5. **Item accounting** — leaf entries sum to the declared length.

use crate::image::{ImageChild, TreeImage};
use rtree_geom::Rect;
use std::collections::HashMap;

/// Which optional invariants to enforce on top of the universal ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepChecks {
    /// Require Guttman's minimum fill `m` on every non-root node.
    pub min_fill: bool,
    /// Require packed fullness: per level, at most one node below `M`.
    pub packed: bool,
}

impl DeepChecks {
    /// The profile for a freshly packed tree: full nodes except at most
    /// one leftover per level (which also implies nothing about `m`).
    pub fn packed() -> DeepChecks {
        DeepChecks {
            min_fill: false,
            packed: true,
        }
    }

    /// The profile for a tree shaped by inserts/removes: only the
    /// universal invariants (the engine deliberately allows under-full
    /// nodes after condense).
    pub fn dynamic() -> DeepChecks {
        DeepChecks {
            min_fill: false,
            packed: false,
        }
    }
}

/// Validates every deep invariant of `img`, returning the first failure
/// as a human-readable description.
pub fn validate_deep(img: &TreeImage, checks: DeepChecks) -> Result<(), String> {
    let root = img
        .nodes
        .get(&img.root)
        .ok_or_else(|| format!("root node {} missing from image", img.root))?;

    if root.level != img.declared_depth {
        return Err(format!(
            "root level {} != declared depth {}",
            root.level, img.declared_depth
        ));
    }

    // Parent reference counts: exactly one per non-root node.
    let mut parents: HashMap<u64, u64> = HashMap::new();
    for (&id, node) in &img.nodes {
        for e in &node.entries {
            match e.child {
                ImageChild::Node(c) => {
                    if node.level == 0 {
                        return Err(format!("leaf node {id} has a node child"));
                    }
                    *parents.entry(c).or_insert(0) += 1;
                }
                ImageChild::Item(_) => {
                    if node.level != 0 {
                        return Err(format!(
                            "internal node {id} (level {}) has an item child",
                            node.level
                        ));
                    }
                }
            }
        }
    }
    for &id in img.nodes.keys() {
        let refs = parents.get(&id).copied().unwrap_or(0);
        if id == img.root {
            if refs != 0 {
                return Err(format!("root {id} is referenced by {refs} parent(s)"));
            }
        } else if refs == 0 {
            return Err(format!("node {id} is unreachable (no parent reference)"));
        } else if refs > 1 {
            return Err(format!("node {id} is shared by {refs} parents"));
        }
    }
    for &c in parents.keys() {
        if !img.nodes.contains_key(&c) {
            return Err(format!("entry references missing node {c}"));
        }
    }

    // Per-node checks: level stepping, MBR tightness, entry bounds.
    let mut underfull_per_level: HashMap<u32, usize> = HashMap::new();
    for (&id, node) in &img.nodes {
        if node.entries.len() > img.max_entries {
            return Err(format!(
                "node {id} holds {} entries > M = {}",
                node.entries.len(),
                img.max_entries
            ));
        }
        if node.entries.is_empty() && id != img.root {
            return Err(format!("non-root node {id} is empty"));
        }
        if checks.min_fill && id != img.root && node.entries.len() < img.min_entries {
            return Err(format!(
                "node {id} holds {} entries < m = {}",
                node.entries.len(),
                img.min_entries
            ));
        }
        if node.entries.len() < img.max_entries {
            *underfull_per_level.entry(node.level).or_insert(0) += 1;
        }
        for (i, e) in node.entries.iter().enumerate() {
            if let ImageChild::Node(c) = e.child {
                let child = &img.nodes[&c];
                if child.level + 1 != node.level {
                    return Err(format!(
                        "node {id} (level {}) points at node {c} (level {}); \
                         levels must step by exactly 1",
                        node.level, child.level
                    ));
                }
                let tight = Rect::mbr_of_rects(child.entries.iter().map(|ce| ce.mbr));
                match tight {
                    Some(t) if t == e.mbr => {}
                    Some(t) => {
                        return Err(format!(
                            "node {id} entry {i}: stored MBR {:?} != exact child MBR {t:?} \
                             (tightness violated)",
                            e.mbr
                        ));
                    }
                    None => {
                        return Err(format!("node {id} entry {i} points at empty node {c}"));
                    }
                }
            }
        }
    }

    if checks.packed {
        for (&level, &count) in &underfull_per_level {
            if count > 1 {
                return Err(format!(
                    "level {level} has {count} under-full nodes; a packed tree \
                     may leave at most one leftover node per level"
                ));
            }
        }
    }

    // Item accounting.
    let items = img.leaf_entry_count();
    if items != img.declared_len {
        return Err(format!(
            "leaf entries sum to {items} but the tree declares len {}",
            img.declared_len
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{ImageEntry, ImageNode, TreeImage};
    use packed_rtree_core::pack;
    use rtree_geom::Point;
    use rtree_index::{ItemId, RTree, RTreeConfig};

    fn items(n: u64) -> Vec<(Rect, ItemId)> {
        (0..n)
            .map(|i| {
                let x = (i % 13) as f64;
                let y = (i / 13) as f64;
                (Rect::from_point(Point::new(x, y)), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn packed_tree_passes_packed_profile() {
        let tree = pack(items(200), RTreeConfig::PAPER);
        let img = TreeImage::of_rtree(&tree);
        validate_deep(&img, DeepChecks::packed()).unwrap();
    }

    #[test]
    fn dynamic_tree_passes_after_inserts_and_removes() {
        let mut tree = RTree::new(RTreeConfig::PAPER);
        let data = items(120);
        for &(r, id) in &data {
            tree.insert(r, id);
        }
        for &(r, id) in data.iter().step_by(3) {
            assert!(tree.remove(r, id));
            let img = TreeImage::of_rtree(&tree);
            validate_deep(&img, DeepChecks::dynamic()).unwrap();
        }
    }

    #[test]
    fn detects_loose_mbr() {
        let tree = pack(items(40), RTreeConfig::PAPER);
        let mut img = TreeImage::of_rtree(&tree);
        // Inflate one internal entry's stored MBR: still contains the
        // child, no longer tight.
        let internal = img
            .nodes
            .values_mut()
            .find(|n| n.level > 0)
            .expect("tree has internal nodes");
        internal.entries[0].mbr = internal.entries[0]
            .mbr
            .union(&Rect::new(-5.0, -5.0, -4.0, -4.0));
        let err = validate_deep(&img, DeepChecks::packed()).unwrap_err();
        assert!(err.contains("tightness"), "{err}");
    }

    #[test]
    fn detects_non_uniform_leaf_depth() {
        let tree = pack(items(40), RTreeConfig::PAPER);
        let mut img = TreeImage::of_rtree(&tree);
        // Claim a leaf is one level higher: the level-stepping rule
        // (which is what makes leaf depth uniform) must object.
        let leaf_id = *img
            .nodes
            .iter()
            .find(|(_, n)| n.level == 0)
            .map(|(id, _)| id)
            .expect("has leaves");
        img.nodes.get_mut(&leaf_id).expect("present").level = 1;
        assert!(validate_deep(&img, DeepChecks::packed()).is_err());
    }

    #[test]
    fn detects_shared_node_and_overflow() {
        let tree = pack(items(60), RTreeConfig::PAPER);
        let mut img = TreeImage::of_rtree(&tree);
        let root = img.root;
        let first_child = {
            let root_node = &img.nodes[&root];
            match root_node.entries[0].child {
                ImageChild::Node(c) => c,
                ImageChild::Item(_) => panic!("root of 60 items is internal"),
            }
        };
        // Duplicate the first entry: the child gains a second parent (and
        // the root may overflow M, either error is a correct rejection).
        let root_node = img.nodes.get_mut(&root).expect("root present");
        let dup = root_node.entries[0];
        root_node.entries.push(dup);
        let err = validate_deep(&img, DeepChecks::packed()).unwrap_err();
        assert!(
            err.contains("shared") || err.contains("> M"),
            "unexpected error for duplicated child {first_child}: {err}"
        );
    }

    #[test]
    fn detects_item_count_mismatch() {
        let tree = pack(items(40), RTreeConfig::PAPER);
        let mut img = TreeImage::of_rtree(&tree);
        img.declared_len = 39;
        let err = validate_deep(&img, DeepChecks::packed()).unwrap_err();
        assert!(err.contains("declares len"), "{err}");
    }

    #[test]
    fn empty_tree_is_valid() {
        let img = TreeImage {
            nodes: [(
                0,
                ImageNode {
                    level: 0,
                    entries: Vec::<ImageEntry>::new(),
                },
            )]
            .into_iter()
            .collect(),
            root: 0,
            declared_depth: 0,
            declared_len: 0,
            max_entries: 4,
            min_entries: 2,
        };
        validate_deep(&img, DeepChecks::dynamic()).unwrap();
    }
}
