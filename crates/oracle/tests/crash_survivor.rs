//! Crash/reopen differential: drive a [`PagedRTree`] update batch through
//! [`FaultPager`], crashing at every physical write, and for every
//! survivor that reopens cleanly run the full oracle battery — deep
//! structural validation of the page image plus engine-vs-linear-scan
//! search over whichever committed state (pre or post) the tree presents.

use rtree_geom::{Point, Rect};
use rtree_index::{BatchScratch, ItemId, RTreeConfig, SearchStats};
use rtree_oracle::{reference, validate_deep, DeepChecks, TreeImage};
use rtree_storage::fault::{FaultKind, FaultPager, FaultScript};
use rtree_storage::{PageId, PagedRTree, Pager, StorageError};

fn sorted(mut ids: Vec<ItemId>) -> Vec<ItemId> {
    ids.sort_unstable_by_key(|&ItemId(i)| i);
    ids
}

#[test]
fn crash_survivors_validate_deep_and_match_oracle() {
    let path =
        std::env::temp_dir().join(format!("oracle-crash-survivor-{}.db", std::process::id()));
    let items: Vec<(Rect, ItemId)> = (0..90)
        .map(|i| {
            let x = (i * 37 % 211) as f64;
            let y = (i * 53 % 197) as f64;
            (Rect::from_point(Point::new(x, y)), ItemId(i))
        })
        .collect();
    let pre: Vec<_> = items[..60].to_vec();
    let post: Vec<_> = items[10..].to_vec(); // batch inserts 60..90, removes 0..10
    let windows = [
        Rect::new(0.0, 0.0, 250.0, 250.0),
        Rect::new(40.0, 40.0, 120.0, 150.0),
        Rect::new(100.0, 0.0, 100.0, 200.0), // degenerate line
    ];

    {
        let pager = Pager::create(&path).expect("create db file");
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 16).expect("create tree");
        for &(mbr, id) in &pre {
            tree.insert(mbr, id).expect("seed insert");
        }
        tree.close().expect("close");
    }
    let snapshot = std::fs::read(&path).expect("snapshot");

    let apply = |store: &dyn rtree_storage::PageStore| -> rtree_storage::StorageResult<()> {
        let mut tree = PagedRTree::open(store, PageId(0), 16)?;
        for &(mbr, id) in &items[60..90] {
            tree.insert(mbr, id)?;
        }
        for &(mbr, id) in &items[..10] {
            tree.remove(mbr, id)?;
        }
        tree.commit()
    };

    // Count the batch's physical writes on a fault-free run.
    let total_writes = {
        let pager = Pager::open(&path).expect("open");
        let faulty = FaultPager::new(&pager, FaultScript::new());
        apply(&faulty).expect("fault-free batch");
        faulty.writes_seen()
    };
    assert!(total_writes > 3);

    let mut clean = 0u32;
    for k in 1..=total_writes {
        std::fs::write(&path, &snapshot).expect("restore snapshot");
        {
            let pager = Pager::open(&path).expect("open");
            let script = FaultScript::new().on_write(k, FaultKind::TornWrite, true);
            let faulty = FaultPager::new(&pager, script);
            assert!(apply(&faulty).is_err(), "crash point {k} must abort");
        }
        let pager = Pager::open(&path).expect("open survivor");
        let tree = PagedRTree::open(&pager, PageId(0), 16)
            .unwrap_or_else(|e| panic!("crash point {k}: open failed: {e}"));
        // A survivor either reports its damage or presents a committed
        // state; in the latter case the oracle must fully agree with it.
        match TreeImage::of_paged_tree(&tree) {
            Ok(img) => {
                if validate_deep(&img, DeepChecks::dynamic()).is_err() {
                    continue; // damage reported by the deep validator
                }
                let expect_items = if tree.len() == pre.len() {
                    &pre
                } else if tree.len() == post.len() {
                    &post
                } else {
                    panic!(
                        "crash point {k}: clean tree with impossible len {}",
                        tree.len()
                    );
                };
                for w in &windows {
                    let mut stats = SearchStats::default();
                    let got = sorted(tree.search_within(w, &mut stats).unwrap_or_else(|e| {
                        panic!("crash point {k}: search failed on clean tree: {e}")
                    }));
                    let expect = sorted(reference::window_items(expect_items, w, true));
                    assert_eq!(
                        got, expect,
                        "crash point {k}: survivor tree diverges from oracle on {w:?}"
                    );
                }
                // A clean survivor must also freeze into a structurally
                // sound arena that gives the same answers.
                let frozen = tree
                    .freeze()
                    .unwrap_or_else(|e| panic!("crash point {k}: freeze failed: {e}"));
                validate_deep(&TreeImage::of_frozen(&frozen), DeepChecks::dynamic())
                    .unwrap_or_else(|e| {
                        panic!("crash point {k}: frozen survivor fails validate_deep: {e}")
                    });
                for w in &windows {
                    let mut stats = SearchStats::default();
                    let got = sorted(frozen.search_within(w, &mut stats));
                    let expect = sorted(reference::window_items(expect_items, w, true));
                    assert_eq!(
                        got, expect,
                        "crash point {k}: frozen survivor diverges from oracle on {w:?}"
                    );
                    // The scalar kernel must agree with the default
                    // (possibly SIMD) kernel on the survivor too.
                    let mut ss = SearchStats::default();
                    assert_eq!(
                        frozen.search_within_scalar(w, &mut ss),
                        frozen.search_within(w, &mut SearchStats::default()),
                        "crash point {k}: scalar kernel diverges on {w:?}"
                    );
                }
                // Batched execution over the frozen survivor matches the
                // one-at-a-time answers slice for slice.
                let mut batch = BatchScratch::new();
                let batched = frozen.batch_windows(&windows, true, &mut batch);
                for (wi, w) in windows.iter().enumerate() {
                    assert_eq!(
                        batched.get(wi),
                        frozen
                            .search_within(w, &mut SearchStats::default())
                            .as_slice(),
                        "crash point {k}: batched window {wi} diverges on survivor"
                    );
                }
                clean += 1;
            }
            Err(StorageError::Corrupt { .. }) => {} // damage reported
            Err(e) => panic!("crash point {k}: unexpected error {e:?}"),
        }
    }
    // The matrix must exercise the interesting path: at least the final
    // crash points (after the meta flip) leave a clean committed tree.
    assert!(clean > 0, "no crash point produced a clean survivor");
    let _ = std::fs::remove_file(&path);
}
