//! Oracle-vs-engine differential run over the US-map workload: every
//! picture of [`PictorialDatabase::with_us_map`], all four spatial
//! operators, a sweep of windows — engine answers (stats path and
//! allocation-free scratch path) against the brute-force oracle, plus
//! deep structural validation of every picture tree in both its dynamic
//! (as-inserted) and packed states.

use psql::{PictorialDatabase, SpatialOp};
use rtree_geom::Rect;
use rtree_index::{SearchScratch, SearchStats};
use rtree_oracle::{reference, validate_deep, DeepChecks, TreeImage};

const PICTURES: [&str; 5] = [
    "us-map",
    "state-map",
    "time-zone-map",
    "lake-map",
    "highway-map",
];

const OPS: [SpatialOp; 4] = [
    SpatialOp::Covering,
    SpatialOp::CoveredBy,
    SpatialOp::Overlapping,
    SpatialOp::Disjoined,
];

/// A sweep of windows over the 100×50 frame: quadrants, thin slices,
/// degenerate lines and points, and windows straddling the frame edge.
fn windows() -> Vec<Rect> {
    let mut out = Vec::new();
    for i in 0..4 {
        for j in 0..2 {
            let x0 = 25.0 * i as f64;
            let y0 = 25.0 * j as f64;
            out.push(Rect::new(x0, y0, x0 + 25.0, y0 + 25.0));
        }
    }
    out.push(Rect::new(0.0, 0.0, 100.0, 50.0)); // whole frame
    out.push(Rect::new(40.0, 0.0, 60.0, 50.0)); // vertical band
    out.push(Rect::new(0.0, 20.0, 100.0, 30.0)); // horizontal band
    out.push(Rect::new(50.0, 0.0, 50.0, 50.0)); // degenerate line
    out.push(Rect::new(30.0, 25.0, 30.0, 25.0)); // degenerate point
    out.push(Rect::new(90.0, 40.0, 120.0, 60.0)); // straddles the frame
    out.push(Rect::new(101.0, 51.0, 110.0, 60.0)); // fully outside
    out
}

fn check_database(db: &PictorialDatabase, checks: DeepChecks, label: &str) {
    let mut scratch = SearchScratch::new();
    for name in PICTURES {
        let pic = db.picture(name).expect("picture exists");
        let objects: Vec<_> = pic
            .object_ids()
            .map(|id| pic.object(id).expect("id enumerated").clone())
            .collect();
        validate_deep(&TreeImage::of_rtree(pic.tree()), checks)
            .unwrap_or_else(|e| panic!("{label}: picture {name} fails validate_deep: {e}"));
        for w in windows() {
            for op in OPS {
                let mut expect = reference::window_objects(&objects, op, &w);
                expect.sort_unstable();
                let mut stats = SearchStats::default();
                let mut got = pic.search_window(op, &w, &mut stats);
                got.sort_unstable();
                assert_eq!(
                    got, expect,
                    "{label}: picture {name}, op {op}, window {w:?}: stats path diverges"
                );
                let mut fast = pic.search_window_fast(op, &w, &mut scratch);
                fast.sort_unstable();
                assert_eq!(
                    fast, expect,
                    "{label}: picture {name}, op {op}, window {w:?}: scratch path diverges"
                );
            }
        }
    }
}

#[test]
fn usmap_engine_matches_oracle_dynamic_and_packed() {
    // As built: every picture tree grew through Guttman inserts.
    let mut db = PictorialDatabase::with_us_map();
    check_database(&db, DeepChecks::dynamic(), "dynamic");

    // After PACK: same answers, and the packed fullness invariant holds.
    db.pack_all();
    check_database(&db, DeepChecks::packed(), "packed");
}
