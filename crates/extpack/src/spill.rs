//! Spill runs: the on-disk format of externally sorted record runs.
//!
//! A run is a sequence of [`SpillRecord`]s in pack-key order, stored in
//! CRC-framed [`PageType::Spill`] pages through the ordinary
//! [`PageStore`] write path (checksums stamped on write, verified on
//! read, so a torn spill write surfaces as typed corruption):
//!
//! ```text
//! offset 0   u32  record count in this page
//! offset 4   [u8; 4] reserved (zero)
//! offset 8   records, 48 bytes each:
//!            f64 min_x, f64 min_y, f64 max_x, f64 max_y   (the rect)
//!            u64 child                                    (item / page)
//!            u64 seq                                      (arrival order)
//! ```
//!
//! `seq` is the record's index in the level's arrival order. It makes
//! the merge comparator a total order that matches the in-memory
//! packer's sort exactly (ascending center-x, ties by center-y, then by
//! input index) — the keystone of bit-identity.
//!
//! Every page of a run except the last is full
//! ([`RECORDS_PER_PAGE`] records), which gives the partitioned merge a
//! cheap random-access property: the record offset of page `i` is
//! `i · RECORDS_PER_PAGE`, so [`RunReader::open_at`] can binary-search a
//! run by page first-keys and open a reader positioned at the first
//! record of any key range without touching the pages before it.

use rtree_geom::Rect;
use rtree_storage::{Page, PageId, PageStore, PageType, StorageError, StorageResult, PAYLOAD_SIZE};
use std::cmp::Ordering;

/// Bytes per spill record: rect (4 × f64) + child (u64) + seq (u64).
pub const RECORD_SIZE: usize = 48;

/// Bytes of spill-page header (count + reserved).
pub const SPILL_HEADER_SIZE: usize = 8;

/// Records per spill page (85 with 4 KiB pages).
pub const RECORDS_PER_PAGE: usize = (PAYLOAD_SIZE - SPILL_HEADER_SIZE) / RECORD_SIZE;

/// One record of a spill run: an entry awaiting packing. At level 0 the
/// rect is an item's MBR and `child` its [`ItemId`](rtree_index::ItemId);
/// at upper levels the rect is a group MBR and `child` the group's node
/// page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillRecord {
    /// The entry's bounding rectangle.
    pub rect: Rect,
    /// Item id (level 0) or child node page (levels ≥ 1).
    pub child: u64,
    /// Index in the level's arrival order (the sort tiebreaker).
    pub seq: u64,
}

impl SpillRecord {
    /// The record's pack sort key.
    pub fn key(&self) -> SortKey {
        let c = self.rect.center();
        SortKey {
            x: c.x,
            y: c.y,
            seq: self.seq,
        }
    }

    fn encode(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.rect.min_x.to_le_bytes());
        out[8..16].copy_from_slice(&self.rect.min_y.to_le_bytes());
        out[16..24].copy_from_slice(&self.rect.max_x.to_le_bytes());
        out[24..32].copy_from_slice(&self.rect.max_y.to_le_bytes());
        out[32..40].copy_from_slice(&self.child.to_le_bytes());
        out[40..48].copy_from_slice(&self.seq.to_le_bytes());
    }

    fn decode(b: &[u8]) -> SpillRecord {
        let f = |o: usize| f64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        SpillRecord {
            rect: Rect::new(f(0), f(8), f(16), f(24)),
            child: u64::from_le_bytes(b[32..40].try_into().expect("8 bytes")),
            seq: u64::from_le_bytes(b[40..48].try_into().expect("8 bytes")),
        }
    }
}

/// The pack sort key: ascending center-x, ties by center-y, then by
/// arrival index — exactly the comparator of
/// [`packed_rtree_core::grouping::order`], where the final tiebreaker is
/// the index into the level's input (which is what `seq` records).
///
/// Within one tree level `seq` is unique, so the key is globally unique:
/// any partition of the key space induces a partition of the level's
/// records, and concatenating per-range merges in key order reproduces
/// the global merge exactly — the invariant the parallel merge rests on.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    x: f64,
    y: f64,
    seq: u64,
}

impl PartialEq for SortKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.x
            .total_cmp(&other.x)
            .then(self.y.total_cmp(&other.y))
            .then(self.seq.cmp(&other.seq))
    }
}

/// A completed spill run: which pages hold it and how many records.
#[derive(Debug, Clone)]
pub struct Run {
    /// The run's pages, in record order (not necessarily contiguous —
    /// the spill store recycles pages freed by merged-away runs). Every
    /// page except the last holds exactly [`RECORDS_PER_PAGE`] records.
    pub pages: Vec<PageId>,
    /// Total records in the run.
    pub records: u64,
}

/// Streams records into a new spill run, one page buffer at a time.
pub struct RunWriter<'a> {
    store: &'a (dyn PageStore + Sync),
    page: Page,
    in_page: usize,
    pages: Vec<PageId>,
    records: u64,
}

impl<'a> RunWriter<'a> {
    /// Starts a new run in `store`.
    pub fn new(store: &'a (dyn PageStore + Sync)) -> RunWriter<'a> {
        RunWriter {
            store,
            page: Page::zeroed(),
            in_page: 0,
            pages: Vec::new(),
            records: 0,
        }
    }

    /// Appends one record (records must arrive in run order).
    pub fn push(&mut self, rec: &SpillRecord) -> StorageResult<()> {
        let at = SPILL_HEADER_SIZE + self.in_page * RECORD_SIZE;
        rec.encode(&mut self.page.bytes_mut()[at..at + RECORD_SIZE]);
        self.in_page += 1;
        self.records += 1;
        if self.in_page == RECORDS_PER_PAGE {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> StorageResult<()> {
        if self.in_page == 0 {
            return Ok(());
        }
        self.page.bytes_mut()[0..4].copy_from_slice(&(self.in_page as u32).to_le_bytes());
        self.page.set_type(PageType::Spill);
        let id = self.store.allocate();
        self.store.write_page(id, &self.page)?;
        self.pages.push(id);
        self.page = Page::zeroed();
        self.in_page = 0;
        Ok(())
    }

    /// Flushes the tail page and returns the completed run.
    pub fn finish(mut self) -> StorageResult<Run> {
        self.flush()?;
        Ok(Run {
            pages: self.pages,
            records: self.records,
        })
    }
}

/// Streams a run's records back, holding one decoded page at a time
/// (the "merge head": ~one page of resident memory per open run). The
/// decode buffer is reused across pages, so steady-state reading is
/// allocation-free.
pub struct RunReader<'a> {
    store: &'a (dyn PageStore + Sync),
    run: Run,
    next_page: usize,
    buf: Vec<SpillRecord>,
    buf_pos: usize,
    remaining: u64,
}

impl<'a> RunReader<'a> {
    /// Opens `run` for sequential reading from its first record.
    pub fn open(store: &'a (dyn PageStore + Sync), run: Run) -> RunReader<'a> {
        let remaining = run.records;
        RunReader {
            store,
            run,
            next_page: 0,
            buf: Vec::new(),
            buf_pos: 0,
            remaining,
        }
    }

    /// Opens `run` positioned at its first record with key ≥ `lo`.
    ///
    /// Binary-searches the run's pages by first-record key (every page
    /// except the last is full, so a page's record offset is implied by
    /// its index), then skips within the boundary page — at most two
    /// probe reads per binary-search step and one resident page, never a
    /// scan of the run's prefix.
    pub fn open_at(
        store: &'a (dyn PageStore + Sync),
        run: Run,
        lo: &SortKey,
    ) -> StorageResult<RunReader<'a>> {
        // First page whose first key is ≥ lo; the range boundary can sit
        // inside the page before it.
        let mut a = 0usize;
        let mut b = run.pages.len();
        while a < b {
            let mid = (a + b) / 2;
            if first_key_of_page(store, run.pages[mid])? < *lo {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        let start_page = a.saturating_sub(1);
        let skipped = (start_page * RECORDS_PER_PAGE) as u64;
        let mut reader = RunReader {
            store,
            remaining: run.records - skipped.min(run.records),
            run,
            next_page: start_page,
            buf: Vec::new(),
            buf_pos: 0,
        };
        // Skip the (at most one page of) records still below `lo`.
        while let Some(key) = reader.peek_key()? {
            if key >= *lo {
                break;
            }
            reader.advance();
        }
        Ok(reader)
    }

    /// The next record, or `None` at end of run.
    pub fn next_record(&mut self) -> StorageResult<Option<SpillRecord>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.buf_pos == self.buf.len() {
            self.load_page()?;
        }
        let rec = self.buf[self.buf_pos];
        self.advance();
        Ok(Some(rec))
    }

    /// The key of the next record without consuming it.
    fn peek_key(&mut self) -> StorageResult<Option<SortKey>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.buf_pos == self.buf.len() {
            self.load_page()?;
        }
        Ok(Some(self.buf[self.buf_pos].key()))
    }

    fn advance(&mut self) {
        self.buf_pos += 1;
        self.remaining -= 1;
    }

    fn load_page(&mut self) -> StorageResult<()> {
        let Some(&id) = self.run.pages.get(self.next_page) else {
            return Err(StorageError::corrupt(
                *self.run.pages.last().unwrap_or(&PageId(0)),
                format!("spill run ended with {} records missing", self.remaining),
            ));
        };
        self.next_page += 1;
        let page = self.store.read_page(id)?;
        decode_spill_page(&page, &mut self.buf)
            .map_err(|reason| StorageError::corrupt(id, reason))?;
        self.buf_pos = 0;
        Ok(())
    }

    /// Consumes the reader, returning the run (so its pages can be freed
    /// once a merge is done with them).
    pub fn into_run(self) -> Run {
        self.run
    }
}

/// Reads the first record's key of one spill page (a partition-planning
/// probe; the page is verified like any other read).
pub(crate) fn first_key_of_page(
    store: &(dyn PageStore + Sync),
    id: PageId,
) -> StorageResult<SortKey> {
    let page = store.read_page(id)?;
    if page.tag() != PageType::Spill as u8 {
        return Err(StorageError::corrupt(
            id,
            format!("expected spill page, found tag {}", page.tag()),
        ));
    }
    let bytes = page.bytes();
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if count == 0 || count > RECORDS_PER_PAGE {
        return Err(StorageError::corrupt(
            id,
            format!("spill record count {count} outside 1..={RECORDS_PER_PAGE}"),
        ));
    }
    Ok(SpillRecord::decode(&bytes[SPILL_HEADER_SIZE..SPILL_HEADER_SIZE + RECORD_SIZE]).key())
}

/// Decodes one spill page into `out` (cleared first), validating tag and
/// count bounds.
fn decode_spill_page(page: &Page, out: &mut Vec<SpillRecord>) -> Result<(), String> {
    if page.tag() != PageType::Spill as u8 {
        return Err(format!("expected spill page, found tag {}", page.tag()));
    }
    let bytes = page.bytes();
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if count == 0 || count > RECORDS_PER_PAGE {
        return Err(format!(
            "spill record count {count} outside 1..={RECORDS_PER_PAGE}"
        ));
    }
    out.clear();
    out.extend((0..count).map(|i| {
        let at = SPILL_HEADER_SIZE + i * RECORD_SIZE;
        SpillRecord::decode(&bytes[at..at + RECORD_SIZE])
    }));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;
    use rtree_storage::Pager;

    fn rec(i: u64) -> SpillRecord {
        SpillRecord {
            rect: Rect::from_point(Point::new(i as f64 * 1.5, -(i as f64))),
            child: 1000 + i,
            seq: i,
        }
    }

    #[test]
    fn capacity_fills_the_page() {
        assert_eq!(RECORDS_PER_PAGE, 85);
        const { assert!(SPILL_HEADER_SIZE + RECORDS_PER_PAGE * RECORD_SIZE <= PAYLOAD_SIZE) }
    }

    #[test]
    fn roundtrip_multi_page_run() {
        let pager = Pager::temp().unwrap();
        let mut w = RunWriter::new(&pager);
        let n = RECORDS_PER_PAGE as u64 * 2 + 7; // 2 full pages + a tail
        for i in 0..n {
            w.push(&rec(i)).unwrap();
        }
        let run = w.finish().unwrap();
        assert_eq!(run.records, n);
        assert_eq!(run.pages.len(), 3);

        let mut r = RunReader::open(&pager, run);
        for i in 0..n {
            assert_eq!(r.next_record().unwrap(), Some(rec(i)), "record {i}");
        }
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn empty_run_roundtrips() {
        let pager = Pager::temp().unwrap();
        let run = RunWriter::new(&pager).finish().unwrap();
        assert_eq!(run.records, 0);
        assert!(run.pages.is_empty());
        let mut r = RunReader::open(&pager, run);
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn open_at_positions_on_first_record_at_or_above_key() {
        let pager = Pager::temp().unwrap();
        let mut w = RunWriter::new(&pager);
        // i → center x = 1.5·i, strictly increasing: seeking to record
        // i's key must return the suffix starting at i.
        let n = RECORDS_PER_PAGE as u64 * 3 + 11;
        for i in 0..n {
            w.push(&rec(i)).unwrap();
        }
        let run = w.finish().unwrap();
        // Probe boundaries: run start, page boundaries ±1, mid-page,
        // last record, and past the end.
        for &start in &[
            0,
            1,
            RECORDS_PER_PAGE as u64 - 1,
            RECORDS_PER_PAGE as u64,
            RECORDS_PER_PAGE as u64 + 1,
            2 * RECORDS_PER_PAGE as u64 + 40,
            n - 1,
        ] {
            let mut r = RunReader::open_at(&pager, run.clone(), &rec(start).key()).unwrap();
            for i in start..(start + 3).min(n) {
                assert_eq!(
                    r.next_record().unwrap(),
                    Some(rec(i)),
                    "start {start} rec {i}"
                );
            }
        }
        // A key between records i and i+1 lands on i+1.
        let between = SpillRecord {
            rect: Rect::from_point(Point::new(1.5 * 100.0 + 0.7, 0.0)),
            child: 0,
            seq: 0,
        };
        let mut r = RunReader::open_at(&pager, run.clone(), &between.key()).unwrap();
        assert_eq!(r.next_record().unwrap(), Some(rec(101)));
        // A key past the last record yields an empty reader.
        let past = SpillRecord {
            rect: Rect::from_point(Point::new(1.5 * n as f64 + 10.0, 0.0)),
            child: 0,
            seq: 0,
        };
        let mut r = RunReader::open_at(&pager, run, &past.key()).unwrap();
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn corrupt_spill_page_detected() {
        let pager = Pager::temp().unwrap();
        let mut w = RunWriter::new(&pager);
        for i in 0..10 {
            w.push(&rec(i)).unwrap();
        }
        let run = w.finish().unwrap();
        // Flip a byte behind the checksum's back.
        let id = run.pages[0];
        let mut raw = pager.read_page_raw(id).unwrap();
        raw.bytes_mut()[20] ^= 0xFF;
        pager.write_page_raw(id, &raw).unwrap();
        let mut r = RunReader::open(&pager, run);
        assert!(r.next_record().unwrap_err().is_corrupt());
    }

    #[test]
    fn wrong_tag_rejected() {
        let pager = Pager::temp().unwrap();
        let mut w = RunWriter::new(&pager);
        w.push(&rec(0)).unwrap();
        let run = w.finish().unwrap();
        let id = run.pages[0];
        let mut page = pager.read_page(id).unwrap();
        page.set_type(PageType::Node);
        pager.write_page(id, &page).unwrap();
        let mut r = RunReader::open(&pager, run);
        let err = r.next_record().unwrap_err();
        assert!(err.is_corrupt(), "{err:?}");
    }

    #[test]
    fn sort_key_matches_pack_comparator() {
        // Distinct centers order by x, then y; identical centers by seq.
        let a = SpillRecord {
            rect: Rect::new(0.0, 0.0, 2.0, 2.0),
            child: 0,
            seq: 5,
        };
        let b = SpillRecord {
            rect: Rect::new(1.0, 0.0, 3.0, 2.0),
            child: 0,
            seq: 1,
        };
        assert!(a.key() < b.key());
        let c = SpillRecord { seq: 6, ..a };
        assert!(a.key() < c.key());
        assert_eq!(a.key().cmp(&a.key()), Ordering::Equal);
    }
}
