//! The memory-budget accounting hook.
//!
//! Every byte of run buffer, merge head, partition chunk, and emission
//! batch the external packer holds is charged here before use and
//! released after, so tests can assert that peak resident buffer usage
//! never exceeded
//! [`ExtPackConfig::memory_budget_bytes`](crate::ExtPackConfig::memory_budget_bytes).
//!
//! The accountant is lock-free and shared by reference across the
//! pipeline's worker threads (the background run sorter, the partition
//! mergers): charges are atomic adds and the peak is maintained with a
//! compare-free `fetch_max`, so concurrent charges from any number of
//! workers still produce an exact high-water mark.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tracks current and peak accounted bytes against a budget.
///
/// The accountant does not *enforce* the budget — the packer sizes its
/// buffers, fan-ins, and worker counts so charges stay within it (above
/// a small floor: a merge needs at least two heads and a run buffer at
/// least one record) — it records what was actually held so the bound is
/// checkable from outside.
#[derive(Debug)]
pub struct BudgetAccountant {
    budget: u64,
    current: AtomicU64,
    peak: AtomicU64,
}

impl BudgetAccountant {
    /// A fresh accountant for `budget` bytes.
    pub fn new(budget: u64) -> BudgetAccountant {
        BudgetAccountant {
            budget,
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Charges `bytes` of resident buffer memory.
    pub fn charge(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` previously charged.
    pub fn release(&self, bytes: u64) {
        // Saturating: a release can never drive the ledger negative.
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The budget this accountant was created with.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Budget bytes not currently charged (0 when over the floor).
    pub fn headroom(&self) -> u64 {
        self.budget.saturating_sub(self.current())
    }

    /// The high-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let b = BudgetAccountant::new(100);
        b.charge(30);
        b.charge(50);
        b.release(60);
        b.charge(10);
        assert_eq!(b.current(), 30);
        assert_eq!(b.peak(), 80);
        assert_eq!(b.budget(), 100);
        assert_eq!(b.headroom(), 70);
    }

    #[test]
    fn release_saturates() {
        let b = BudgetAccountant::new(10);
        b.charge(5);
        b.release(100);
        assert_eq!(b.current(), 0);
        assert_eq!(b.peak(), 5);
    }

    #[test]
    fn concurrent_charges_keep_an_exact_peak() {
        // 4 threads × 1000 balanced charge/release pairs of 7 bytes: the
        // ledger must return to zero and the peak can never exceed the
        // sum of simultaneously outstanding charges.
        let b = BudgetAccountant::new(1 << 20);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        b.charge(7);
                        b.release(7);
                    }
                });
            }
        });
        assert_eq!(b.current(), 0);
        assert!(b.peak() >= 7, "at least one charge was outstanding");
        assert!(b.peak() <= 4 * 7, "peak {} > 4 workers × 7", b.peak());
    }
}
