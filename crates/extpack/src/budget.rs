//! The memory-budget accounting hook.
//!
//! Every byte of run buffer and merge head the external packer holds is
//! charged here before use and released after, so tests can assert that
//! peak resident buffer usage never exceeded
//! [`ExtPackConfig::memory_budget_bytes`](crate::ExtPackConfig::memory_budget_bytes).

/// Tracks current and peak accounted bytes against a budget.
///
/// The accountant does not *enforce* the budget — the packer sizes its
/// buffers so charges stay within it (above a small floor: a merge needs
/// at least two heads and a run buffer at least one record) — it records
/// what was actually held so the bound is checkable from outside.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    budget: u64,
    current: u64,
    peak: u64,
}

impl BudgetAccountant {
    /// A fresh accountant for `budget` bytes.
    pub fn new(budget: u64) -> BudgetAccountant {
        BudgetAccountant {
            budget,
            current: 0,
            peak: 0,
        }
    }

    /// Charges `bytes` of resident buffer memory.
    pub fn charge(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Releases `bytes` previously charged.
    pub fn release(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// The budget this accountant was created with.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The high-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut b = BudgetAccountant::new(100);
        b.charge(30);
        b.charge(50);
        b.release(60);
        b.charge(10);
        assert_eq!(b.current(), 30);
        assert_eq!(b.peak(), 80);
        assert_eq!(b.budget(), 100);
    }

    #[test]
    fn release_saturates() {
        let mut b = BudgetAccountant::new(10);
        b.charge(5);
        b.release(100);
        assert_eq!(b.current(), 0);
        assert_eq!(b.peak(), 5);
    }
}
