//! Out-of-core external PACK: bulk-load datasets that don't fit in RAM.
//!
//! The paper's `PACK` (§3.3) assumes the whole point set can be sorted
//! in memory. This crate removes that assumption with a classic external
//! merge sort **folded directly into packed page emission** — there is
//! no intermediate sorted copy of the data:
//!
//! 1. **Run generation** — the item stream fills a budget-bounded
//!    buffer; each full buffer is sorted in pack-key order (ascending
//!    center-x, ties by y then arrival, via the same comparator as the
//!    in-memory packer, applied with
//!    [`par_sort_values`](packed_rtree_core::par_sort_values)) and
//!    spilled as a CRC-framed run of
//!    [`PageType::Spill`](rtree_storage::PageType) pages. With
//!    `threads ≥ 2` production is **overlapped**: a background sorter
//!    sorts and spills run N while the producer fills run N+1
//!    (double-buffered, both buffers budget-accounted).
//! 2. **Merge → emit** — the runs are k-way merged, **partitioned by
//!    key range across worker threads** when budget and thread count
//!    allow (keys are unique per level, so the stitched partitions equal
//!    the global merge record for record); the merged stream is cut into
//!    the *same* deterministic slabs as the in-memory packer
//!    ([`SlabPlan`](packed_rtree_core::grouping::SlabPlan)), each slab is
//!    grouped with [`group_slab`](packed_rtree_core::grouping::group_slab),
//!    and every group is written as one fully packed node page into the
//!    destination file in contiguous batches
//!    ([`PageStore::write_pages`](rtree_storage::PageStore::write_pages)).
//!    A [`NodeSink`] observes every emitted node, so callers can build
//!    the frozen query arena *during* the pack. Group MBRs feed the next
//!    level through the same run machinery, "working ever backwards,
//!    until the root is finally reached" (§3.3).
//! 3. **Commit** — the two-slot meta pair flips only after every node
//!    page is durable ([`DiskRTree::commit_external`]), so a crash at
//!    any point leaves the previous tree or a detectably-absent one.
//!
//! Because run boundaries are contiguous arrival chunks whose size
//! depends only on the budget (never the thread count), the merge
//! comparator (center-x, center-y, arrival order) reproduces exactly the
//! global sorted permutation of the in-memory packer, and because the
//! slab plan is a pure function of `(strategy, n, m)`, the resulting
//! tree is **bit-identical** to [`pack`](packed_rtree_core::pack) at any
//! memory budget *and any thread count* — the differential suite asserts
//! this down to budgets that force one-record runs.
//!
//! Memory is governed by one knob,
//! [`ExtPackConfig::memory_budget_bytes`], which bounds run buffers,
//! merge heads, partition chunks, and the emission batch (asserted
//! through the [`BudgetAccountant`] hook); worker counts are clamped to
//! what the budget affords, so over-subscribed `threads` degrade rather
//! than overshoot. The slab buffer is a fixed working set of ~`512·M`
//! entries reported separately in [`ExtPackStats`]. See `DESIGN.md`
//! §15 and §17.
//!
//! # Quick start
//!
//! ```
//! use rtree_extpack::{pack_external, ExtPackConfig};
//! use rtree_geom::{Point, Rect};
//! use rtree_index::ItemId;
//! use rtree_storage::Pager;
//!
//! let items = (0..10_000u64).map(|i| {
//!     let p = Point::new((i % 101) as f64, (i / 101) as f64);
//!     (Rect::from_point(p), ItemId(i))
//! });
//! let dest = Pager::temp().unwrap();
//! // 64 KiB budget: far smaller than the 10k-item dataset.
//! let cfg = ExtPackConfig::new(64 * 1024);
//! let (tree, stats) = pack_external(items, &cfg, &dest).unwrap();
//! assert_eq!(tree.len(), 10_000);
//! assert!(stats.initial_runs > 1, "must have spilled");
//! assert!(stats.peak_budget_bytes <= 64 * 1024);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod budget;
pub mod guard;
pub mod merge;
pub mod pack;
pub mod spill;

pub use budget::BudgetAccountant;
pub use guard::SpillDir;
pub use merge::MERGE_HEAD_BYTES;
pub use pack::{
    pack_external, pack_external_into, pack_external_into_sink, pack_external_with_sink,
    ExtPackConfig, ExtPackError, ExtPackResult, ExtPackStats, NodeSink, NullSink, MAX_RUN_RECORDS,
    RUN_RECORD_FOOTPRINT,
};
pub use spill::{SpillRecord, RECORDS_PER_PAGE, RECORD_SIZE};
