//! The external PACK driver: stream → runs → merge → packed pages.
//!
//! Level 0 consumes the caller's item stream through budget-bounded,
//! double-buffered run production (with `threads ≥ 2`, a background
//! sorter sorts and spills run N while the producer fills run N+1);
//! every level above is the same pipeline applied to the group MBRs the
//! level below emitted, "working ever backwards, until the root is
//! finally reached" (§3.3). Each level's runs are k-way merged — split
//! into key-range partitions across worker threads when the budget
//! affords it — and the merged stream is cut into the in-memory packer's
//! deterministic slabs ([`SlabPlan`]), grouped with the identical
//! [`group_slab`] machinery, and written as fully packed node pages in
//! contiguous batches straight into the destination store. A
//! [`NodeSink`] observes every emitted node, which lets callers build
//! the frozen query arena *during* the pack instead of re-reading the
//! destination afterwards.
//!
//! # Budget ledger
//!
//! All concurrent buffers are charged to one [`BudgetAccountant`]:
//!
//! * **Run production** — two run buffers resident (producer + sorter;
//!   both are reserved at every thread count so run boundaries never
//!   depend on `threads`), each capped at
//!   `budget / (2 · RUN_RECORD_FOOTPRINT)` records and at
//!   [`MAX_RUN_RECORDS`] — huge budgets keep cache-friendly sorts
//!   instead of degrading into giant buffers that pack *slower*.
//! * **Merging** — half the budget pays for merge heads: reduction
//!   rounds charge `(fan_in + 1)` heads per in-flight chunk; the final
//!   merge charges one head per open run per partition worker plus each
//!   worker's in-flight record chunks. Worker counts are clamped to what
//!   the headroom affords — over-subscribed `threads` degrade, never
//!   overshoot.
//! * **Next level** — a quarter of the budget bounds the next level's
//!   run buffer.
//! * **Emission** — an eighth of the budget buys the contiguous
//!   node-page write batch beyond its first (always-present) page, so
//!   node pages go to the destination in large sequential writes.

use crate::budget::BudgetAccountant;
use crate::guard::SpillDir;
use crate::merge::{
    clamp_workers, merge_range, partition_chunk_bytes, plan_partitions, reduce_runs, MergeCursor,
    MERGE_HEAD_BYTES, PARTITION_CHUNK_RECORDS,
};
use crate::spill::{Run, RunWriter, SpillRecord};
use packed_rtree_core::grouping::{group_slab, SlabPlan};
use packed_rtree_core::{par_sort_values, PackStrategy};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig};
use rtree_storage::codec::{self, DiskNode, MAX_ENTRIES_PER_PAGE};
use rtree_storage::{DiskRTree, Page, PageId, PageStore, StorageError, StorageResult, PAGE_SIZE};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::Instant;

/// Accounted bytes per buffered run record: the 48-byte [`SpillRecord`]
/// plus the sort's worst-case scratch (the parallel merge cascade's
/// ping-pong copy of the buffer).
pub const RUN_RECORD_FOOTPRINT: u64 = 96;

/// Hard cap on records per run buffer. Past a few MiB of records a
/// bigger buffer stops helping: the sort loses cache locality (measured
/// as a 64 MiB budget packing *slower* than a 256 KiB one) while the
/// merge absorbs hundreds of runs in a single pass anyway.
pub const MAX_RUN_RECORDS: u64 = 65536;

/// Resident bytes per slab-buffer entry (record + rect copy + ord slot),
/// used only for the reported fixed-working-set figure.
const SLAB_ENTRY_BYTES: u64 = 88;

/// Largest node-page emission batch (pages written with one contiguous
/// store write).
const EMIT_BATCH_MAX_PAGES: u64 = 64;

/// Records one level-0 run buffer holds: half the budget (two buffers
/// are resident under double-buffering), capped at [`MAX_RUN_RECORDS`].
fn level0_run_capacity(budget: u64) -> u64 {
    (budget / (2 * RUN_RECORD_FOOTPRINT)).clamp(1, MAX_RUN_RECORDS)
}

/// Records per upper-level run buffer: these buffers are resident
/// *while* merge heads and the emission batch live, so they get a
/// quarter of the budget.
fn upper_run_capacity(budget: u64) -> u64 {
    ((budget / 4) / (2 * RUN_RECORD_FOOTPRINT)).clamp(1, MAX_RUN_RECORDS)
}

/// Open merge heads half the budget affords (floored at 2 — a merge
/// needs two inputs to make progress).
fn head_quota(budget: u64) -> usize {
    (((budget / 2) / MERGE_HEAD_BYTES) as usize).max(2)
}

/// Node pages per emission batch: the first page is part of the fixed
/// working set (exactly the single page the sequential emitter always
/// held); the budget's eighth buys the rest.
fn emit_batch_pages(budget: u64) -> usize {
    (1 + (budget / 8) / PAGE_SIZE as u64).clamp(1, EMIT_BATCH_MAX_PAGES) as usize
}

/// Partition workers for the final merge of a level with `open_runs`
/// runs: each worker holds one head per run plus its chunk buffers, all
/// paid out of the merge half of the budget. Below two affordable
/// workers the merge runs sequentially on the consumer thread (no
/// channels, no per-worker heads).
fn partition_count(budget: u64, threads: usize, open_runs: usize) -> usize {
    if threads <= 1 || open_runs == 0 {
        return 1;
    }
    let per_worker = open_runs as u64 * MERGE_HEAD_BYTES + partition_chunk_bytes();
    let p = clamp_workers(threads, budget / 2, per_worker);
    if p < 2 {
        1
    } else {
        p
    }
}

/// Configuration of an external pack.
#[derive(Debug, Clone, Copy)]
pub struct ExtPackConfig {
    /// Bound on resident run buffers + merge heads + partition chunks +
    /// emission batch, in bytes. Arbitrarily small values still work
    /// (clamped to one buffered record and a 2-way merge); the bound is
    /// asserted through [`BudgetAccountant`].
    pub memory_budget_bytes: u64,
    /// Packing strategy. [`PackStrategy::Hilbert`] is not supported
    /// (its sort key needs the global MBR, unknowable while streaming).
    pub strategy: PackStrategy,
    /// Worker threads for the pipeline: `≥ 2` enables the overlapped
    /// produce/sort/spill double-buffer, parallel reduction rounds, and
    /// the key-range-partitioned final merge (each clamped further by
    /// the budget). `0` selects the machine's default; `1` runs fully
    /// sequentially. The packed tree is bit-identical at every value.
    pub threads: usize,
    /// Tree parameters; `tree.max_entries` is the node fan-out `M`.
    pub tree: RTreeConfig,
}

impl ExtPackConfig {
    /// A config with the given memory budget, the default strategy, the
    /// machine's default thread count, and the paper's tree parameters.
    pub fn new(memory_budget_bytes: u64) -> ExtPackConfig {
        ExtPackConfig {
            memory_budget_bytes,
            strategy: PackStrategy::default(),
            threads: packed_rtree_core::default_threads(),
            tree: RTreeConfig::PAPER,
        }
    }
}

/// Errors from external packing.
#[derive(Debug)]
pub enum ExtPackError {
    /// A page-store error (I/O or detected corruption) in the spill or
    /// destination file.
    Storage(StorageError),
    /// Failed to create the spill scratch directory/file.
    Io(std::io::Error),
    /// The strategy cannot pack a stream (Hilbert needs the global MBR).
    UnsupportedStrategy(PackStrategy),
    /// `tree.max_entries` outside `2..=MAX_ENTRIES_PER_PAGE`.
    Branching(usize),
}

impl fmt::Display for ExtPackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtPackError::Storage(e) => write!(f, "storage error: {e}"),
            ExtPackError::Io(e) => write!(f, "spill dir error: {e}"),
            ExtPackError::UnsupportedStrategy(s) => {
                write!(f, "strategy {} cannot pack a stream", s.name())
            }
            ExtPackError::Branching(m) => {
                write!(f, "branching factor {m} outside 2..={MAX_ENTRIES_PER_PAGE}")
            }
        }
    }
}

impl std::error::Error for ExtPackError {}

impl From<StorageError> for ExtPackError {
    fn from(e: StorageError) -> ExtPackError {
        ExtPackError::Storage(e)
    }
}

impl From<std::io::Error> for ExtPackError {
    fn from(e: std::io::Error) -> ExtPackError {
        ExtPackError::Io(e)
    }
}

/// Result alias for external packing.
pub type ExtPackResult<T> = Result<T, ExtPackError>;

/// Counters describing one external pack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtPackStats {
    /// Items consumed from the stream.
    pub items: u64,
    /// Sorted runs spilled during level-0 run generation.
    pub initial_runs: u32,
    /// Records one level-0 run buffer holds under the budget.
    pub run_capacity_records: u64,
    /// Total spill pages written (initial runs + intermediate merges,
    /// all levels).
    pub spill_pages: u64,
    /// `spill_pages` in bytes.
    pub spill_bytes: u64,
    /// Intermediate (non-final) merge passes forced by the fan-in bound.
    pub intermediate_merges: u32,
    /// Largest number of runs merged at once.
    pub max_fan_in: u32,
    /// Tree levels built (1 = the root is a leaf).
    pub levels: u32,
    /// Node pages emitted into the destination store.
    pub node_pages: u32,
    /// High-water mark of budget-accounted bytes (run buffers, merge
    /// heads, partition chunks, emission batch); the acceptance bound is
    /// `peak_budget_bytes ≤ budget` (above the degenerate floor).
    pub peak_budget_bytes: u64,
    /// Fixed working set of the slab/grouping buffer, reported separately
    /// from the budget (it is a function of `M`, not of the budget).
    pub slab_buffer_bytes: u64,
    /// Worker threads the pipeline ran with (after `0 → default`).
    pub threads_used: u32,
    /// Largest partition count any level's final merge used (1 = the
    /// merge ran sequentially on the consumer thread).
    pub merge_partitions: u32,
    /// Microseconds the producer spent consuming the input stream
    /// (includes backpressure waits in overlapped mode).
    pub produce_us: u64,
    /// Microseconds spent sorting run buffers (summed across threads).
    pub sort_us: u64,
    /// Microseconds spent writing spill runs (summed across threads).
    pub spill_us: u64,
    /// Microseconds the level driver spent pulling the merged streams
    /// (net of emission and of inline sort/spill attributed above).
    pub merge_us: u64,
    /// Microseconds spent grouping slabs and writing node pages.
    pub emit_us: u64,
}

/// Receives every packed node as it is emitted — leaves first, each
/// level in key order, the root last. `page` is the node's destination
/// page id; leaf entries carry item ids in `child`, internal entries
/// carry child page ids. Implementations build side structures (the
/// frozen arena, a pointer tree) during the pack, replacing a full
/// re-read of the destination.
pub trait NodeSink {
    /// Observes one emitted node.
    fn node(&mut self, level: u32, page: PageId, entries: &[codec::DiskEntry]);
}

/// A [`NodeSink`] that ignores every node.
pub struct NullSink;

impl NodeSink for NullSink {
    fn node(&mut self, _level: u32, _page: PageId, _entries: &[codec::DiskEntry]) {}
}

/// Per-phase busy-time accumulators, in microseconds. Updated from the
/// producer, sorter, and consumer threads; phases overlap under
/// pipelining, so the figures are per-phase busy time, not additive
/// wall-clock.
#[derive(Default)]
struct PhaseTimers {
    sort: AtomicU64,
    spill: AtomicU64,
}

impl PhaseTimers {
    fn add_sort(&self, t: Instant) {
        self.sort
            .fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    fn add_spill(&self, t: Instant) {
        self.spill
            .fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.sort.load(Ordering::Relaxed),
            self.spill.load(Ordering::Relaxed),
        )
    }
}

/// Sorts one run buffer in pack-key order. Records arrive in `seq`
/// order, so this equals the in-memory packer's `(center.x, center.y,
/// input index)` permutation exactly; the comparator is tie-free, so the
/// result is also independent of `threads`.
fn sort_run_buffer(buf: &mut [SpillRecord], threads: usize, timers: &PhaseTimers) {
    let t = Instant::now();
    par_sort_values(buf, threads, |a, b| a.key().cmp(&b.key()));
    timers.add_sort(t);
}

/// Writes one sorted buffer as a spill run.
fn spill_run_buffer(
    spill: &(dyn PageStore + Sync),
    buf: &[SpillRecord],
    timers: &PhaseTimers,
) -> StorageResult<Run> {
    let t = Instant::now();
    let mut writer = RunWriter::new(spill);
    for rec in buf {
        writer.push(rec)?;
    }
    let run = writer.finish()?;
    timers.add_spill(t);
    Ok(run)
}

/// The background half of the double-buffer: receives full buffers,
/// sorts and spills each, releases its budget charge, and hands the
/// (cleared) buffer back for reuse.
fn sorter_loop(
    rx: Receiver<Vec<SpillRecord>>,
    reuse_tx: SyncSender<Vec<SpillRecord>>,
    spill: &(dyn PageStore + Sync),
    threads: usize,
    budget: &BudgetAccountant,
    timers: &PhaseTimers,
) -> StorageResult<Vec<Run>> {
    let mut runs = Vec::new();
    for mut buf in rx {
        sort_run_buffer(&mut buf, threads, timers);
        let run = spill_run_buffer(spill, &buf, timers)?;
        runs.push(run);
        budget.release(buf.len() as u64 * RUN_RECORD_FOOTPRINT);
        buf.clear();
        // The producer may already be gone (it errored); that's fine.
        let _ = reuse_tx.send(buf);
    }
    Ok(runs)
}

/// The error used when the overlapped pipeline's partner thread is gone;
/// always superseded by the partner's own error at join time.
fn pipeline_closed() -> ExtPackError {
    ExtPackError::Io(std::io::Error::other("run-sort pipeline closed early"))
}

/// The producer half of run production. In overlapped mode full buffers
/// are handed to the background sorter and recycled back — at most two
/// buffers ever exist, both reserved in the capacity planning at *every*
/// thread count, so run boundaries are thread-independent. In inline
/// mode each full buffer is sorted and spilled on the spot.
struct RunProducer<'env> {
    cap: u64,
    threads: usize,
    budget: &'env BudgetAccountant,
    timers: &'env PhaseTimers,
    buffer: Vec<SpillRecord>,
    count: u64,
    mode: ProducerMode<'env>,
}

enum ProducerMode<'env> {
    Inline {
        spill: &'env (dyn PageStore + Sync),
        runs: Vec<Run>,
    },
    Overlapped {
        tx: SyncSender<Vec<SpillRecord>>,
        reuse_rx: Receiver<Vec<SpillRecord>>,
        buffers_made: usize,
    },
}

impl<'env> RunProducer<'env> {
    fn inline(
        spill: &'env (dyn PageStore + Sync),
        cap: u64,
        threads: usize,
        budget: &'env BudgetAccountant,
        timers: &'env PhaseTimers,
    ) -> Self {
        RunProducer {
            cap,
            threads,
            budget,
            timers,
            buffer: Vec::new(),
            count: 0,
            mode: ProducerMode::Inline {
                spill,
                runs: Vec::new(),
            },
        }
    }

    fn overlapped(
        tx: SyncSender<Vec<SpillRecord>>,
        reuse_rx: Receiver<Vec<SpillRecord>>,
        cap: u64,
        threads: usize,
        budget: &'env BudgetAccountant,
        timers: &'env PhaseTimers,
    ) -> Self {
        RunProducer {
            cap,
            threads,
            budget,
            timers,
            buffer: Vec::new(),
            count: 0,
            mode: ProducerMode::Overlapped {
                tx,
                reuse_rx,
                buffers_made: 1,
            },
        }
    }

    fn push(&mut self, rec: SpillRecord) -> ExtPackResult<()> {
        self.budget.charge(RUN_RECORD_FOOTPRINT);
        self.buffer.push(rec);
        self.count += 1;
        if self.buffer.len() as u64 >= self.cap {
            self.hand_off()?;
        }
        Ok(())
    }

    fn hand_off(&mut self) -> ExtPackResult<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        match &mut self.mode {
            ProducerMode::Inline { spill, runs } => {
                sort_run_buffer(&mut self.buffer, self.threads, self.timers);
                let run = spill_run_buffer(*spill, &self.buffer, self.timers)?;
                runs.push(run);
                self.budget
                    .release(self.buffer.len() as u64 * RUN_RECORD_FOOTPRINT);
                self.buffer.clear();
            }
            ProducerMode::Overlapped {
                tx,
                reuse_rx,
                buffers_made,
            } => {
                let full = std::mem::take(&mut self.buffer);
                if tx.send(full).is_err() {
                    return Err(pipeline_closed());
                }
                self.buffer = if *buffers_made < 2 {
                    *buffers_made += 1;
                    Vec::new()
                } else {
                    match reuse_rx.recv() {
                        Ok(buf) => buf,
                        Err(_) => return Err(pipeline_closed()),
                    }
                };
            }
        }
        Ok(())
    }

    /// Flushes the tail buffer; returns the runs in inline mode (the
    /// sorter owns them in overlapped mode) and the record count.
    fn finish(mut self) -> ExtPackResult<(Option<Vec<Run>>, u64)> {
        self.hand_off()?;
        match self.mode {
            ProducerMode::Inline { runs, .. } => Ok((Some(runs), self.count)),
            ProducerMode::Overlapped { tx, .. } => {
                drop(tx); // closes the channel; the sorter loop ends
                Ok((None, self.count))
            }
        }
    }
}

/// Batched node-page emission: pages are staged and written with one
/// contiguous store write per batch ([`PageStore::write_pages`]); a
/// non-contiguous allocation (possible only if the destination recycles
/// pages) flushes early. The first staged page is part of the fixed
/// working set; pages beyond it are charged to the budget for the
/// emitter's lifetime.
struct Emitter<'a> {
    dest: &'a (dyn PageStore + Sync),
    cap: usize,
    first: Option<PageId>,
    batch: Vec<Page>,
    pages_emitted: u32,
}

impl<'a> Emitter<'a> {
    fn new(dest: &'a (dyn PageStore + Sync), cap: usize, budget: &BudgetAccountant) -> Self {
        budget.charge((cap as u64 - 1) * PAGE_SIZE as u64);
        Emitter {
            dest,
            cap,
            first: None,
            batch: Vec::with_capacity(cap),
            pages_emitted: 0,
        }
    }

    /// Encodes one node into the staging batch; `entries` is borrowed
    /// and returned intact so the caller can hand it to a sink and then
    /// reuse the allocation.
    fn emit(&mut self, level: u32, entries: &mut Vec<codec::DiskEntry>) -> StorageResult<PageId> {
        let pid = self.dest.allocate();
        if let Some(first) = self.first {
            if first.0 + self.batch.len() as u32 != pid.0 {
                self.flush()?;
            }
        }
        if self.first.is_none() {
            self.first = Some(pid);
        }
        let mut page = Page::zeroed();
        let node = DiskNode {
            level,
            entries: std::mem::take(entries),
        };
        codec::encode(&node, &mut page);
        *entries = node.entries;
        self.batch.push(page);
        self.pages_emitted += 1;
        if self.batch.len() >= self.cap {
            self.flush()?;
        }
        Ok(pid)
    }

    fn flush(&mut self) -> StorageResult<()> {
        if let Some(first) = self.first.take() {
            self.dest.write_pages(first, &self.batch)?;
            self.batch.clear();
        }
        Ok(())
    }

    /// Flushes the tail batch, releases the batch charge, and returns
    /// the page count emitted.
    fn finish(mut self, budget: &BudgetAccountant) -> StorageResult<u32> {
        self.flush()?;
        budget.release((self.cap as u64 - 1) * PAGE_SIZE as u64);
        Ok(self.pages_emitted)
    }
}

/// Consumes one level's merged stream: buffers a slab at a time, groups
/// it exactly as the in-memory packer would, writes every group as one
/// packed node page (batched), reports it to the sink, and feeds group
/// MBRs to the next level's [`RunProducer`].
struct LevelBuilder<'a, 'env> {
    strategy: PackStrategy,
    plan: SlabPlan,
    level: u32,
    slab: Vec<SpillRecord>,
    group_seq: u64,
    emitter: Emitter<'a>,
    next: Option<RunProducer<'env>>,
    last_page: Option<PageId>,
    entries_scratch: Vec<codec::DiskEntry>,
    emit_us: u64,
}

impl<'a, 'env> LevelBuilder<'a, 'env> {
    fn push(&mut self, rec: SpillRecord, sink: &mut dyn NodeSink) -> ExtPackResult<()> {
        self.slab.push(rec);
        if self.slab.len() == self.plan.slab_len() {
            self.flush(sink)?;
        }
        Ok(())
    }

    /// Groups the buffered slab and emits its node pages. The slab holds
    /// a contiguous chunk of the level's *globally sorted* order (the
    /// merge produced it), cut at the same `slab_len` boundaries as the
    /// in-memory packer — so grouping it with an identity `ord` is
    /// exactly [`group_slab`] on the corresponding global slab.
    fn flush(&mut self, sink: &mut dyn NodeSink) -> ExtPackResult<()> {
        if self.slab.is_empty() {
            return Ok(());
        }
        let t = Instant::now();
        let rects: Vec<Rect> = self.slab.iter().map(|r| r.rect).collect();
        let ord: Vec<usize> = (0..rects.len()).collect();
        for group in group_slab(self.strategy, &rects, &ord, &self.plan) {
            let mut entries = std::mem::take(&mut self.entries_scratch);
            entries.clear();
            entries.extend(group.iter().map(|&i| codec::DiskEntry {
                mbr: self.slab[i].rect,
                child: self.slab[i].child,
            }));
            let mbr =
                Rect::mbr_of_rects(entries.iter().map(|e| e.mbr)).expect("group is never empty");
            let pid = self.emitter.emit(self.level, &mut entries)?;
            sink.node(self.level, pid, &entries);
            self.entries_scratch = entries;
            self.last_page = Some(pid);
            if let Some(next) = &mut self.next {
                next.push(SpillRecord {
                    rect: mbr,
                    child: pid.0 as u64,
                    seq: self.group_seq,
                })?;
            }
            self.group_seq += 1;
        }
        self.emit_us += t.elapsed().as_micros() as u64;
        self.slab.clear();
        Ok(())
    }
}

/// Produces sorted runs from a record stream (`rec.seq` must equal the
/// stream index). Returns the runs and the record count.
fn produce_runs<I>(
    records: I,
    spill: &(dyn PageStore + Sync),
    cap: u64,
    threads: usize,
    budget: &BudgetAccountant,
    timers: &PhaseTimers,
) -> ExtPackResult<(Vec<Run>, u64)>
where
    I: Iterator<Item = SpillRecord>,
{
    if threads < 2 {
        let mut producer = RunProducer::inline(spill, cap, threads, budget, timers);
        for rec in records {
            producer.push(rec)?;
        }
        let (runs, count) = producer.finish()?;
        return Ok((runs.expect("inline mode returns runs"), count));
    }
    std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<Vec<SpillRecord>>(1);
        let (reuse_tx, reuse_rx) = sync_channel::<Vec<SpillRecord>>(2);
        let sorter = scope.spawn(move || sorter_loop(rx, reuse_tx, spill, threads, budget, timers));
        let produced = (|| -> ExtPackResult<u64> {
            let mut producer = RunProducer::overlapped(tx, reuse_rx, cap, threads, budget, timers);
            for rec in records {
                producer.push(rec)?;
            }
            let (_, count) = producer.finish()?;
            Ok(count)
        })();
        let sorted = sorter.join().expect("sorter thread panicked");
        // A sorter error explains any producer "pipeline closed" error.
        match (produced, sorted) {
            (_, Err(e)) => Err(e.into()),
            (Err(e), Ok(_)) => Err(e),
            (Ok(count), Ok(runs)) => Ok((runs, count)),
        }
    })
}

enum LevelOutcome {
    Root(PageId),
    Next { runs: Vec<Run>, count: u64 },
}

/// Merges one level's (already reduced) runs — partitioned by key range
/// across workers when affordable — and pumps the merged stream through
/// a [`LevelBuilder`]. Frees the level's spill pages when done.
#[allow(clippy::too_many_arguments)]
fn run_level(
    dest: &(dyn PageStore + Sync),
    spill: &(dyn PageStore + Sync),
    strategy: PackStrategy,
    plan: SlabPlan,
    level: u32,
    single: bool,
    runs_open: Vec<Run>,
    threads: usize,
    budget: &BudgetAccountant,
    timers: &PhaseTimers,
    stats: &mut ExtPackStats,
    sink: &mut dyn NodeSink,
) -> ExtPackResult<LevelOutcome> {
    let bb = budget.budget();
    let all_pages: Vec<PageId> = runs_open
        .iter()
        .flat_map(|r| r.pages.iter().copied())
        .collect();
    let parts = partition_count(bb, threads, runs_open.len());
    stats.merge_partitions = stats.merge_partitions.max(parts as u32);

    let emitter = Emitter::new(dest, emit_batch_pages(bb), budget);
    let next = (!single)
        .then(|| RunProducer::inline(spill, upper_run_capacity(bb), threads, budget, timers));
    let mut builder = LevelBuilder {
        strategy,
        plan,
        level,
        slab: Vec::new(),
        group_seq: 0,
        emitter,
        next,
        last_page: None,
        entries_scratch: Vec::new(),
        emit_us: 0,
    };

    let (sort0, spill0) = timers.snapshot();
    let t_level = Instant::now();
    if parts <= 1 {
        let heads = runs_open.len() as u64 * MERGE_HEAD_BYTES;
        budget.charge(heads);
        let mut cursor = MergeCursor::open(spill, runs_open)?;
        while let Some(rec) = cursor.next_record()? {
            builder.push(rec, sink)?;
        }
        drop(cursor);
        budget.release(heads);
    } else {
        merge_partitioned(spill, runs_open, parts, budget, &mut builder, sink)?;
    }
    builder.flush(sink)?;
    for id in all_pages {
        spill.free(id);
    }

    let (sort1, spill1) = timers.snapshot();
    let inline_sort_spill = (sort1 - sort0) + (spill1 - spill0);
    stats.merge_us +=
        (t_level.elapsed().as_micros() as u64).saturating_sub(builder.emit_us + inline_sort_spill);
    stats.emit_us += builder.emit_us;

    let LevelBuilder {
        emitter,
        next,
        last_page,
        ..
    } = builder;
    stats.node_pages += emitter.finish(budget)?;

    match next {
        None => {
            let root = last_page
                .unwrap_or_else(|| unreachable!("single-group level always emits its root page"));
            Ok(LevelOutcome::Root(root))
        }
        Some(producer) => {
            let (runs, count) = producer.finish()?;
            Ok(LevelOutcome::Next {
                runs: runs.expect("inline mode returns runs"),
                count,
            })
        }
    }
}

/// The key-range-partitioned final merge: `parts` workers each merge one
/// key range of `runs` (seeked open, so no prefix scanning) and stream
/// fixed-size record chunks to the consumer, which drains the partitions
/// in key order — the stitched stream is record-for-record the global
/// merge, because keys are unique within a level.
fn merge_partitioned(
    spill: &(dyn PageStore + Sync),
    runs: Vec<Run>,
    parts: usize,
    budget: &BudgetAccountant,
    builder: &mut LevelBuilder<'_, '_>,
    sink: &mut dyn NodeSink,
) -> ExtPackResult<()> {
    let per_worker = runs.len() as u64 * MERGE_HEAD_BYTES + partition_chunk_bytes();
    let charge = parts as u64 * per_worker;
    budget.charge(charge);
    let splits = match plan_partitions(spill, &runs, parts) {
        Ok(s) => s,
        Err(e) => {
            budget.release(charge);
            return Err(e.into());
        }
    };
    let result = std::thread::scope(|scope| -> ExtPackResult<()> {
        let mut rxs = Vec::with_capacity(parts);
        let mut handles = Vec::with_capacity(parts);
        for p in 0..parts {
            // Capacity 2 + the chunk being filled = CHUNKS_PER_WORKER in
            // flight per worker, matching the budget charge.
            let (tx, rx) = sync_channel::<Vec<SpillRecord>>(2);
            rxs.push(rx);
            let worker_runs = runs.clone();
            let lo = (p > 0).then(|| splits[p - 1]);
            let hi = (p + 1 < parts).then(|| splits[p]);
            handles.push(scope.spawn(move || -> StorageResult<()> {
                let mut chunk = Vec::with_capacity(PARTITION_CHUNK_RECORDS);
                let mut alive = true;
                merge_range(spill, worker_runs, lo.as_ref(), hi.as_ref(), &mut |rec| {
                    chunk.push(rec);
                    if chunk.len() == PARTITION_CHUNK_RECORDS {
                        let full = std::mem::replace(
                            &mut chunk,
                            Vec::with_capacity(PARTITION_CHUNK_RECORDS),
                        );
                        if tx.send(full).is_err() {
                            // Consumer stopped (it errored); wind down.
                            alive = false;
                            return false;
                        }
                    }
                    true
                })?;
                if alive && !chunk.is_empty() {
                    let _ = tx.send(chunk);
                }
                Ok(())
            }));
        }
        let mut consume_err: Option<ExtPackError> = None;
        'partitions: for rx in &rxs {
            for chunk in rx.iter() {
                for rec in chunk {
                    if let Err(e) = builder.push(rec, sink) {
                        consume_err = Some(e);
                        break 'partitions;
                    }
                }
            }
        }
        drop(rxs); // unblocks workers still sending
        let mut worker_err: Option<StorageError> = None;
        for h in handles {
            if let Err(e) = h.join().expect("partition worker panicked") {
                worker_err.get_or_insert(e);
            }
        }
        if let Some(e) = worker_err {
            return Err(e.into());
        }
        if let Some(e) = consume_err {
            return Err(e);
        }
        Ok(())
    });
    budget.release(charge);
    result
}

/// Externally packs `items` into `dest`, spilling runs through `spill`.
///
/// `dest` must be a fresh file or one holding an earlier
/// [`DiskRTree`] image (the new image is appended and committed by meta
/// flip, exactly like [`DiskRTree::store_with_meta`]). The caller owns
/// `spill`'s lifecycle; [`pack_external`] wraps this with an RAII
/// [`SpillDir`] so spill files never outlive the pack.
pub fn pack_external_into<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &(dyn PageStore + Sync),
    spill: &(dyn PageStore + Sync),
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    pack_external_into_sink(items, cfg, dest, spill, &mut NullSink)
}

/// [`pack_external_into`] with a [`NodeSink`] observing every emitted
/// node (leaves first, root last) — the direct-emission hook for
/// building the frozen arena or a pointer tree during the pack.
pub fn pack_external_into_sink<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &(dyn PageStore + Sync),
    spill: &(dyn PageStore + Sync),
    sink: &mut dyn NodeSink,
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    if cfg.strategy == PackStrategy::Hilbert {
        return Err(ExtPackError::UnsupportedStrategy(cfg.strategy));
    }
    let m = cfg.tree.max_entries;
    if !(2..=MAX_ENTRIES_PER_PAGE).contains(&m) {
        return Err(ExtPackError::Branching(m));
    }
    let threads = if cfg.threads == 0 {
        packed_rtree_core::default_threads()
    } else {
        cfg.threads
    };
    let bb = cfg.memory_budget_bytes;

    // Reserve the meta pair before any node page, so the commit layout
    // matches `store_with_meta` and a crash pre-commit is detectable.
    while dest.page_count() < rtree_storage::meta::META_SLOTS {
        dest.allocate();
    }

    let budget = BudgetAccountant::new(bb);
    let timers = PhaseTimers::default();
    let cap0 = level0_run_capacity(bb);
    let mut stats = ExtPackStats {
        run_capacity_records: cap0,
        threads_used: threads as u32,
        ..ExtPackStats::default()
    };

    // Level 0: run generation straight off the item stream, overlapped
    // with sorting/spilling when threads allow.
    let t_produce = Instant::now();
    let (runs0, n0) = produce_runs(
        items
            .into_iter()
            .enumerate()
            .map(|(i, (rect, item))| SpillRecord {
                rect,
                child: item.0,
                seq: i as u64,
            }),
        spill,
        cap0,
        threads,
        &budget,
        &timers,
    )?;
    let (sort0, spill0) = timers.snapshot();
    stats.produce_us = (t_produce.elapsed().as_micros() as u64).saturating_sub(sort0 + spill0);
    let mut runs = runs0;
    let mut n = n0;
    stats.items = n;
    stats.initial_runs = runs.len() as u32;
    stats.spill_pages = runs.iter().map(|r| r.pages.len() as u64).sum();

    if n == 0 {
        let mut emitter = Emitter::new(dest, 1, &budget);
        let mut entries = Vec::new();
        let root = emitter.emit(0, &mut entries)?;
        sink.node(0, root, &entries);
        stats.node_pages = emitter.finish(&budget)?;
        let tree = DiskRTree::commit_external(dest, root, 0, 0, 1)?;
        stats.levels = 1;
        stats.peak_budget_bytes = budget.peak();
        return Ok((tree, stats));
    }

    let mut level: u32 = 0;
    let (root, depth) = loop {
        let plan = SlabPlan::new(cfg.strategy, n as usize, m);
        let single = plan.total_groups() == 1;
        stats.slab_buffer_bytes = stats
            .slab_buffer_bytes
            .max(plan.slab_len().min(n as usize) as u64 * SLAB_ENTRY_BYTES);

        // Reduce to at most the head quota, in deterministic rounds
        // (parallel across chunks when budget and threads allow).
        let (runs_open, mstats) = reduce_runs(spill, runs, head_quota(bb), threads, &budget)?;
        stats.intermediate_merges += mstats.intermediate_merges;
        stats.max_fan_in = stats
            .max_fan_in
            .max(mstats.max_fan_in)
            .max(runs_open.len() as u32);
        stats.spill_pages += mstats.spill_pages;

        let outcome = run_level(
            dest,
            spill,
            cfg.strategy,
            plan,
            level,
            single,
            runs_open,
            threads,
            &budget,
            &timers,
            &mut stats,
            sink,
        )?;

        match outcome {
            LevelOutcome::Root(root) => break (root, level),
            LevelOutcome::Next { runs: r, count } => {
                stats.spill_pages += r.iter().map(|run| run.pages.len() as u64).sum::<u64>();
                runs = r;
                n = count;
                level += 1;
            }
        }
    };

    stats.levels = depth + 1;
    stats.spill_bytes = stats.spill_pages * PAGE_SIZE as u64;
    let (sort_us, spill_us) = timers.snapshot();
    stats.sort_us = sort_us;
    stats.spill_us = spill_us;
    stats.peak_budget_bytes = budget.peak();
    let tree =
        DiskRTree::commit_external(dest, root, depth, stats.items as usize, stats.node_pages)?;
    Ok((tree, stats))
}

/// Externally packs `items` into `dest`, spilling runs through a
/// temporary [`SpillDir`] that is removed when the pack finishes —
/// whether it returns, errors, or unwinds.
pub fn pack_external<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &(dyn PageStore + Sync),
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    let dir = SpillDir::create()?;
    let spill = dir.create_pager()?;
    pack_external_into(items, cfg, dest, &spill)
    // `spill` then `dir` drop here: fd closes, directory is removed.
}

/// [`pack_external`] with a [`NodeSink`] observing every emitted node.
pub fn pack_external_with_sink<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &(dyn PageStore + Sync),
    sink: &mut dyn NodeSink,
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    let dir = SpillDir::create()?;
    let spill = dir.create_pager()?;
    pack_external_into_sink(items, cfg, dest, &spill, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_storage::Pager;

    fn scatter(n: u64) -> Vec<(Rect, ItemId)> {
        // Deterministic LCG scatter, distinct centers.
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 40) as f64 / 256.0;
                let y = ((state >> 16) & 0xFFFFFF) as f64 / 4096.0;
                (Rect::new(x, y, x + 1.0, y + 1.0), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn packs_within_tiny_budget_and_accounts_peak() {
        let dest = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            memory_budget_bytes: 16 * 1024,
            threads: 1,
            ..ExtPackConfig::new(0)
        };
        let (tree, stats) = pack_external(scatter(3000), &cfg, &dest).unwrap();
        assert_eq!(tree.len(), 3000);
        assert!(stats.initial_runs > 1, "{stats:?}");
        assert!(stats.spill_pages > 0);
        assert!(
            stats.peak_budget_bytes <= 16 * 1024,
            "peak {} exceeds budget",
            stats.peak_budget_bytes
        );
        // Reopens to the same tree.
        let reopened = DiskRTree::open_default(&dest).unwrap();
        assert_eq!(reopened.root(), tree.root());
        assert_eq!(reopened.len(), 3000);
    }

    #[test]
    fn zero_budget_clamps_to_degenerate_floor() {
        let dest = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            threads: 1,
            ..ExtPackConfig::new(0)
        };
        // One-record runs, 2-way merges: slow but correct.
        let (tree, stats) = pack_external(scatter(150), &cfg, &dest).unwrap();
        assert_eq!(tree.len(), 150);
        assert_eq!(stats.run_capacity_records, 1);
        assert_eq!(stats.initial_runs, 150);
        // Floor: two merge heads + output head + one buffered record.
        assert!(stats.peak_budget_bytes <= 4 * MERGE_HEAD_BYTES + RUN_RECORD_FOOTPRINT);
    }

    #[test]
    fn empty_stream_builds_empty_tree() {
        let dest = Pager::temp().unwrap();
        let (tree, stats) = pack_external(Vec::new(), &ExtPackConfig::new(1 << 20), &dest).unwrap();
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.depth(), 0);
        assert_eq!(stats.node_pages, 1);
        let reopened = DiskRTree::open_default(&dest).unwrap();
        assert!(reopened.is_empty());
    }

    #[test]
    fn hilbert_and_bad_branching_rejected() {
        let dest = Pager::temp().unwrap();
        let spill = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            strategy: PackStrategy::Hilbert,
            ..ExtPackConfig::new(1 << 20)
        };
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::UnsupportedStrategy(_))
        ));
        let mut cfg = ExtPackConfig::new(1 << 20);
        cfg.tree.max_entries = 1;
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::Branching(1))
        ));
        cfg.tree.max_entries = MAX_ENTRIES_PER_PAGE + 1;
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::Branching(_))
        ));
    }

    #[test]
    fn run_capacity_is_budget_driven_and_capped() {
        assert_eq!(level0_run_capacity(0), 1);
        assert_eq!(level0_run_capacity(4 << 20), 21845);
        // Huge budgets cap at MAX_RUN_RECORDS (the 64 MiB fix): 1M items
        // make ⌈1M / 65536⌉ = 16 runs, a single merge pass.
        assert_eq!(level0_run_capacity(64 << 20), MAX_RUN_RECORDS);
        assert_eq!(1_000_000u64.div_ceil(level0_run_capacity(64 << 20)), 16);
        assert!(upper_run_capacity(4 << 20) <= level0_run_capacity(4 << 20));
    }

    #[test]
    fn partition_count_respects_budget_and_threads() {
        // threads=1 or no runs → sequential.
        assert_eq!(partition_count(4 << 20, 1, 46), 1);
        assert_eq!(partition_count(4 << 20, 8, 0), 1);
        // 4 MiB, 46 open runs: each worker needs 46 heads + chunks
        // (~481 KiB); half the budget affords 4 workers.
        assert_eq!(partition_count(4 << 20, 8, 46), 4);
        // A tiny budget cannot afford even 2 workers → sequential.
        assert_eq!(partition_count(16 << 10, 8, 46), 1);
    }

    #[test]
    fn threaded_pack_is_bit_identical_to_sequential() {
        let items = scatter(5000);
        let mut images: Vec<Vec<u8>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let dest = Pager::temp().unwrap();
            let cfg = ExtPackConfig {
                memory_budget_bytes: 64 * 1024,
                threads,
                ..ExtPackConfig::new(0)
            };
            let (tree, stats) = pack_external(items.clone(), &cfg, &dest).unwrap();
            assert_eq!(tree.len(), 5000);
            assert!(
                stats.peak_budget_bytes <= 64 * 1024,
                "threads={threads}: peak {} exceeds budget",
                stats.peak_budget_bytes
            );
            let mut image = Vec::new();
            for p in 0..dest.page_count() {
                image.extend_from_slice(dest.read_page_raw(PageId(p)).unwrap().bytes());
            }
            images.push(image);
        }
        for pair in images.windows(2) {
            assert_eq!(pair[0], pair[1], "thread count changed the packed image");
        }
    }

    #[test]
    fn sink_observes_every_node_with_real_page_ids() {
        struct Collect {
            nodes: Vec<(u32, PageId, usize)>,
        }
        impl NodeSink for Collect {
            fn node(&mut self, level: u32, page: PageId, entries: &[codec::DiskEntry]) {
                self.nodes.push((level, page, entries.len()));
            }
        }
        let dest = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            memory_budget_bytes: 32 * 1024,
            threads: 2,
            ..ExtPackConfig::new(0)
        };
        let mut sink = Collect { nodes: Vec::new() };
        let (tree, stats) = pack_external_with_sink(scatter(500), &cfg, &dest, &mut sink).unwrap();
        assert_eq!(sink.nodes.len() as u32, stats.node_pages);
        // Levels appear bottom-up and the root is last.
        let levels: Vec<u32> = sink.nodes.iter().map(|n| n.0).collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
        let &(last_level, last_page, _) = sink.nodes.last().unwrap();
        assert_eq!(last_level, tree.depth());
        assert_eq!(last_page, tree.root());
        // Every reported node matches the page actually on disk.
        for &(level, page, n_entries) in &sink.nodes {
            let node = codec::decode(&dest.read_page(page).unwrap()).unwrap();
            assert_eq!(node.level, level);
            assert_eq!(node.entries.len(), n_entries);
        }
    }
}
