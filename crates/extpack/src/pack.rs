//! The external PACK driver: stream → runs → merge → packed pages.
//!
//! Level 0 consumes the caller's item stream through a budget-bounded
//! [`RunGen`]; every level above is the same pipeline applied to the
//! group MBRs the level below emitted, "working ever backwards, until
//! the root is finally reached" (§3.3). The merged stream of each level
//! is cut into the in-memory packer's deterministic slabs
//! ([`SlabPlan`]), grouped with the identical [`group_slab`] machinery,
//! and written as fully packed node pages straight into the destination
//! store — no intermediate sorted copy of the data ever exists.

use crate::budget::BudgetAccountant;
use crate::guard::SpillDir;
use crate::merge::{reduce_runs, MergeCursor, MERGE_HEAD_BYTES};
use crate::spill::{Run, RunWriter, SpillRecord};
use packed_rtree_core::grouping::{group_slab, SlabPlan};
use packed_rtree_core::{effective_threads, order_parallel, PackStrategy};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig};
use rtree_storage::codec::{self, DiskNode, MAX_ENTRIES_PER_PAGE};
use rtree_storage::{DiskRTree, Page, PageId, PageStore, StorageError, StorageResult, PAGE_SIZE};
use std::fmt;

/// Accounted bytes per buffered run record: the 48-byte [`SpillRecord`]
/// plus the rect copy (32), ord slot (8), and parallel-sort scratch (8)
/// the spill sort materializes per record.
pub const RUN_RECORD_FOOTPRINT: u64 = 96;

/// Resident bytes per slab-buffer entry (record + rect copy + ord slot),
/// used only for the reported fixed-working-set figure.
const SLAB_ENTRY_BYTES: u64 = 88;

/// Splits `budget` into `(run_capacity_records, merge_fan_in)`.
///
/// While a level is being emitted, the merge heads over that level's
/// runs and the *next* level's run buffer are resident simultaneously,
/// so the two shares must sum to the budget. Half the budget buys merge
/// heads (floored at 2 — a merge needs two inputs to make progress);
/// run buffers get whatever remains after that possibly-floored reserve
/// (floored at one record). Peak accounted usage therefore stays within
/// the budget whenever the budget exceeds the degenerate floor of
/// `3·MERGE_HEAD_BYTES` (two heads plus a reduce pass's output head).
fn plan_budget(budget: u64) -> (u64, usize) {
    let fan_in = (((budget / 2) / MERGE_HEAD_BYTES) as usize).max(2);
    let merge_reserved = fan_in as u64 * MERGE_HEAD_BYTES;
    let cap = (budget.saturating_sub(merge_reserved) / RUN_RECORD_FOOTPRINT).max(1);
    (cap, fan_in)
}

/// Configuration of an external pack.
#[derive(Debug, Clone, Copy)]
pub struct ExtPackConfig {
    /// Bound on resident run buffers + merge heads, in bytes. Arbitrarily
    /// small values still work (clamped to one buffered record and a
    /// 2-way merge); the bound is asserted through [`BudgetAccountant`].
    pub memory_budget_bytes: u64,
    /// Packing strategy. [`PackStrategy::Hilbert`] is not supported
    /// (its sort key needs the global MBR, unknowable while streaming).
    pub strategy: PackStrategy,
    /// Worker threads for sorting run buffers (the `pack_parallel` slab
    /// machinery). `0`/`1` sorts on the calling thread.
    pub threads: usize,
    /// Tree parameters; `tree.max_entries` is the node fan-out `M`.
    pub tree: RTreeConfig,
}

impl ExtPackConfig {
    /// A config with the given memory budget, the default strategy, the
    /// machine's default thread count, and the paper's tree parameters.
    pub fn new(memory_budget_bytes: u64) -> ExtPackConfig {
        ExtPackConfig {
            memory_budget_bytes,
            strategy: PackStrategy::default(),
            threads: packed_rtree_core::default_threads(),
            tree: RTreeConfig::PAPER,
        }
    }
}

/// Errors from external packing.
#[derive(Debug)]
pub enum ExtPackError {
    /// A page-store error (I/O or detected corruption) in the spill or
    /// destination file.
    Storage(StorageError),
    /// Failed to create the spill scratch directory/file.
    Io(std::io::Error),
    /// The strategy cannot pack a stream (Hilbert needs the global MBR).
    UnsupportedStrategy(PackStrategy),
    /// `tree.max_entries` outside `2..=MAX_ENTRIES_PER_PAGE`.
    Branching(usize),
}

impl fmt::Display for ExtPackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtPackError::Storage(e) => write!(f, "storage error: {e}"),
            ExtPackError::Io(e) => write!(f, "spill dir error: {e}"),
            ExtPackError::UnsupportedStrategy(s) => {
                write!(f, "strategy {} cannot pack a stream", s.name())
            }
            ExtPackError::Branching(m) => {
                write!(f, "branching factor {m} outside 2..={MAX_ENTRIES_PER_PAGE}")
            }
        }
    }
}

impl std::error::Error for ExtPackError {}

impl From<StorageError> for ExtPackError {
    fn from(e: StorageError) -> ExtPackError {
        ExtPackError::Storage(e)
    }
}

impl From<std::io::Error> for ExtPackError {
    fn from(e: std::io::Error) -> ExtPackError {
        ExtPackError::Io(e)
    }
}

/// Result alias for external packing.
pub type ExtPackResult<T> = Result<T, ExtPackError>;

/// Counters describing one external pack.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtPackStats {
    /// Items consumed from the stream.
    pub items: u64,
    /// Sorted runs spilled during level-0 run generation.
    pub initial_runs: u32,
    /// Records one run buffer holds under the budget.
    pub run_capacity_records: u64,
    /// Total spill pages written (initial runs + intermediate merges,
    /// all levels).
    pub spill_pages: u64,
    /// `spill_pages` in bytes.
    pub spill_bytes: u64,
    /// Intermediate (non-final) merge passes forced by the fan-in bound.
    pub intermediate_merges: u32,
    /// Largest number of runs merged at once.
    pub max_fan_in: u32,
    /// Tree levels built (1 = the root is a leaf).
    pub levels: u32,
    /// Node pages emitted into the destination store.
    pub node_pages: u32,
    /// High-water mark of budget-accounted bytes (run buffers + merge
    /// heads); the acceptance bound is `peak_budget_bytes ≤ budget`
    /// (above the degenerate floor).
    pub peak_budget_bytes: u64,
    /// Fixed working set of the slab/grouping buffer, reported separately
    /// from the budget (it is a function of `M`, not of the budget).
    pub slab_buffer_bytes: u64,
}

/// Budget-bounded run generation: buffers records, sorts each full
/// buffer in pack-key order, and spills it as one run.
struct RunGen<'a> {
    spill: &'a dyn PageStore,
    cap: u64,
    strategy: PackStrategy,
    threads: usize,
    buffer: Vec<SpillRecord>,
    runs: Vec<Run>,
    count: u64,
}

impl<'a> RunGen<'a> {
    fn new(spill: &'a dyn PageStore, cap: u64, strategy: PackStrategy, threads: usize) -> Self {
        RunGen {
            spill,
            cap,
            strategy,
            threads,
            buffer: Vec::new(),
            runs: Vec::new(),
            count: 0,
        }
    }

    fn push(&mut self, rec: SpillRecord, budget: &mut BudgetAccountant) -> StorageResult<()> {
        budget.charge(RUN_RECORD_FOOTPRINT);
        self.buffer.push(rec);
        self.count += 1;
        if self.buffer.len() as u64 >= self.cap {
            self.spill(budget)?;
        }
        Ok(())
    }

    /// Sorts the buffer with the in-memory packer's own comparator
    /// (ascending center-x, ties by y then buffer index — and buffer
    /// index order *is* `seq` order, because records arrive in level
    /// order) and writes it out as one run.
    fn spill(&mut self, budget: &mut BudgetAccountant) -> StorageResult<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let rects: Vec<Rect> = self.buffer.iter().map(|r| r.rect).collect();
        let ord = order_parallel(
            self.strategy,
            &rects,
            effective_threads(self.threads, rects.len()),
        );
        let mut writer = RunWriter::new(self.spill);
        for &i in &ord {
            writer.push(&self.buffer[i])?;
        }
        self.runs.push(writer.finish()?);
        budget.release(self.buffer.len() as u64 * RUN_RECORD_FOOTPRINT);
        self.buffer.clear();
        Ok(())
    }

    fn finish(mut self, budget: &mut BudgetAccountant) -> StorageResult<(Vec<Run>, u64)> {
        self.spill(budget)?;
        Ok((self.runs, self.count))
    }
}

/// Consumes one level's merged stream: buffers a slab at a time, groups
/// it exactly as the in-memory packer would, writes every group as one
/// packed node page, and feeds group MBRs to the next level's [`RunGen`].
struct LevelBuilder<'a> {
    dest: &'a dyn PageStore,
    strategy: PackStrategy,
    plan: SlabPlan,
    level: u32,
    slab: Vec<SpillRecord>,
    group_seq: u64,
    next: Option<RunGen<'a>>,
    last_page: Option<PageId>,
    pages_emitted: u32,
}

impl<'a> LevelBuilder<'a> {
    fn new(
        dest: &'a dyn PageStore,
        strategy: PackStrategy,
        plan: SlabPlan,
        level: u32,
        next: Option<RunGen<'a>>,
    ) -> Self {
        LevelBuilder {
            dest,
            strategy,
            plan,
            level,
            slab: Vec::new(),
            group_seq: 0,
            next,
            last_page: None,
            pages_emitted: 0,
        }
    }

    fn push(&mut self, rec: SpillRecord, budget: &mut BudgetAccountant) -> StorageResult<()> {
        self.slab.push(rec);
        if self.slab.len() == self.plan.slab_len() {
            self.flush(budget)?;
        }
        Ok(())
    }

    /// Groups the buffered slab and emits its node pages. The slab holds
    /// a contiguous chunk of the level's *globally sorted* order (the
    /// merge produced it), cut at the same `slab_len` boundaries as the
    /// in-memory packer — so grouping it with an identity `ord` is
    /// exactly [`group_slab`] on the corresponding global slab.
    fn flush(&mut self, budget: &mut BudgetAccountant) -> StorageResult<()> {
        if self.slab.is_empty() {
            return Ok(());
        }
        let rects: Vec<Rect> = self.slab.iter().map(|r| r.rect).collect();
        let ord: Vec<usize> = (0..rects.len()).collect();
        for group in group_slab(self.strategy, &rects, &ord, &self.plan) {
            let entries = group
                .iter()
                .map(|&i| codec::DiskEntry {
                    mbr: self.slab[i].rect,
                    child: self.slab[i].child,
                })
                .collect::<Vec<_>>();
            let mbr =
                Rect::mbr_of_rects(entries.iter().map(|e| e.mbr)).expect("group is never empty");
            let pid = emit_node(self.dest, self.level, entries)?;
            self.last_page = Some(pid);
            self.pages_emitted += 1;
            if let Some(next) = &mut self.next {
                next.push(
                    SpillRecord {
                        rect: mbr,
                        child: pid.0 as u64,
                        seq: self.group_seq,
                    },
                    budget,
                )?;
            }
            self.group_seq += 1;
        }
        self.slab.clear();
        Ok(())
    }
}

/// Writes one packed node page into the destination store.
fn emit_node(
    dest: &dyn PageStore,
    level: u32,
    entries: Vec<codec::DiskEntry>,
) -> StorageResult<PageId> {
    let mut page = Page::zeroed();
    codec::encode(&DiskNode { level, entries }, &mut page);
    let pid = dest.allocate();
    dest.write_page(pid, &page)?;
    Ok(pid)
}

/// Externally packs `items` into `dest`, spilling runs through `spill`.
///
/// `dest` must be a fresh file or one holding an earlier
/// [`DiskRTree`] image (the new image is appended and committed by meta
/// flip, exactly like [`DiskRTree::store_with_meta`]). The caller owns
/// `spill`'s lifecycle; [`pack_external`] wraps this with an RAII
/// [`SpillDir`] so spill files never outlive the pack.
pub fn pack_external_into<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &dyn PageStore,
    spill: &dyn PageStore,
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    if cfg.strategy == PackStrategy::Hilbert {
        return Err(ExtPackError::UnsupportedStrategy(cfg.strategy));
    }
    let m = cfg.tree.max_entries;
    if !(2..=MAX_ENTRIES_PER_PAGE).contains(&m) {
        return Err(ExtPackError::Branching(m));
    }

    // Reserve the meta pair before any node page, so the commit layout
    // matches `store_with_meta` and a crash pre-commit is detectable.
    while dest.page_count() < rtree_storage::meta::META_SLOTS {
        dest.allocate();
    }

    let mut budget = BudgetAccountant::new(cfg.memory_budget_bytes);
    let (cap, fan_in) = plan_budget(cfg.memory_budget_bytes);
    let mut stats = ExtPackStats {
        run_capacity_records: cap,
        ..ExtPackStats::default()
    };

    // Level 0: run generation straight off the item stream.
    let mut rungen = RunGen::new(spill, cap, cfg.strategy, cfg.threads);
    for (i, (rect, item)) in items.into_iter().enumerate() {
        rungen.push(
            SpillRecord {
                rect,
                child: item.0,
                seq: i as u64,
            },
            &mut budget,
        )?;
    }
    let (mut runs, mut n) = rungen.finish(&mut budget)?;
    stats.items = n;
    stats.initial_runs = runs.len() as u32;
    stats.spill_pages = runs.iter().map(|r| r.pages.len() as u64).sum();

    if n == 0 {
        let root = emit_node(dest, 0, Vec::new())?;
        let tree = DiskRTree::commit_external(dest, root, 0, 0, 1)?;
        stats.levels = 1;
        stats.node_pages = 1;
        return Ok((tree, stats));
    }

    let mut level: u32 = 0;
    let (root, depth) = loop {
        let plan = SlabPlan::new(cfg.strategy, n as usize, m);
        let single = plan.total_groups() == 1;
        stats.slab_buffer_bytes = stats
            .slab_buffer_bytes
            .max(plan.slab_len().min(n as usize) as u64 * SLAB_ENTRY_BYTES);

        // Reduce to at most `fan_in` runs, then hold one head per run
        // while this level's pages are emitted.
        let (runs_open, mstats) = reduce_runs(spill, runs, fan_in, &mut budget)?;
        stats.intermediate_merges += mstats.intermediate_merges;
        stats.max_fan_in = stats
            .max_fan_in
            .max(mstats.max_fan_in)
            .max(runs_open.len() as u32);
        stats.spill_pages += mstats.spill_pages;

        let heads = runs_open.len() as u64 * MERGE_HEAD_BYTES;
        budget.charge(heads);
        let mut cursor = MergeCursor::open(spill, runs_open)?;
        let next = (!single).then(|| RunGen::new(spill, cap, cfg.strategy, cfg.threads));
        let mut builder = LevelBuilder::new(dest, cfg.strategy, plan, level, next);
        while let Some(rec) = cursor.next_record()? {
            builder.push(rec, &mut budget)?;
        }
        builder.flush(&mut budget)?;
        cursor.dispose(spill);
        budget.release(heads);
        stats.node_pages += builder.pages_emitted;

        match builder.next {
            None => {
                let root = builder.last_page.unwrap_or_else(|| {
                    unreachable!("single-group level always emits its root page")
                });
                break (root, level);
            }
            Some(next_gen) => {
                let (next_runs, next_n) = next_gen.finish(&mut budget)?;
                stats.spill_pages += next_runs.iter().map(|r| r.pages.len() as u64).sum::<u64>();
                runs = next_runs;
                n = next_n;
                level += 1;
            }
        }
    };

    stats.levels = depth + 1;
    stats.spill_bytes = stats.spill_pages * PAGE_SIZE as u64;
    stats.peak_budget_bytes = budget.peak();
    let tree =
        DiskRTree::commit_external(dest, root, depth, stats.items as usize, stats.node_pages)?;
    Ok((tree, stats))
}

/// Externally packs `items` into `dest`, spilling runs through a
/// temporary [`SpillDir`] that is removed when the pack finishes —
/// whether it returns, errors, or unwinds.
pub fn pack_external<I>(
    items: I,
    cfg: &ExtPackConfig,
    dest: &dyn PageStore,
) -> ExtPackResult<(DiskRTree, ExtPackStats)>
where
    I: IntoIterator<Item = (Rect, ItemId)>,
{
    let dir = SpillDir::create()?;
    let spill = dir.create_pager()?;
    pack_external_into(items, cfg, dest, &spill)
    // `spill` then `dir` drop here: fd closes, directory is removed.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_storage::Pager;

    fn scatter(n: u64) -> Vec<(Rect, ItemId)> {
        // Deterministic LCG scatter, distinct centers.
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 40) as f64 / 256.0;
                let y = ((state >> 16) & 0xFFFFFF) as f64 / 4096.0;
                (Rect::new(x, y, x + 1.0, y + 1.0), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn packs_within_tiny_budget_and_accounts_peak() {
        let dest = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            memory_budget_bytes: 16 * 1024,
            threads: 1,
            ..ExtPackConfig::new(0)
        };
        let (tree, stats) = pack_external(scatter(3000), &cfg, &dest).unwrap();
        assert_eq!(tree.len(), 3000);
        assert!(stats.initial_runs > 1, "{stats:?}");
        assert!(stats.spill_pages > 0);
        assert!(
            stats.peak_budget_bytes <= 16 * 1024,
            "peak {} exceeds budget",
            stats.peak_budget_bytes
        );
        // Reopens to the same tree.
        let reopened = DiskRTree::open_default(&dest).unwrap();
        assert_eq!(reopened.root(), tree.root());
        assert_eq!(reopened.len(), 3000);
    }

    #[test]
    fn zero_budget_clamps_to_degenerate_floor() {
        let dest = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            threads: 1,
            ..ExtPackConfig::new(0)
        };
        // One-record runs, 2-way merges: slow but correct.
        let (tree, stats) = pack_external(scatter(150), &cfg, &dest).unwrap();
        assert_eq!(tree.len(), 150);
        assert_eq!(stats.run_capacity_records, 1);
        assert_eq!(stats.initial_runs, 150);
        // Floor: two merge heads + output head + one buffered record.
        assert!(stats.peak_budget_bytes <= 4 * MERGE_HEAD_BYTES + RUN_RECORD_FOOTPRINT);
    }

    #[test]
    fn empty_stream_builds_empty_tree() {
        let dest = Pager::temp().unwrap();
        let (tree, stats) = pack_external(Vec::new(), &ExtPackConfig::new(1 << 20), &dest).unwrap();
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.depth(), 0);
        assert_eq!(stats.node_pages, 1);
        let reopened = DiskRTree::open_default(&dest).unwrap();
        assert!(reopened.is_empty());
    }

    #[test]
    fn hilbert_and_bad_branching_rejected() {
        let dest = Pager::temp().unwrap();
        let spill = Pager::temp().unwrap();
        let cfg = ExtPackConfig {
            strategy: PackStrategy::Hilbert,
            ..ExtPackConfig::new(1 << 20)
        };
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::UnsupportedStrategy(_))
        ));
        let mut cfg = ExtPackConfig::new(1 << 20);
        cfg.tree.max_entries = 1;
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::Branching(1))
        ));
        cfg.tree.max_entries = MAX_ENTRIES_PER_PAGE + 1;
        assert!(matches!(
            pack_external_into(scatter(10), &cfg, &dest, &spill),
            Err(ExtPackError::Branching(_))
        ));
    }
}
