//! RAII guard for spill-run temp files.
//!
//! External packing spills sorted runs into a scratch page file; the
//! guard owns the directory holding it and removes everything on drop —
//! on success, on error, and during panic unwinding alike — so no run
//! files outlive the pack that created them.

use rtree_storage::Pager;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter so concurrent packs get distinct directories.
static NEXT_SPILL_DIR: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory for spill-run files, removed
/// (with everything inside) when the guard drops.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under `std::env::temp_dir()`.
    pub fn create() -> io::Result<SpillDir> {
        Self::create_in(&std::env::temp_dir())
    }

    /// Creates a fresh spill directory under `parent`. Tests point this
    /// at a scratch directory to assert it is empty after the pack.
    pub fn create_in(parent: &Path) -> io::Result<SpillDir> {
        let path = parent.join(format!(
            "extpack-spill-{}-{}",
            std::process::id(),
            NEXT_SPILL_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Creates the spill-run page file inside the directory.
    pub fn create_pager(&self) -> io::Result<Pager> {
        Pager::create(self.path.join("runs.spill"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_guard_removes_directory_and_contents() {
        let dir = SpillDir::create().unwrap();
        let path = dir.path().to_path_buf();
        let pager = dir.create_pager().unwrap();
        let id = pager.allocate();
        pager
            .write_page(id, &rtree_storage::Page::zeroed())
            .unwrap();
        drop(pager);
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn guard_cleans_up_during_panic_unwind() {
        let observed = std::sync::Mutex::new(PathBuf::new());
        let result = std::panic::catch_unwind(|| {
            let dir = SpillDir::create().unwrap();
            *observed.lock().unwrap() = dir.path().to_path_buf();
            panic!("mid-pack failure");
        });
        assert!(result.is_err());
        let path = observed.lock().unwrap().clone();
        assert!(!path.as_os_str().is_empty());
        assert!(!path.exists(), "spill dir must be removed during unwind");
    }

    #[test]
    fn concurrent_guards_get_distinct_paths() {
        let a = SpillDir::create().unwrap();
        let b = SpillDir::create().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
