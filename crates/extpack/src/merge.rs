//! K-way merge of spill runs in pack-key order.
//!
//! [`MergeCursor`] is a pull-based heap merge over any number of open
//! runs; the driver pumps it record by record straight into page
//! emission — no intermediate sorted copy is ever materialized. When the
//! number of runs exceeds what the memory budget allows to be open at
//! once ([`merge_fan_in`](crate::pack::ExtPackConfig)), [`reduce_runs`]
//! first merges batches of runs into longer runs — the classic
//! multi-pass external merge — freeing consumed pages back to the spill
//! store's free list so spill disk usage stays bounded too.

use crate::budget::BudgetAccountant;
use crate::spill::{Run, RunReader, SortKey, SpillRecord};
use rtree_storage::{PageStore, StorageResult, PAGE_SIZE};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Accounted bytes per open merge head: one resident spill page plus the
/// reader's cursor bookkeeping.
pub const MERGE_HEAD_BYTES: u64 = PAGE_SIZE as u64 + 64;

/// One heap entry: the head record of run `src`.
struct HeapItem {
    key: SortKey,
    src: usize,
    rec: SpillRecord,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // `src` tiebreak keeps the pop order deterministic; equal keys
        // cannot happen across runs (seq is unique per level) but the
        // heap should not rely on that.
        self.key.cmp(&other.key).then(self.src.cmp(&other.src))
    }
}

/// Pull-based k-way merge over a set of spill runs.
pub struct MergeCursor<'a> {
    readers: Vec<RunReader<'a>>,
    heap: BinaryHeap<Reverse<HeapItem>>,
}

impl<'a> MergeCursor<'a> {
    /// Opens every run and primes the heap with each run's head record.
    pub fn open(store: &'a dyn PageStore, runs: Vec<Run>) -> StorageResult<MergeCursor<'a>> {
        let mut readers: Vec<RunReader<'a>> = runs
            .into_iter()
            .map(|r| RunReader::open(store, r))
            .collect();
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (src, reader) in readers.iter_mut().enumerate() {
            if let Some(rec) = reader.next_record()? {
                heap.push(Reverse(HeapItem {
                    key: rec.key(),
                    src,
                    rec,
                }));
            }
        }
        Ok(MergeCursor { readers, heap })
    }

    /// The globally next record in pack-key order, or `None` when every
    /// run is exhausted.
    pub fn next_record(&mut self) -> StorageResult<Option<SpillRecord>> {
        let Some(Reverse(item)) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some(rec) = self.readers[item.src].next_record()? {
            self.heap.push(Reverse(HeapItem {
                key: rec.key(),
                src: item.src,
                rec,
            }));
        }
        Ok(Some(item.rec))
    }

    /// Consumes the cursor, returning every input page to the spill
    /// store's free list for recycling.
    pub fn dispose(self, store: &dyn PageStore) {
        for reader in self.readers {
            for id in reader.into_run().pages {
                store.free(id);
            }
        }
    }
}

/// Counters from the run-reduction passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Intermediate (non-final) merges performed across all levels.
    pub intermediate_merges: u32,
    /// Largest number of runs merged at once.
    pub max_fan_in: u32,
    /// Spill pages written by intermediate merges.
    pub spill_pages: u64,
}

/// Merges batches of runs until at most `fan_in` remain, charging
/// `(batch + 1) · MERGE_HEAD_BYTES` per pass (the heads plus the output
/// writer's page buffer) against `budget`.
pub fn reduce_runs(
    store: &dyn PageStore,
    runs: Vec<Run>,
    fan_in: usize,
    budget: &mut BudgetAccountant,
) -> StorageResult<(Vec<Run>, MergeStats)> {
    let fan_in = fan_in.max(2);
    let mut stats = MergeStats::default();
    let mut queue: VecDeque<Run> = runs.into();
    while queue.len() > fan_in {
        let batch: Vec<Run> = queue.drain(..fan_in).collect();
        let charge = (batch.len() as u64 + 1) * MERGE_HEAD_BYTES;
        budget.charge(charge);
        stats.max_fan_in = stats.max_fan_in.max(batch.len() as u32);
        let mut cursor = MergeCursor::open(store, batch)?;
        let mut writer = crate::spill::RunWriter::new(store);
        while let Some(rec) = cursor.next_record()? {
            writer.push(&rec)?;
        }
        cursor.dispose(store);
        let merged = writer.finish()?;
        stats.spill_pages += merged.pages.len() as u64;
        queue.push_back(merged);
        budget.release(charge);
        stats.intermediate_merges += 1;
    }
    Ok((queue.into(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::RunWriter;
    use rtree_geom::{Point, Rect};
    use rtree_storage::Pager;

    fn rec(seq: u64, x: f64) -> SpillRecord {
        SpillRecord {
            rect: Rect::from_point(Point::new(x, 0.0)),
            child: seq,
            seq,
        }
    }

    /// Writes `recs` (already in run order) as one run.
    fn write_run(store: &dyn PageStore, recs: &[SpillRecord]) -> Run {
        let mut w = RunWriter::new(store);
        for r in recs {
            w.push(r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn merges_interleaved_runs_in_key_order() {
        let pager = Pager::temp().unwrap();
        // Run A holds even xs, run B odd xs; merged output must zip them.
        let a = write_run(
            &pager,
            &(0..50).map(|i| rec(i, (2 * i) as f64)).collect::<Vec<_>>(),
        );
        let b = write_run(
            &pager,
            &(50..100)
                .map(|i| rec(i, (2 * (i - 50) + 1) as f64))
                .collect::<Vec<_>>(),
        );
        let mut cursor = MergeCursor::open(&pager, vec![a, b]).unwrap();
        let mut xs = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            xs.push(r.rect.center().x);
        }
        cursor.dispose(&pager);
        assert_eq!(xs.len(), 100);
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "not sorted: {xs:?}");
    }

    #[test]
    fn equal_centers_break_ties_by_seq() {
        let pager = Pager::temp().unwrap();
        // Same center everywhere; arrival order must win.
        let a = write_run(&pager, &[rec(0, 7.0), rec(2, 7.0), rec(4, 7.0)]);
        let b = write_run(&pager, &[rec(1, 7.0), rec(3, 7.0)]);
        let mut cursor = MergeCursor::open(&pager, vec![a, b]).unwrap();
        let mut seqs = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            seqs.push(r.seq);
        }
        cursor.dispose(&pager);
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reduce_runs_bounds_open_runs_and_recycles_pages() {
        let pager = Pager::temp().unwrap();
        let runs: Vec<Run> = (0..9)
            .map(|r| write_run(&pager, &[rec(r, r as f64), rec(r + 100, r as f64 + 0.5)]))
            .collect();
        let before = pager.page_count();
        let mut budget = BudgetAccountant::new(u64::MAX);
        let (reduced, stats) = reduce_runs(&pager, runs, 3, &mut budget).unwrap();
        assert!(reduced.len() <= 3, "got {} runs", reduced.len());
        assert_eq!(
            reduced.iter().map(|r| r.records).sum::<u64>(),
            18,
            "no records lost"
        );
        assert!(stats.intermediate_merges >= 1);
        assert_eq!(stats.max_fan_in, 3);
        // Freed input pages were recycled, so the file barely grew.
        assert!(
            pager.page_count() <= before + 3,
            "pages grew {} -> {}",
            before,
            pager.page_count()
        );
        assert_eq!(budget.current(), 0, "charges must be released");
        assert!(budget.peak() >= 4 * MERGE_HEAD_BYTES);
    }

    #[test]
    fn reduce_runs_noop_when_within_fan_in() {
        let pager = Pager::temp().unwrap();
        let runs = vec![write_run(&pager, &[rec(0, 0.0)])];
        let mut budget = BudgetAccountant::new(u64::MAX);
        let (reduced, stats) = reduce_runs(&pager, runs, 8, &mut budget).unwrap();
        assert_eq!(reduced.len(), 1);
        assert_eq!(stats.intermediate_merges, 0);
    }
}
