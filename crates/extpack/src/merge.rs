//! K-way merge of spill runs in pack-key order — sequential and
//! partitioned-parallel.
//!
//! [`MergeCursor`] is a pull-based heap merge over any number of open
//! runs; the driver pumps it record by record straight into page
//! emission — no intermediate sorted copy is ever materialized. When the
//! number of runs exceeds what the memory budget allows to be open at
//! once, [`reduce_runs`] first merges **rounds of consecutive
//! fixed-size chunks** into longer runs — the classic multi-pass
//! external merge, shaped so chunk boundaries are a pure function of the
//! fan-in (never of the worker count): the rounds can run on any number
//! of threads and still produce the identical run queue and identical
//! merge statistics.
//!
//! The final merge of a level can additionally be **partitioned by key
//! range** ([`plan_partitions`] + [`merge_range`]): sample the runs'
//! page first-keys to choose split keys, open every run *seeked* to the
//! range start ([`RunReader::open_at`]), merge each range on its own
//! worker, and concatenate the ranges in key order. Keys are globally
//! unique within a level (`seq` is unique), so the concatenation equals
//! the global heap merge record for record, for any choice of split
//! keys — partitioning is pure scheduling and cannot perturb the tree.

use crate::budget::BudgetAccountant;
use crate::spill::{first_key_of_page, Run, RunReader, RunWriter, SortKey, SpillRecord};
use rtree_storage::{PageStore, StorageResult, PAGE_SIZE};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Accounted bytes per open merge head: one resident spill page plus the
/// reader's cursor bookkeeping.
pub const MERGE_HEAD_BYTES: u64 = PAGE_SIZE as u64 + 64;

/// Records per chunk a partition worker hands to the consumer. One chunk
/// is ~96 KiB; each worker accounts [`CHUNKS_PER_WORKER`] of them (one
/// being filled, one in the channel, one being drained).
pub const PARTITION_CHUNK_RECORDS: usize = 2048;

/// Chunks a partition worker may have in flight at once.
pub const CHUNKS_PER_WORKER: u64 = 3;

/// Accounted bytes one partition worker holds beyond its merge heads.
pub fn partition_chunk_bytes() -> u64 {
    CHUNKS_PER_WORKER * (PARTITION_CHUNK_RECORDS * crate::spill::RECORD_SIZE) as u64
}

/// One heap entry: the head record of run `src`.
struct HeapItem {
    key: SortKey,
    src: usize,
    rec: SpillRecord,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // `src` tiebreak keeps the pop order deterministic; equal keys
        // cannot happen across runs (seq is unique per level) but the
        // heap should not rely on that.
        self.key.cmp(&other.key).then(self.src.cmp(&other.src))
    }
}

/// Pull-based k-way merge over a set of spill runs.
pub struct MergeCursor<'a> {
    readers: Vec<RunReader<'a>>,
    heap: BinaryHeap<Reverse<HeapItem>>,
}

impl<'a> MergeCursor<'a> {
    /// Opens every run and primes the heap with each run's head record.
    pub fn open(
        store: &'a (dyn PageStore + Sync),
        runs: Vec<Run>,
    ) -> StorageResult<MergeCursor<'a>> {
        let readers: Vec<RunReader<'a>> = runs
            .into_iter()
            .map(|r| RunReader::open(store, r))
            .collect();
        MergeCursor::prime(readers)
    }

    /// Opens every run positioned at its first record with key ≥ `lo`
    /// (from the start when `lo` is `None`).
    pub fn open_at(
        store: &'a (dyn PageStore + Sync),
        runs: Vec<Run>,
        lo: Option<&SortKey>,
    ) -> StorageResult<MergeCursor<'a>> {
        let readers: Vec<RunReader<'a>> = match lo {
            None => runs
                .into_iter()
                .map(|r| RunReader::open(store, r))
                .collect(),
            Some(key) => runs
                .into_iter()
                .map(|r| RunReader::open_at(store, r, key))
                .collect::<StorageResult<_>>()?,
        };
        MergeCursor::prime(readers)
    }

    fn prime(mut readers: Vec<RunReader<'a>>) -> StorageResult<MergeCursor<'a>> {
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (src, reader) in readers.iter_mut().enumerate() {
            if let Some(rec) = reader.next_record()? {
                heap.push(Reverse(HeapItem {
                    key: rec.key(),
                    src,
                    rec,
                }));
            }
        }
        Ok(MergeCursor { readers, heap })
    }

    /// The globally next record in pack-key order, or `None` when every
    /// run is exhausted.
    pub fn next_record(&mut self) -> StorageResult<Option<SpillRecord>> {
        let Some(Reverse(item)) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some(rec) = self.readers[item.src].next_record()? {
            self.heap.push(Reverse(HeapItem {
                key: rec.key(),
                src: item.src,
                rec,
            }));
        }
        Ok(Some(item.rec))
    }

    /// Consumes the cursor, returning every input page to the spill
    /// store's free list for recycling.
    pub fn dispose(self, store: &(dyn PageStore + Sync)) {
        for reader in self.readers {
            for id in reader.into_run().pages {
                store.free(id);
            }
        }
    }
}

/// Counters from the run-reduction passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Intermediate (non-final) merges performed across all levels.
    pub intermediate_merges: u32,
    /// Largest number of runs merged at once.
    pub max_fan_in: u32,
    /// Spill pages written by intermediate merges.
    pub spill_pages: u64,
}

/// Merges one batch of runs into a single new run.
fn merge_batch(store: &(dyn PageStore + Sync), batch: Vec<Run>) -> StorageResult<Run> {
    let mut cursor = MergeCursor::open(store, batch)?;
    let mut writer = RunWriter::new(store);
    while let Some(rec) = cursor.next_record()? {
        writer.push(&rec)?;
    }
    cursor.dispose(store);
    writer.finish()
}

/// Merges rounds of consecutive `fan_in`-run chunks until at most
/// `fan_in` runs remain.
///
/// Chunk boundaries are a pure function of the queue order and `fan_in`,
/// and merged chunks re-enter the queue in chunk order — so the
/// resulting run queue **and** the statistics are identical at every
/// `threads` value; worker count is pure scheduling. Each in-flight
/// chunk charges `(fan_in + 1) · MERGE_HEAD_BYTES` (its heads plus the
/// output writer's page) against `budget`, and the number of chunks
/// merged concurrently is clamped so the total stays within the
/// accountant's headroom — over-subscribed thread requests degrade to
/// fewer workers, never to an overshoot.
pub fn reduce_runs(
    store: &(dyn PageStore + Sync),
    runs: Vec<Run>,
    fan_in: usize,
    threads: usize,
    budget: &BudgetAccountant,
) -> StorageResult<(Vec<Run>, MergeStats)> {
    let fan_in = fan_in.max(2);
    let mut stats = MergeStats::default();
    let mut queue = runs;
    while queue.len() > fan_in {
        // One round: consecutive chunks of `fan_in` runs each collapse
        // into one; a short tail chunk of a single run passes through.
        let mut chunks: Vec<Vec<Run>> = Vec::with_capacity(queue.len().div_ceil(fan_in));
        let mut iter = queue.into_iter().peekable();
        while iter.peek().is_some() {
            chunks.push(iter.by_ref().take(fan_in).collect());
        }
        let chunk_lens: Vec<usize> = chunks.iter().map(Vec::len).collect();
        let per_chunk = (fan_in as u64 + 1) * MERGE_HEAD_BYTES;
        let workers = clamp_workers(threads, budget.headroom(), per_chunk)
            .min(chunks.iter().filter(|c| c.len() > 1).count().max(1));
        for chunk in &chunks {
            if chunk.len() > 1 {
                stats.intermediate_merges += 1;
                stats.max_fan_in = stats.max_fan_in.max(chunk.len() as u32);
            }
        }
        budget.charge(workers as u64 * per_chunk);
        let merged: Vec<Run> = if workers <= 1 {
            let mut out = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                out.push(if chunk.len() == 1 {
                    chunk.into_iter().next().expect("single run")
                } else {
                    merge_batch(store, chunk)?
                });
            }
            out
        } else {
            // Strided assignment (chunk k → worker k mod w); results are
            // collected back in chunk order, so scheduling is invisible.
            let mut slots: Vec<Option<StorageResult<Run>>> = Vec::new();
            slots.resize_with(chunks.len(), || None);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                let jobs: Vec<(usize, Vec<Run>)> = chunks.into_iter().enumerate().collect();
                let mut buckets: Vec<Vec<(usize, Vec<Run>)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for job in jobs {
                    let w = job.0 % workers;
                    buckets[w].push(job);
                }
                for bucket in buckets {
                    handles.push(scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(k, chunk)| {
                                let out = if chunk.len() == 1 {
                                    Ok(chunk.into_iter().next().expect("single run"))
                                } else {
                                    merge_batch(store, chunk)
                                };
                                (k, out)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    for (k, out) in h.join().expect("reduce worker panicked") {
                        slots[k] = Some(out);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every chunk produced a result"))
                .collect::<StorageResult<Vec<Run>>>()?
        };
        budget.release(workers as u64 * per_chunk);
        // Pass-through chunks wrote nothing; count only freshly merged
        // runs' pages.
        stats.spill_pages += merged
            .iter()
            .zip(&chunk_lens)
            .filter(|(_, &len)| len > 1)
            .map(|(r, _)| r.pages.len() as u64)
            .sum::<u64>();
        queue = merged;
    }
    Ok((queue, stats))
}

/// Clamps a requested worker count to what `headroom` bytes can pay for
/// at `per_worker` bytes each (floored at one worker).
pub fn clamp_workers(requested: usize, headroom: u64, per_worker: u64) -> usize {
    let affordable = headroom.checked_div(per_worker).unwrap_or(requested as u64);
    requested.max(1).min(affordable.max(1) as usize)
}

/// Chooses `parts - 1` ascending split keys by sampling the runs' page
/// first-keys (a bounded number of single-page probe reads). Split keys
/// only steer load balance: any choice yields the same merged output.
pub fn plan_partitions(
    store: &(dyn PageStore + Sync),
    runs: &[Run],
    parts: usize,
) -> StorageResult<Vec<SortKey>> {
    if parts <= 1 {
        return Ok(Vec::new());
    }
    let total_pages: usize = runs.iter().map(|r| r.pages.len()).sum();
    let target = (parts * 32).clamp(parts, 256);
    let stride = (total_pages / target).max(1);
    let mut samples: Vec<SortKey> = Vec::with_capacity(target + runs.len());
    for run in runs {
        for idx in (0..run.pages.len()).step_by(stride) {
            samples.push(first_key_of_page(store, run.pages[idx])?);
        }
    }
    samples.sort_unstable();
    if samples.is_empty() {
        return Ok(Vec::new());
    }
    let mut splits = Vec::with_capacity(parts - 1);
    for p in 1..parts {
        splits.push(samples[p * samples.len() / parts]);
    }
    Ok(splits)
}

/// Merges the key range `[lo, hi)` of `runs` (unbounded where `None`),
/// invoking `emit` for every record in global key order. This is one
/// partition worker's whole job; the input pages are left alone — the
/// level driver frees them once every partition is done.
pub fn merge_range(
    store: &(dyn PageStore + Sync),
    runs: Vec<Run>,
    lo: Option<&SortKey>,
    hi: Option<&SortKey>,
    emit: &mut dyn FnMut(SpillRecord) -> bool,
) -> StorageResult<()> {
    let mut cursor = MergeCursor::open_at(store, runs, lo)?;
    while let Some(rec) = cursor.next_record()? {
        if let Some(h) = hi {
            if rec.key() >= *h {
                break;
            }
        }
        if !emit(rec) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::RunWriter;
    use rtree_geom::{Point, Rect};
    use rtree_storage::Pager;

    fn rec(seq: u64, x: f64) -> SpillRecord {
        SpillRecord {
            rect: Rect::from_point(Point::new(x, 0.0)),
            child: seq,
            seq,
        }
    }

    /// Writes `recs` (already in run order) as one run.
    fn write_run(store: &(dyn PageStore + Sync), recs: &[SpillRecord]) -> Run {
        let mut w = RunWriter::new(store);
        for r in recs {
            w.push(r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn merges_interleaved_runs_in_key_order() {
        let pager = Pager::temp().unwrap();
        // Run A holds even xs, run B odd xs; merged output must zip them.
        let a = write_run(
            &pager,
            &(0..50).map(|i| rec(i, (2 * i) as f64)).collect::<Vec<_>>(),
        );
        let b = write_run(
            &pager,
            &(50..100)
                .map(|i| rec(i, (2 * (i - 50) + 1) as f64))
                .collect::<Vec<_>>(),
        );
        let mut cursor = MergeCursor::open(&pager, vec![a, b]).unwrap();
        let mut xs = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            xs.push(r.rect.center().x);
        }
        cursor.dispose(&pager);
        assert_eq!(xs.len(), 100);
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "not sorted: {xs:?}");
    }

    #[test]
    fn equal_centers_break_ties_by_seq() {
        let pager = Pager::temp().unwrap();
        // Same center everywhere; arrival order must win.
        let a = write_run(&pager, &[rec(0, 7.0), rec(2, 7.0), rec(4, 7.0)]);
        let b = write_run(&pager, &[rec(1, 7.0), rec(3, 7.0)]);
        let mut cursor = MergeCursor::open(&pager, vec![a, b]).unwrap();
        let mut seqs = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            seqs.push(r.seq);
        }
        cursor.dispose(&pager);
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reduce_runs_bounds_open_runs_and_recycles_pages() {
        let pager = Pager::temp().unwrap();
        let runs: Vec<Run> = (0..9)
            .map(|r| write_run(&pager, &[rec(r, r as f64), rec(r + 100, r as f64 + 0.5)]))
            .collect();
        let before = pager.page_count();
        let budget = BudgetAccountant::new(u64::MAX);
        let (reduced, stats) = reduce_runs(&pager, runs, 3, 1, &budget).unwrap();
        assert!(reduced.len() <= 3, "got {} runs", reduced.len());
        assert_eq!(
            reduced.iter().map(|r| r.records).sum::<u64>(),
            18,
            "no records lost"
        );
        assert!(stats.intermediate_merges >= 1);
        assert_eq!(stats.max_fan_in, 3);
        // Freed input pages were recycled, so the file barely grew.
        assert!(
            pager.page_count() <= before + 3,
            "pages grew {} -> {}",
            before,
            pager.page_count()
        );
        assert_eq!(budget.current(), 0, "charges must be released");
        assert!(budget.peak() >= 4 * MERGE_HEAD_BYTES);
    }

    #[test]
    fn reduce_runs_is_identical_at_every_thread_count() {
        // Same 23 runs reduced at threads 1, 2, 4, 8: the run queue
        // (records, page contents) and stats must be identical.
        let mut images: Vec<(Vec<Vec<SpillRecord>>, u32, u32)> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let pager = Pager::temp().unwrap();
            let runs: Vec<Run> = (0..23)
                .map(|r| {
                    write_run(
                        &pager,
                        &(0..40)
                            .map(|i| rec(r * 40 + i, (i * 23 + r) as f64))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let budget = BudgetAccountant::new(u64::MAX);
            let (reduced, stats) = reduce_runs(&pager, runs, 4, threads, &budget).unwrap();
            let contents: Vec<Vec<SpillRecord>> = reduced
                .iter()
                .map(|r| {
                    let mut reader = RunReader::open(&pager, r.clone());
                    let mut recs = Vec::new();
                    while let Some(rec) = reader.next_record().unwrap() {
                        recs.push(rec);
                    }
                    recs
                })
                .collect();
            images.push((contents, stats.intermediate_merges, stats.max_fan_in));
            assert_eq!(budget.current(), 0);
        }
        for pair in images.windows(2) {
            assert_eq!(pair[0], pair[1], "thread count changed reduce output");
        }
    }

    #[test]
    fn reduce_runs_clamps_workers_to_budget() {
        // A budget with headroom for exactly one in-flight chunk: 8
        // requested threads must degrade to sequential merging, and the
        // peak must stay within one chunk's charge.
        let pager = Pager::temp().unwrap();
        let runs: Vec<Run> = (0..12)
            .map(|r| write_run(&pager, &[rec(r, r as f64)]))
            .collect();
        let per_chunk = 4 * MERGE_HEAD_BYTES; // fan_in 3 → (3+1) heads
        let budget = BudgetAccountant::new(per_chunk);
        let (reduced, _) = reduce_runs(&pager, runs, 3, 8, &budget).unwrap();
        assert!(reduced.len() <= 3);
        assert!(
            budget.peak() <= per_chunk,
            "peak {} exceeds one chunk's charge {per_chunk}",
            budget.peak()
        );
    }

    #[test]
    fn clamp_workers_floors_and_caps() {
        assert_eq!(clamp_workers(8, 100, 10), 8, "plenty of headroom");
        assert_eq!(clamp_workers(8, 35, 10), 3, "headroom caps workers");
        assert_eq!(clamp_workers(8, 0, 10), 1, "always at least one");
        assert_eq!(clamp_workers(0, 100, 10), 1, "zero request floors to 1");
    }

    #[test]
    fn reduce_runs_noop_when_within_fan_in() {
        let pager = Pager::temp().unwrap();
        let runs = vec![write_run(&pager, &[rec(0, 0.0)])];
        let budget = BudgetAccountant::new(u64::MAX);
        let (reduced, stats) = reduce_runs(&pager, runs, 8, 1, &budget).unwrap();
        assert_eq!(reduced.len(), 1);
        assert_eq!(stats.intermediate_merges, 0);
    }

    #[test]
    fn partitioned_ranges_concatenate_to_the_global_merge() {
        let pager = Pager::temp().unwrap();
        // 6 interleaved runs, 300 records with duplicate centers (ties
        // broken by seq), so range boundaries land between equal centers
        // too.
        let runs: Vec<Run> = (0..6)
            .map(|r| {
                write_run(
                    &pager,
                    &(0..50)
                        .map(|i| rec(r + 6 * i, ((i * 7) % 40) as f64))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        // Reference: plain global merge.
        let mut global = Vec::new();
        let mut cursor = MergeCursor::open(&pager, runs.clone()).unwrap();
        while let Some(r) = cursor.next_record().unwrap() {
            global.push(r);
        }
        for parts in [2usize, 3, 5] {
            let splits = plan_partitions(&pager, &runs, parts).unwrap();
            assert_eq!(splits.len(), parts - 1);
            let mut stitched = Vec::new();
            for p in 0..parts {
                let lo = if p == 0 { None } else { Some(&splits[p - 1]) };
                let hi = if p == parts - 1 {
                    None
                } else {
                    Some(&splits[p])
                };
                merge_range(&pager, runs.clone(), lo, hi, &mut |r| {
                    stitched.push(r);
                    true
                })
                .unwrap();
            }
            assert_eq!(stitched, global, "parts={parts}");
        }
    }
}
