//! Differential suite: the external packer must be **bit-identical** to
//! the in-memory packer — same logical tree (canonical [`TreeImage`]),
//! same query answers — at every memory budget, including degenerate
//! budgets that force one-record runs, while keeping peak accounted
//! memory within the budget (above the documented ~12.5 KiB floor of
//! two merge heads plus a reduce output head).

use packed_rtree_core::{pack_with, PackStrategy};
use rtree_extpack::{pack_external, ExtPackConfig, MERGE_HEAD_BYTES};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig, SearchStats};
use rtree_oracle::{validate_deep, DeepChecks, TreeImage};
use rtree_storage::{BufferPool, DiskRTree, Pager};

/// Smallest peak the packer can achieve regardless of budget: two merge
/// heads + a reduce pass's output head + one buffered record.
const FLOOR_BYTES: u64 = 3 * MERGE_HEAD_BYTES + 96;

/// Deterministic workload with uniform scatter, a dense cluster, and
/// deliberate duplicate centers (every 13th item reuses an earlier
/// rect), so the seq tiebreaker actually decides order.
fn workload(n: u64) -> Vec<(Rect, ItemId)> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut items: Vec<(Rect, ItemId)> = Vec::with_capacity(n as usize);
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let rect = if i % 13 == 12 {
            // Duplicate an earlier rect verbatim: identical sort center.
            items[(state % i) as usize].0
        } else if i % 5 == 0 {
            // Dense cluster near the origin.
            let x = (state >> 40) as f64 / 65536.0;
            let y = ((state >> 16) & 0xFFFFFF) as f64 / 65536.0;
            Rect::new(x, y, x + 0.5, y + 0.5)
        } else {
            let x = (state >> 40) as f64 / 16.0;
            let y = ((state >> 16) & 0xFFFFFF) as f64 / 16.0;
            Rect::new(x, y, x + 2.0, y + 2.0)
        };
        items.push((rect, ItemId(i)));
    }
    items
}

fn query_windows() -> Vec<Rect> {
    vec![
        Rect::new(0.0, 0.0, 200.0, 200.0),
        Rect::new(100.0, 100.0, 101.0, 101.0),
        Rect::new(0.0, 0.0, 1.0e6, 1.0e6),
        Rect::new(500.0, 10.0, 900.0, 800000.0),
        Rect::new(-5.0, -5.0, -1.0, -1.0),
    ]
}

/// Pipeline thread count under test: `EXTPACK_TEST_THREADS` (the CI
/// thread matrix sets 1 and 4), defaulting to 2 so the overlapped and
/// partitioned paths are exercised locally.
fn test_threads() -> usize {
    std::env::var("EXTPACK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Packs `items` both ways and asserts logical bit-identity, deep
/// validity, query equality, and the budget bound.
fn assert_identical(items: &[(Rect, ItemId)], strategy: PackStrategy, budget: u64) {
    let tree_cfg = RTreeConfig::PAPER;
    let mem = pack_with(items.to_vec(), tree_cfg, strategy);
    let mem_img = TreeImage::of_rtree(&mem).canonical();

    let dest = Pager::temp().expect("dest pager");
    let cfg = ExtPackConfig {
        memory_budget_bytes: budget,
        strategy,
        threads: test_threads(),
        tree: tree_cfg,
    };
    let (disk, stats) = pack_external(items.to_vec(), &cfg, &dest).expect("external pack");
    assert_eq!(disk.len(), items.len(), "item count");
    assert!(
        stats.peak_budget_bytes <= budget.max(FLOOR_BYTES),
        "peak {} exceeds budget {budget} (floor {FLOOR_BYTES}) [{strategy:?}]",
        stats.peak_budget_bytes,
    );

    let pool = BufferPool::new(&dest, 128);
    let disk_img =
        TreeImage::of_disk_tree(&disk, &pool, tree_cfg.max_entries, tree_cfg.min_entries)
            .expect("snapshot disk tree")
            .canonical();

    validate_deep(&disk_img, DeepChecks::packed())
        .unwrap_or_else(|e| panic!("invalid external tree [{strategy:?} b={budget}]: {e}"));
    assert_eq!(
        disk_img, mem_img,
        "external tree differs from in-memory pack [{strategy:?} b={budget}]"
    );

    // Same answers to every query (order-insensitive).
    for window in query_windows() {
        let mut s1 = SearchStats::default();
        let mut expected = mem.search_within(&window, &mut s1);
        let mut s2 = SearchStats::default();
        let mut got = disk
            .search_within(&pool, &window, &mut s2)
            .expect("disk search");
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "window {window:?} [{strategy:?} b={budget}]");
    }

    // Reopening the destination file finds the same committed tree.
    let reopened = DiskRTree::open_default(&dest).expect("reopen");
    assert_eq!(reopened.root(), disk.root());
    assert_eq!(reopened.len(), disk.len());
}

#[test]
fn identical_at_10k_across_strategies_and_budgets() {
    let items = workload(10_000);
    for strategy in [
        PackStrategy::NearestNeighbor,
        PackStrategy::XSort,
        PackStrategy::SortTileRecursive,
    ] {
        for budget in [4 * 1024, 64 * 1024, 1 << 20, u64::MAX / 2] {
            assert_identical(&items, strategy, budget);
        }
    }
}

#[test]
fn identical_under_degenerate_one_record_runs() {
    // Budget 0 clamps to 1-record runs and 2-way merges: the slowest
    // possible configuration must still be bit-identical.
    let items = workload(2_000);
    for strategy in [PackStrategy::NearestNeighbor, PackStrategy::XSort] {
        assert_identical(&items, strategy, 0);
    }
}

#[test]
fn identical_at_100k() {
    let items = workload(100_000);
    assert_identical(&items, PackStrategy::NearestNeighbor, 256 * 1024);
}

#[test]
fn identical_across_thread_matrix() {
    // The *physical* destination file — every byte of every page — must
    // be identical at every thread count, for tiny, medium, and huge
    // budgets. This is stronger than logical tree equality: it pins the
    // page layout, the emission order, and the commit record.
    use rtree_storage::PageId;
    let items = workload(10_000);
    for budget in [FLOOR_BYTES, 256 * 1024, u64::MAX / 2] {
        let mut images: Vec<(usize, Vec<u8>)> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let dest = Pager::temp().expect("dest pager");
            let cfg = ExtPackConfig {
                memory_budget_bytes: budget,
                strategy: PackStrategy::NearestNeighbor,
                threads,
                tree: RTreeConfig::PAPER,
            };
            let (tree, stats) = pack_external(items.clone(), &cfg, &dest).expect("external pack");
            assert_eq!(tree.len(), items.len());
            assert_eq!(stats.threads_used as usize, threads);
            assert!(
                stats.peak_budget_bytes <= budget.max(FLOOR_BYTES),
                "threads={threads} b={budget}: peak {} over budget",
                stats.peak_budget_bytes
            );
            let mut image = Vec::new();
            for p in 0..dest.page_count() {
                image.extend_from_slice(dest.read_page_raw(PageId(p)).expect("raw page").bytes());
            }
            images.push((threads, image));
        }
        for pair in images.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "budget {budget}: threads {} and {} produced different files",
                pair[0].0, pair[1].0
            );
        }
    }
}

#[test]
fn spills_and_stays_within_budget() {
    // Acceptance criterion: a dataset much larger than the budget packs
    // completely while peak accounted memory stays within the budget.
    let items = workload(50_000);
    let budget = 256 * 1024;
    let dest = Pager::temp().expect("dest pager");
    let cfg = ExtPackConfig {
        memory_budget_bytes: budget,
        threads: 2,
        ..ExtPackConfig::new(0)
    };
    let (tree, stats) = pack_external(items, &cfg, &dest).expect("external pack");
    assert_eq!(tree.len(), 50_000);
    assert!(stats.initial_runs > 1, "dataset must not fit in one run");
    assert!(stats.spill_bytes > 0);
    assert!(
        stats.peak_budget_bytes <= budget,
        "peak {} exceeds budget {budget}",
        stats.peak_budget_bytes
    );
    // 50k records × 96 bytes ≈ 4.6 MiB of would-be resident state: the
    // budget forced it through the spill path.
    assert!(stats.spill_bytes as usize > 50_000 * 48 / 2);
}
