//! Satellite guarantee: spill-run temp files are cleaned up on success
//! AND on error/panic, via the [`SpillDir`] RAII guard.

use packed_rtree_core::PackStrategy;
use rtree_extpack::{pack_external, pack_external_into, ExtPackConfig, SpillDir};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig};
use rtree_storage::{DiskRTree, FaultKind, FaultPager, FaultScript, Pager};
use std::panic::AssertUnwindSafe;
use std::path::Path;

fn items(n: u64) -> Vec<(Rect, ItemId)> {
    (0..n)
        .map(|i| {
            let x = ((i * 2654435761) % 10_007) as f64;
            let y = ((i * 40503) % 9973) as f64;
            (Rect::new(x, y, x + 1.0, y + 1.0), ItemId(i))
        })
        .collect()
}

fn cfg(budget: u64) -> ExtPackConfig {
    ExtPackConfig {
        memory_budget_bytes: budget,
        strategy: PackStrategy::NearestNeighbor,
        threads: 1,
        tree: RTreeConfig::PAPER,
    }
}

fn entry_count(dir: &Path) -> usize {
    std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
}

/// A scratch parent directory for this test, itself cleaned up on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let path =
            std::env::temp_dir().join(format!("extpack-cleanup-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("scratch dir");
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn spill_dir_empty_after_successful_pack() {
    let scratch = Scratch::new("ok");
    {
        let dir = SpillDir::create_in(&scratch.0).expect("spill dir");
        let spill = dir.create_pager().expect("spill pager");
        let dest = Pager::temp().expect("dest");
        let (tree, stats) =
            pack_external_into(items(5_000), &cfg(16 * 1024), &dest, &spill).expect("pack");
        assert_eq!(tree.len(), 5_000);
        assert!(stats.spill_pages > 0, "must have spilled");
        assert_eq!(entry_count(&scratch.0), 1, "spill dir exists during pack");
    }
    assert_eq!(
        entry_count(&scratch.0),
        0,
        "scratch must be empty after the guard drops"
    );
}

#[test]
fn spill_dir_empty_after_failed_pack() {
    let scratch = Scratch::new("err");
    {
        let dir = SpillDir::create_in(&scratch.0).expect("spill dir");
        let spill = dir.create_pager().expect("spill pager");
        let faulty = FaultPager::new(
            &spill,
            FaultScript::new().on_write(3, FaultKind::FailWrite, false),
        );
        let dest = Pager::temp().expect("dest");
        let result = pack_external_into(items(5_000), &cfg(16 * 1024), &dest, &faulty);
        assert!(result.is_err(), "fault must abort the pack");
        assert!(DiskRTree::open_default(&dest).is_err());
    }
    assert_eq!(
        entry_count(&scratch.0),
        0,
        "scratch must be empty after an aborted pack"
    );
}

#[test]
fn pack_external_leaves_no_temp_dirs_behind_on_panic() {
    // Count this process's extpack spill dirs in the system temp dir
    // before and after a pack whose *input stream* panics mid-way.
    let tempdir = std::env::temp_dir();
    let mine = format!("extpack-spill-{}-", std::process::id());
    let count_mine = || {
        std::fs::read_dir(&tempdir)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().starts_with(&mine))
                    .count()
            })
            .unwrap_or(0)
    };
    let before = count_mine();

    let dest = Pager::temp().expect("dest");
    let config = cfg(16 * 1024);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let stream = items(10_000).into_iter().map(|(r, id)| {
            if id.0 == 7_000 {
                panic!("simulated producer failure");
            }
            (r, id)
        });
        let _ = pack_external(stream, &config, &dest);
    }));
    assert!(result.is_err(), "the stream must have panicked");
    assert_eq!(
        count_mine(),
        before,
        "no extpack spill dir may survive the unwind"
    );
}

#[test]
fn pack_external_cleans_temp_dir_on_success() {
    let tempdir = std::env::temp_dir();
    let mine = format!("extpack-spill-{}-", std::process::id());
    let count_mine = || {
        std::fs::read_dir(&tempdir)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().starts_with(&mine))
                    .count()
            })
            .unwrap_or(0)
    };
    let before = count_mine();
    let dest = Pager::temp().expect("dest");
    let (tree, _) = pack_external(items(5_000), &cfg(16 * 1024), &dest).expect("pack");
    assert_eq!(tree.len(), 5_000);
    assert_eq!(count_mine(), before, "spill dir must be gone after return");
}
