//! Crash coverage for the external packer (FaultPager-driven).
//!
//! Two files are in play during an external pack: the spill file (run
//! generation + merges) and the destination file (node pages + meta
//! pair). Faults on either must leave the destination in one of exactly
//! two states after reopen: the previously committed tree, or a cleanly
//! detected "no valid meta" — never a half-written index that opens.

use packed_rtree_core::PackStrategy;
use rtree_extpack::{pack_external_into, ExtPackConfig, ExtPackError};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig};
use rtree_oracle::{validate_deep, DeepChecks, TreeImage};
use rtree_storage::{BufferPool, DiskRTree, FaultKind, FaultPager, FaultScript, Pager};

fn items(n: u64) -> Vec<(Rect, ItemId)> {
    let mut state = 0xDEADBEEFCAFEF00Du64;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 40) as f64 / 64.0;
            let y = ((state >> 16) & 0xFFFFFF) as f64 / 64.0;
            (Rect::new(x, y, x + 1.0, y + 1.0), ItemId(i))
        })
        .collect()
}

fn cfg(budget: u64) -> ExtPackConfig {
    ExtPackConfig {
        memory_budget_bytes: budget,
        strategy: PackStrategy::NearestNeighbor,
        threads: 1,
        tree: RTreeConfig::PAPER,
    }
}

/// Counts the physical writes a clean pack performs on each store, so
/// the crash sweeps know the index space to script faults into.
fn clean_write_counts(n: u64, budget: u64) -> (u64, u64) {
    let dest = Pager::temp().expect("dest");
    let spill = Pager::temp().expect("spill");
    pack_external_into(items(n), &cfg(budget), &dest, &spill).expect("clean pack");
    (dest.stats().writes(), spill.stats().writes())
}

#[test]
fn spill_write_failure_aborts_without_committing() {
    let (_, spill_writes) = clean_write_counts(800, 8 * 1024);
    assert!(spill_writes > 4, "workload must actually spill");
    // Fail an early, a middle, and a late spill write.
    for nth in [1, spill_writes / 2, spill_writes - 1] {
        let dest = Pager::temp().expect("dest");
        let spill = Pager::temp().expect("spill");
        let faulty = FaultPager::new(
            &spill,
            FaultScript::new().on_write(nth, FaultKind::FailWrite, false),
        );
        let err = pack_external_into(items(800), &cfg(8 * 1024), &dest, &faulty)
            .expect_err("pack must fail");
        assert!(matches!(err, ExtPackError::Storage(_)), "{err}");
        // Nothing was committed: the destination opens as "no tree".
        let reopen = DiskRTree::open_default(&dest);
        assert!(reopen.is_err(), "no meta must be committed (write {nth})");
    }
}

#[test]
fn torn_spill_page_surfaces_as_corruption_on_merge_read() {
    let (_, spill_writes) = clean_write_counts(800, 8 * 1024);
    // Tear a spill page without crashing: the pack continues until the
    // merge reads the torn page back, which must fail CRC verification
    // (never decode garbage into the tree).
    let dest = Pager::temp().expect("dest");
    let spill = Pager::temp().expect("spill");
    let faulty = FaultPager::new(
        &spill,
        FaultScript::new().on_write(spill_writes / 3, FaultKind::TornWrite, false),
    );
    let err =
        pack_external_into(items(800), &cfg(8 * 1024), &dest, &faulty).expect_err("pack must fail");
    match err {
        // The torn write itself reports EIO, which aborts the pack —
        // or, had it gone unnoticed, the merge read reports corruption.
        ExtPackError::Storage(e) => {
            assert!(DiskRTree::open_default(&dest).is_err());
            drop(e);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn dest_crash_sweep_fresh_file_never_commits_partial_tree() {
    let (dest_writes, _) = clean_write_counts(600, 8 * 1024);
    assert!(dest_writes > 20, "need a multi-page emission to sweep");
    // Crash at every destination write, including the final meta flip.
    for nth in 1..=dest_writes {
        let dest = Pager::temp().expect("dest");
        let spill = Pager::temp().expect("spill");
        let faulty = FaultPager::new(
            &dest,
            FaultScript::new().on_write(nth, FaultKind::TornWrite, true),
        );
        let result = pack_external_into(items(600), &cfg(8 * 1024), &faulty, &spill);
        assert!(result.is_err(), "crash at write {nth} must abort the pack");
        // Reopen the underlying file as recovery would.
        match DiskRTree::open_default(&dest) {
            Err(e) => assert!(e.is_corrupt(), "write {nth}: {e:?}"),
            Ok(tree) => {
                // The crash hit after the commit point (inside the second
                // meta slot write): the committed tree must be complete.
                let pool = BufferPool::new(&dest, 64);
                let img = TreeImage::of_disk_tree(&tree, &pool, 4, 2)
                    .unwrap_or_else(|e| panic!("write {nth}: unreadable tree: {e}"));
                validate_deep(&img, DeepChecks::packed())
                    .unwrap_or_else(|e| panic!("write {nth}: invalid tree: {e}"));
                assert_eq!(tree.len(), 600, "write {nth}");
            }
        }
    }
}

#[test]
fn dest_crash_mid_emission_preserves_previous_tree() {
    let (dest_writes, _) = clean_write_counts(600, 8 * 1024);
    for nth in [1, dest_writes / 2, dest_writes - 2] {
        let dest = Pager::temp().expect("dest");
        let spill_a = Pager::temp().expect("spill a");
        // Commit tree A cleanly.
        let (tree_a, _) =
            pack_external_into(items(300), &cfg(8 * 1024), &dest, &spill_a).expect("tree A");
        assert_eq!(tree_a.len(), 300);

        // Pack tree B through a crashing destination.
        let spill_b = Pager::temp().expect("spill b");
        let faulty = FaultPager::new(
            &dest,
            FaultScript::new().on_write(nth, FaultKind::TornWrite, true),
        );
        let result = pack_external_into(items(600), &cfg(8 * 1024), &faulty, &spill_b);
        assert!(result.is_err(), "crash at write {nth} must abort");

        // Recovery sees tree A, bit for bit.
        let recovered = DiskRTree::open_default(&dest).expect("previous tree survives");
        assert_eq!(recovered.root(), tree_a.root(), "write {nth}");
        assert_eq!(recovered.epoch(), tree_a.epoch(), "write {nth}");
        assert_eq!(recovered.len(), 300, "write {nth}");
        let pool = BufferPool::new(&dest, 64);
        let img = TreeImage::of_disk_tree(&recovered, &pool, 4, 2).expect("readable");
        validate_deep(&img, DeepChecks::packed()).expect("tree A still valid");
    }
}

#[test]
fn dest_crash_mid_parallel_merge_preserves_previous_tree() {
    // A budget and thread count that genuinely activate the partitioned
    // final merge (multiple runs, multiple partition workers), then a
    // destination crash mid-leaf-emission: the previously committed tree
    // must survive untouched, and the pack must surface the error
    // instead of hanging any worker.
    let par_cfg = ExtPackConfig {
        memory_budget_bytes: 2 << 20,
        strategy: PackStrategy::NearestNeighbor,
        threads: 4,
        tree: RTreeConfig::PAPER,
    };
    let n = 30_000;

    // Clean reference pass, counted through a no-fault FaultPager so the
    // fault indices below match what the faulted pass will observe.
    let dest0 = Pager::temp().expect("dest");
    let spill0 = Pager::temp().expect("spill");
    let counted = FaultPager::new(&dest0, FaultScript::new());
    let (_, stats) = pack_external_into(items(n), &par_cfg, &counted, &spill0).expect("clean pack");
    assert!(stats.initial_runs > 1, "need a real multi-run merge");
    assert!(
        stats.merge_partitions > 1,
        "config must activate the partitioned merge, got {} partitions",
        stats.merge_partitions
    );
    let dest_writes = counted.writes_seen();
    assert!(dest_writes > 100);

    for nth in [dest_writes / 4, dest_writes / 2, dest_writes - 2] {
        let dest = Pager::temp().expect("dest");
        // Commit tree A cleanly first.
        let spill_a = Pager::temp().expect("spill a");
        let (tree_a, _) =
            pack_external_into(items(500), &cfg(64 * 1024), &dest, &spill_a).expect("tree A");

        // Pack B with the partitioned-merge config through a crashing
        // destination.
        let spill_b = Pager::temp().expect("spill b");
        let faulty = FaultPager::new(
            &dest,
            FaultScript::new().on_write(nth, FaultKind::TornWrite, true),
        );
        let result = pack_external_into(items(n), &par_cfg, &faulty, &spill_b);
        assert!(result.is_err(), "crash at write {nth} must abort");

        // Recovery sees tree A.
        let recovered = DiskRTree::open_default(&dest).expect("previous tree survives");
        assert_eq!(recovered.root(), tree_a.root(), "write {nth}");
        assert_eq!(recovered.len(), 500, "write {nth}");
        let pool = BufferPool::new(&dest, 64);
        let img = TreeImage::of_disk_tree(&recovered, &pool, 4, 2).expect("readable");
        validate_deep(&img, DeepChecks::packed()).expect("tree A still valid");
    }
}

#[test]
fn transient_spill_read_aborts_cleanly() {
    let dest = Pager::temp().expect("dest");
    let spill = Pager::temp().expect("spill");
    let faulty = FaultPager::new(
        &spill,
        FaultScript::new().on_read(2, FaultKind::TransientRead, false),
    );
    let err =
        pack_external_into(items(800), &cfg(8 * 1024), &dest, &faulty).expect_err("pack must fail");
    assert!(matches!(err, ExtPackError::Storage(_)));
    assert!(DiskRTree::open_default(&dest).is_err());
}
