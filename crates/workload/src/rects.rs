//! Rectangle (region MBR) distributions.

use rand::Rng;
use rtree_geom::Rect;

/// `n` random rectangles with centers uniform over `universe` and sides
/// uniform in `[min_side, max_side]`, clipped to the universe.
pub fn uniform<R: Rng>(
    rng: &mut R,
    universe: &Rect,
    n: usize,
    min_side: f64,
    max_side: f64,
) -> Vec<Rect> {
    assert!(min_side >= 0.0 && min_side <= max_side);
    (0..n)
        .map(|_| {
            let w = rng.gen_range(min_side..=max_side);
            let h = rng.gen_range(min_side..=max_side);
            let cx = rng.gen_range(universe.min_x..=universe.max_x);
            let cy = rng.gen_range(universe.min_y..=universe.max_y);
            Rect::new(
                (cx - w / 2.0).max(universe.min_x),
                (cy - h / 2.0).max(universe.min_y),
                (cx + w / 2.0).min(universe.max_x),
                (cy + h / 2.0).min(universe.max_y),
            )
        })
        .collect()
}

/// A `cols × rows` tiling of `universe` into disjoint rectangles, each
/// shrunk by `gap` on every side. Models region layers like states or
/// time zones where objects tile the space.
pub fn tiling(universe: &Rect, cols: usize, rows: usize, gap: f64) -> Vec<Rect> {
    assert!(cols >= 1 && rows >= 1);
    let dx = universe.width() / cols as f64;
    let dy = universe.height() / rows as f64;
    assert!(gap * 2.0 < dx && gap * 2.0 < dy, "gap too large for cell");
    let mut out = Vec::with_capacity(cols * rows);
    for i in 0..cols {
        for j in 0..rows {
            let x0 = universe.min_x + i as f64 * dx;
            let y0 = universe.min_y + j as f64 * dy;
            out.push(Rect::new(x0 + gap, y0 + gap, x0 + dx - gap, y0 + dy - gap));
        }
    }
    out
}

/// Converts rectangles into indexable items.
pub fn as_items(rects: &[Rect]) -> Vec<(Rect, rtree_index::ItemId)> {
    rects
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, rtree_index::ItemId(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_UNIVERSE;

    #[test]
    fn uniform_rects_inside_universe() {
        let mut rng = crate::rng(5);
        let rs = uniform(&mut rng, &PAPER_UNIVERSE, 200, 5.0, 50.0);
        assert_eq!(rs.len(), 200);
        for r in &rs {
            assert!(PAPER_UNIVERSE.covers(r), "{r}");
            assert!(r.width() <= 50.0 + 1e-9 && r.height() <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn tiling_is_disjoint_and_covers_grid() {
        let tiles = tiling(&PAPER_UNIVERSE, 5, 4, 2.0);
        assert_eq!(tiles.len(), 20);
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[(i + 1)..] {
                assert!(a.disjoint(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gap too large")]
    fn oversized_gap_rejected() {
        tiling(&PAPER_UNIVERSE, 100, 100, 6.0);
    }
}
