//! Query workloads.

use rand::Rng;
use rtree_geom::{Point, Rect};

/// The paper's §3.5 query workload: random points for the query
/// "Is point (x, y) contained in the database?". The paper uses 1000 of
/// these per configuration.
pub fn point_queries<R: Rng>(rng: &mut R, universe: &Rect, n: usize) -> Vec<Point> {
    crate::points::uniform(rng, universe, n)
}

/// `n` square windows whose area is `selectivity × area(universe)`, with
/// centers uniform over the universe (clipped at the boundary).
///
/// `selectivity = 0.01` gives windows covering 1% of the space — the knob
/// swept by the `selectivity_sweep` experiment (EXT-6).
pub fn window_queries<R: Rng>(
    rng: &mut R,
    universe: &Rect,
    n: usize,
    selectivity: f64,
) -> Vec<Rect> {
    assert!(selectivity > 0.0 && selectivity <= 1.0);
    let side = (universe.area() * selectivity).sqrt();
    (0..n)
        .map(|_| {
            let cx = rng.gen_range(universe.min_x..=universe.max_x);
            let cy = rng.gen_range(universe.min_y..=universe.max_y);
            Rect::new(
                (cx - side / 2.0).max(universe.min_x),
                (cy - side / 2.0).max(universe.min_y),
                (cx + side / 2.0).min(universe.max_x),
                (cy + side / 2.0).min(universe.max_y),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_UNIVERSE;

    #[test]
    fn windows_have_requested_area() {
        let mut rng = crate::rng(8);
        let ws = window_queries(&mut rng, &PAPER_UNIVERSE, 100, 0.01);
        let target = PAPER_UNIVERSE.area() * 0.01;
        for w in &ws {
            assert!(PAPER_UNIVERSE.covers(w));
            // Clipping can shrink boundary windows but never enlarge.
            assert!(w.area() <= target + 1e-6);
            assert!(w.area() > 0.0);
        }
        // Most interior windows hit the target exactly.
        let exact = ws
            .iter()
            .filter(|w| (w.area() - target).abs() < 1e-6)
            .count();
        assert!(exact > 50);
    }

    #[test]
    fn point_queries_inside() {
        let mut rng = crate::rng(9);
        let ps = point_queries(&mut rng, &PAPER_UNIVERSE, 1000);
        assert_eq!(ps.len(), 1000);
        assert!(ps.iter().all(|&p| PAPER_UNIVERSE.contains_point(p)));
    }
}
