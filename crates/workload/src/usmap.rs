//! A synthetic US-like map: the stand-in for the paper's digitized
//! pictures.
//!
//! The paper's examples run over `us-map`, `state-map`, `time-zone-map`
//! and `lake-map` pictures with relations `cities`, `states`,
//! `time-zones`, `lakes` and `highways` (§2.1). The original digitized
//! pictures are not available, so this module ships a hand-written
//! synthetic equivalent: ~40 named cities at roughly plausible positions,
//! states as rectangular regions, four vertical time-zone bands, a few
//! lakes, and highway polylines. Coordinates live in a 100 × 50 frame
//! (x grows eastward, y northward).
//!
//! The *content* is illustrative; what matters is that it exercises the
//! same code paths: points, regions and segments intermixed, multiple
//! pictures over one geographic frame, and spatially meaningful queries
//! ("cities in the Eastern US with population over 450,000", Figure 2.1).

use rtree_geom::{Point, Rect, Region, Segment};

/// The map frame shared by all pictures.
pub const FRAME: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 50.0,
};

/// The Eastern-US window of the paper's Figure 2.1 query, translated to
/// this frame: roughly the right third of the map.
pub const EASTERN_WINDOW: Rect = Rect {
    min_x: 65.0,
    min_y: 5.0,
    max_x: 100.0,
    max_y: 45.0,
};

/// A named city: a point object with alphanumeric attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Two-letter state code.
    pub state: &'static str,
    /// Synthetic population count.
    pub population: i64,
    /// Location on the map.
    pub location: Point,
}

/// A named rectangular region (state, time zone, or lake).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedRegion {
    /// Region name.
    pub name: &'static str,
    /// Region extent.
    pub region: Region,
}

/// A highway section: one tuple of the `highways` relation.
#[derive(Debug, Clone, PartialEq)]
pub struct HighwaySection {
    /// Highway name, e.g. `I-90`.
    pub highway: &'static str,
    /// Section number along the highway.
    pub section: u32,
    /// The segment geometry.
    pub segment: Segment,
}

/// The synthetic `cities` relation (Figure 3.1 / 3.8a).
pub fn cities() -> Vec<City> {
    const C: &[(&str, &str, i64, f64, f64)] = &[
        ("Seattle", "WA", 3_400_000, 8.0, 46.0),
        ("Portland", "OR", 2_100_000, 7.0, 41.5),
        ("San Francisco", "CA", 4_600_000, 3.0, 30.0),
        ("Los Angeles", "CA", 12_400_000, 8.0, 22.5),
        ("San Diego", "CA", 3_200_000, 9.5, 20.0),
        ("Las Vegas", "NV", 2_200_000, 14.0, 25.0),
        ("Phoenix", "AZ", 4_700_000, 17.0, 19.0),
        ("Salt Lake City", "UT", 1_200_000, 19.0, 31.5),
        ("Denver", "CO", 2_900_000, 28.0, 29.5),
        ("Albuquerque", "NM", 900_000, 25.0, 21.0),
        ("El Paso", "TX", 850_000, 27.0, 15.0),
        ("Dallas", "TX", 7_400_000, 40.0, 16.5),
        ("Houston", "TX", 6_900_000, 42.5, 12.0),
        ("San Antonio", "TX", 2_500_000, 39.0, 11.5),
        ("Oklahoma City", "OK", 1_400_000, 39.5, 21.0),
        ("Kansas City", "MO", 2_100_000, 43.0, 27.0),
        ("Omaha", "NE", 950_000, 41.0, 31.0),
        ("Minneapolis", "MN", 3_600_000, 45.0, 38.5),
        ("Chicago", "IL", 9_400_000, 53.0, 32.5),
        ("St Louis", "MO", 2_800_000, 48.0, 26.5),
        ("Memphis", "TN", 1_300_000, 51.0, 19.0),
        ("New Orleans", "LA", 1_200_000, 50.5, 9.5),
        ("Nashville", "TN", 2_000_000, 56.0, 21.5),
        ("Indianapolis", "IN", 2_100_000, 57.5, 28.0),
        ("Detroit", "MI", 4_300_000, 61.0, 34.5),
        ("Columbus", "OH", 2_100_000, 62.5, 29.0),
        ("Cincinnati", "OH", 2_200_000, 60.0, 26.5),
        ("Atlanta", "GA", 6_100_000, 63.0, 16.0),
        ("Jacksonville", "FL", 1_600_000, 68.0, 10.0),
        ("Miami", "FL", 6_100_000, 72.0, 2.5),
        ("Tampa", "FL", 3_200_000, 67.0, 6.0),
        ("Charlotte", "NC", 2_700_000, 68.0, 19.0),
        ("Raleigh", "NC", 1_400_000, 71.5, 20.5),
        ("Richmond", "VA", 1_300_000, 73.5, 24.5),
        ("Washington", "DC", 6_300_000, 74.5, 26.5),
        ("Baltimore", "MD", 2_800_000, 75.5, 27.5),
        ("Philadelphia", "PA", 6_200_000, 77.5, 29.0),
        ("Pittsburgh", "PA", 2_300_000, 67.5, 28.5),
        ("New York", "NY", 19_600_000, 80.0, 31.0),
        ("Boston", "MA", 4_900_000, 84.0, 34.5),
        ("Buffalo", "NY", 1_100_000, 70.5, 34.0),
        ("Cleveland", "OH", 2_000_000, 63.5, 31.5),
    ];
    C.iter()
        .map(|&(name, state, population, x, y)| City {
            name,
            state,
            population,
            location: Point::new(x, y),
        })
        .collect()
}

/// The synthetic `states` relation: a coarse rectangular carving of the
/// frame (Figure 3.2's region layer).
pub fn states() -> Vec<NamedRegion> {
    const S: &[(&str, f64, f64, f64, f64)] = &[
        ("Washington", 0.0, 42.0, 13.0, 50.0),
        ("Oregon", 0.0, 36.0, 13.0, 42.0),
        ("California", 0.0, 18.0, 12.0, 36.0),
        ("Nevada-Utah", 12.0, 22.0, 22.0, 36.0),
        ("Arizona-NM", 12.0, 12.0, 28.0, 22.0),
        ("Mountain", 22.0, 22.0, 34.0, 40.0),
        ("Texas", 28.0, 5.0, 46.0, 22.0),
        ("Plains", 34.0, 22.0, 46.0, 40.0),
        ("Upper Midwest", 46.0, 30.0, 60.0, 46.0),
        ("Mid South", 46.0, 14.0, 60.0, 30.0),
        ("Gulf", 46.0, 4.0, 60.0, 14.0),
        ("Great Lakes", 60.0, 26.0, 72.0, 40.0),
        ("Southeast", 60.0, 10.0, 72.0, 26.0),
        ("Florida", 64.0, 0.0, 74.0, 10.0),
        ("Mid Atlantic", 72.0, 18.0, 82.0, 32.0),
        ("New England", 78.0, 30.0, 92.0, 42.0),
    ];
    S.iter()
        .map(|&(name, x0, y0, x1, y1)| NamedRegion {
            name,
            region: Region::rectangle(Rect::new(x0, y0, x1, y1)),
        })
        .collect()
}

/// The synthetic `time-zones` relation: four vertical bands with their
/// UTC offsets (Figure 2.2b's layer). Returned as `(name, hour_diff,
/// region)` tuples.
pub fn time_zones() -> Vec<(&'static str, i64, Region)> {
    vec![
        (
            "Pacific",
            -8,
            Region::rectangle(Rect::new(0.0, 0.0, 20.0, 50.0)),
        ),
        (
            "Mountain",
            -7,
            Region::rectangle(Rect::new(20.0, 0.0, 42.0, 50.0)),
        ),
        (
            "Central",
            -6,
            Region::rectangle(Rect::new(42.0, 0.0, 62.0, 50.0)),
        ),
        (
            "Eastern",
            -5,
            Region::rectangle(Rect::new(62.0, 0.0, 100.0, 50.0)),
        ),
    ]
}

/// The synthetic `lakes` relation: `(name, area, volume, region)`.
pub fn lakes() -> Vec<(&'static str, f64, f64, Region)> {
    vec![
        (
            "Superior",
            16.0,
            290.0,
            Region::rectangle(Rect::new(50.0, 40.0, 58.0, 43.0)),
        ),
        (
            "Michigan",
            10.0,
            118.0,
            Region::rectangle(Rect::new(55.0, 33.0, 58.0, 39.5)),
        ),
        (
            "Erie",
            5.0,
            12.0,
            Region::rectangle(Rect::new(62.0, 31.0, 68.0, 33.5)),
        ),
        (
            "Ontario",
            4.0,
            39.0,
            Region::rectangle(Rect::new(70.0, 34.0, 74.0, 36.0)),
        ),
        (
            "Great Salt",
            2.0,
            0.4,
            Region::rectangle(Rect::new(17.5, 31.0, 19.5, 33.0)),
        ),
        (
            "Okeechobee",
            1.5,
            0.1,
            Region::rectangle(Rect::new(70.0, 3.5, 72.0, 5.0)),
        ),
    ]
}

/// The synthetic `highways` relation: transcontinental polylines broken
/// into sections.
pub fn highways() -> Vec<HighwaySection> {
    fn route(name: &'static str, waypoints: &[(f64, f64)]) -> Vec<HighwaySection> {
        waypoints
            .windows(2)
            .enumerate()
            .map(|(i, w)| HighwaySection {
                highway: name,
                section: i as u32 + 1,
                segment: Segment::new(Point::new(w[0].0, w[0].1), Point::new(w[1].0, w[1].1)),
            })
            .collect()
    }
    let mut out = Vec::new();
    // I-90: Seattle → Chicago → Boston.
    out.extend(route(
        "I-90",
        &[
            (8.0, 46.0),
            (19.0, 40.0),
            (32.0, 38.0),
            (45.0, 38.5),
            (53.0, 32.5),
            (61.0, 34.5),
            (70.5, 34.0),
            (84.0, 34.5),
        ],
    ));
    // I-10: Los Angeles → Phoenix → Houston → Jacksonville.
    out.extend(route(
        "I-10",
        &[
            (8.0, 22.5),
            (17.0, 19.0),
            (27.0, 15.0),
            (39.0, 11.5),
            (42.5, 12.0),
            (50.5, 9.5),
            (62.0, 12.0),
            (68.0, 10.0),
        ],
    ));
    // I-95: Miami → Washington → New York → Boston.
    out.extend(route(
        "I-95",
        &[
            (72.0, 2.5),
            (68.0, 10.0),
            (71.5, 20.5),
            (74.5, 26.5),
            (77.5, 29.0),
            (80.0, 31.0),
            (84.0, 34.5),
        ],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cities_inside_frame() {
        for c in cities() {
            assert!(FRAME.contains_point(c.location), "{} outside frame", c.name);
            assert!(c.population > 0);
        }
    }

    #[test]
    fn city_names_unique() {
        let cs = cities();
        let mut names: Vec<&str> = cs.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn eastern_window_selects_east_coast() {
        let eastern: Vec<&'static str> = cities()
            .into_iter()
            .filter(|c| EASTERN_WINDOW.contains_point(c.location))
            .map(|c| c.name)
            .collect();
        assert!(eastern.contains(&"New York"));
        assert!(eastern.contains(&"Boston"));
        assert!(eastern.contains(&"Washington"));
        assert!(!eastern.contains(&"Los Angeles"));
        assert!(!eastern.contains(&"Chicago"));
    }

    #[test]
    fn time_zones_tile_the_frame() {
        let zones = time_zones();
        let total: f64 = zones.iter().map(|(_, _, r)| r.area()).sum();
        assert_eq!(total, FRAME.area());
        // Every city is in exactly one zone.
        for c in cities() {
            let n = zones
                .iter()
                .filter(|(_, _, r)| r.contains_point(c.location))
                .count();
            assert!(n >= 1, "{} in no zone", c.name);
        }
    }

    #[test]
    fn states_inside_frame_and_cities_mostly_covered() {
        let ss = states();
        for s in &ss {
            assert!(FRAME.covers(&s.region.mbr()), "{}", s.name);
        }
        let covered = cities()
            .iter()
            .filter(|c| ss.iter().any(|s| s.region.contains_point(c.location)))
            .count();
        assert!(covered as f64 >= cities().len() as f64 * 0.9);
    }

    #[test]
    fn highways_are_connected_polylines() {
        let hs = highways();
        assert!(!hs.is_empty());
        for name in ["I-90", "I-10", "I-95"] {
            let sections: Vec<&HighwaySection> = hs.iter().filter(|h| h.highway == name).collect();
            assert!(sections.len() >= 5, "{name}");
            for w in sections.windows(2) {
                assert_eq!(w[0].segment.b, w[1].segment.a, "{name} disconnected");
                assert_eq!(w[0].section + 1, w[1].section);
            }
        }
    }

    #[test]
    fn lakes_have_positive_area() {
        for (name, area, volume, region) in lakes() {
            assert!(area > 0.0 && volume > 0.0, "{name}");
            assert!(region.area() > 0.0);
            assert!(FRAME.covers(&region.mbr()));
        }
    }
}
