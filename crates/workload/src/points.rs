//! Point distributions.

use rand::distributions::Distribution;
use rand::Rng;
use rtree_geom::{Point, Rect};

/// `n` points uniform over `universe` — the paper's §3.5 workload
/// ("randomly generated with a uniform distribution in the plane").
pub fn uniform<R: Rng>(rng: &mut R, universe: &Rect, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(universe.min_x..=universe.max_x),
                rng.gen_range(universe.min_y..=universe.max_y),
            )
        })
        .collect()
}

/// `n` points in `k` Gaussian clusters with standard deviation `sigma`,
/// cluster centers uniform over `universe`; samples falling outside are
/// clamped to the boundary.
///
/// Models populated regions — cities cluster along coasts and rivers, not
/// uniformly (Figure 3.8a's map).
pub fn clustered<R: Rng>(
    rng: &mut R,
    universe: &Rect,
    n: usize,
    k: usize,
    sigma: f64,
) -> Vec<Point> {
    assert!(k >= 1);
    let centers: Vec<Point> = uniform(rng, universe, k);
    let normal = Gaussian { sigma };
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..k)];
            let dx = normal.sample(rng);
            let dy = normal.sample(rng);
            Point::new(
                (c.x + dx).clamp(universe.min_x, universe.max_x),
                (c.y + dy).clamp(universe.min_y, universe.max_y),
            )
        })
        .collect()
}

/// An evenly spaced `cols × rows` grid over `universe` (cell centers).
///
/// The worst case for the paper's plain x-sort packing and a stress test
/// for Lemma 3.1 (maximal duplicate x-coordinates).
pub fn grid(universe: &Rect, cols: usize, rows: usize) -> Vec<Point> {
    assert!(cols >= 1 && rows >= 1);
    let dx = universe.width() / cols as f64;
    let dy = universe.height() / rows as f64;
    let mut out = Vec::with_capacity(cols * rows);
    for i in 0..cols {
        for j in 0..rows {
            out.push(Point::new(
                universe.min_x + (i as f64 + 0.5) * dx,
                universe.min_y + (j as f64 + 0.5) * dy,
            ));
        }
    }
    out
}

/// `n` points with Zipf-skewed density toward the lower-left corner:
/// coordinates are `u^alpha`-distorted uniforms. `alpha = 1` is uniform;
/// larger values concentrate mass near the origin corner.
pub fn skewed<R: Rng>(rng: &mut R, universe: &Rect, n: usize, alpha: f64) -> Vec<Point> {
    assert!(alpha >= 1.0);
    (0..n)
        .map(|_| {
            let ux: f64 = rng.gen::<f64>().powf(alpha);
            let uy: f64 = rng.gen::<f64>().powf(alpha);
            Point::new(
                universe.min_x + ux * universe.width(),
                universe.min_y + uy * universe.height(),
            )
        })
        .collect()
}

/// Points along a diagonal band — an adversarial layout where x-order and
/// spatial proximity coincide (best case for x-sort, used in ablations).
pub fn diagonal<R: Rng>(rng: &mut R, universe: &Rect, n: usize, width: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let t: f64 = rng.gen();
            let jitter: f64 = rng.gen_range(-width / 2.0..=width / 2.0);
            Point::new(
                universe.min_x + t * universe.width(),
                (universe.min_y + t * universe.height() + jitter)
                    .clamp(universe.min_y, universe.max_y),
            )
        })
        .collect()
}

/// Converts points into the `(Rect, ItemId)` pairs the index consumes.
pub fn as_items(points: &[Point]) -> Vec<(Rect, rtree_index::ItemId)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (Rect::from_point(p), rtree_index::ItemId(i as u64)))
        .collect()
}

/// Box–Muller Gaussian with mean 0.
struct Gaussian {
    sigma: f64,
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        self.sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_UNIVERSE;

    #[test]
    fn uniform_points_inside_universe() {
        let mut rng = crate::rng(1);
        let pts = uniform(&mut rng, &PAPER_UNIVERSE, 500);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|&p| PAPER_UNIVERSE.contains_point(p)));
    }

    #[test]
    fn uniform_is_deterministic_by_seed() {
        let a = uniform(&mut crate::rng(42), &PAPER_UNIVERSE, 50);
        let b = uniform(&mut crate::rng(42), &PAPER_UNIVERSE, 50);
        let c = uniform(&mut crate::rng(43), &PAPER_UNIVERSE, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_points_inside_and_clumped() {
        let mut rng = crate::rng(2);
        let pts = clustered(&mut rng, &PAPER_UNIVERSE, 1000, 5, 20.0);
        assert!(pts.iter().all(|&p| PAPER_UNIVERSE.contains_point(p)));
        // Clumpiness: mean nearest-neighbour distance well below uniform's.
        let mnn = |pts: &[Point]| {
            pts.iter()
                .map(|p| {
                    pts.iter()
                        .filter(|q| *q != p)
                        .map(|q| p.distance(*q))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        let uni = uniform(&mut rng, &PAPER_UNIVERSE, 1000);
        assert!(mnn(&pts) < mnn(&uni) * 0.8);
    }

    #[test]
    fn grid_shape() {
        let pts = grid(&PAPER_UNIVERSE, 10, 5);
        assert_eq!(pts.len(), 50);
        let m = Rect::mbr_of_points(pts.iter().copied()).unwrap();
        assert!(PAPER_UNIVERSE.covers(&m));
    }

    #[test]
    fn skewed_mass_near_origin() {
        let mut rng = crate::rng(3);
        let pts = skewed(&mut rng, &PAPER_UNIVERSE, 2000, 3.0);
        let near = pts.iter().filter(|p| p.x < 250.0 && p.y < 250.0).count();
        // With alpha=3, P(x < 1/4 scale) = (1/4)^(1/3) ≈ 0.63 per axis.
        assert!(near > 2000 / 4, "only {near} points in the hot corner");
    }

    #[test]
    fn diagonal_band() {
        let mut rng = crate::rng(4);
        let pts = diagonal(&mut rng, &PAPER_UNIVERSE, 300, 50.0);
        for p in &pts {
            let expected_y = p.x; // square universe: diagonal is y = x
            assert!((p.y - expected_y).abs() <= 25.0 + 1e-9);
        }
    }

    #[test]
    fn as_items_assigns_sequential_ids() {
        let pts = grid(&PAPER_UNIVERSE, 3, 3);
        let items = as_items(&pts);
        assert_eq!(items.len(), 9);
        assert_eq!(items[4].1, rtree_index::ItemId(4));
        assert_eq!(items[4].0, Rect::from_point(pts[4]));
    }
}
