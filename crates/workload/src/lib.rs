//! Workload generators for the packed R-tree experiments.
//!
//! Provides the paper's experimental workload (§3.5: uniformly random
//! points in `[0,1000]²`, point-containment queries) plus the richer
//! distributions used by the extension experiments, and a synthetic
//! US-like map (cities, states, lakes, highways, time zones) standing in
//! for the paper's digitized pictures (Figures 2.1, 2.2, 3.1, 3.2, 3.8).
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod points;
pub mod queries;
pub mod rects;
pub mod segments;
pub mod usmap;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's universe: points drawn from `[0, 1000]²` (§3.5).
pub const PAPER_UNIVERSE: rtree_geom::Rect = rtree_geom::Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 1000.0,
    max_y: 1000.0,
};

/// The `J` column of Table 1: the numbers of data objects the paper
/// sweeps.
pub const PAPER_J_VALUES: [usize; 17] = [
    10, 25, 50, 75, 100, 125, 150, 175, 200, 250, 300, 400, 500, 600, 700, 800, 900,
];

/// Creates the deterministic RNG used throughout the harness.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
