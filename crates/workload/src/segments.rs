//! Segment (highway) generators.

use rand::Rng;
use rtree_geom::{Point, Segment};

/// A polyline random walk of `hops` segments starting at `start`, with
/// step length uniform in `[min_step, max_step]` and bounded turning —
/// a synthetic highway (§2.1's `highways` relation stores one tuple per
/// section).
pub fn highway<R: Rng>(
    rng: &mut R,
    start: Point,
    hops: usize,
    min_step: f64,
    max_step: f64,
) -> Vec<Segment> {
    assert!(min_step > 0.0 && min_step <= max_step);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut at = start;
    let mut out = Vec::with_capacity(hops);
    for _ in 0..hops {
        heading += rng.gen_range(-0.5..0.5);
        let step = rng.gen_range(min_step..=max_step);
        let next = Point::new(at.x + step * heading.cos(), at.y + step * heading.sin());
        out.push(Segment::new(at, next));
        at = next;
    }
    out
}

/// `n` independent random segments with endpoints uniform in `universe`.
pub fn uniform<R: Rng>(rng: &mut R, universe: &rtree_geom::Rect, n: usize) -> Vec<Segment> {
    (0..n)
        .map(|_| {
            let a = Point::new(
                rng.gen_range(universe.min_x..=universe.max_x),
                rng.gen_range(universe.min_y..=universe.max_y),
            );
            let b = Point::new(
                rng.gen_range(universe.min_x..=universe.max_x),
                rng.gen_range(universe.min_y..=universe.max_y),
            );
            Segment::new(a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_UNIVERSE;

    #[test]
    fn highway_is_connected() {
        let mut rng = crate::rng(6);
        let hw = highway(&mut rng, Point::new(500.0, 500.0), 30, 5.0, 20.0);
        assert_eq!(hw.len(), 30);
        for w in hw.windows(2) {
            assert_eq!(w[0].b, w[1].a, "polyline must be connected");
        }
        for s in &hw {
            let len = s.length();
            assert!((5.0..=20.0 + 1e-9).contains(&len));
        }
    }

    #[test]
    fn uniform_segments_inside() {
        let mut rng = crate::rng(7);
        let segs = uniform(&mut rng, &PAPER_UNIVERSE, 100);
        assert_eq!(segs.len(), 100);
        for s in &segs {
            assert!(PAPER_UNIVERSE.contains_point(s.a) && PAPER_UNIVERSE.contains_point(s.b));
        }
    }
}
