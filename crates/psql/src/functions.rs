//! Pictorial functions — the abstract-data-type operations of §2.1.
//!
//! "Pictorial domains also have functions defined on them which compute
//! some simple or aggregate attribute. A simple function for a region
//! object is **area** … any attempt to include all useful ones … would be
//! pointless. Instead, the language must have capabilities for
//! user-defined (application-defined) extensions." — [`FunctionRegistry`]
//! provides exactly that: the built-ins below plus
//! [`register`](FunctionRegistry::register) for application extensions.

use crate::error::PsqlError;
use pictorial_relational::Value;
use rtree_geom::{Rect, SpatialObject};
use std::collections::HashMap;

/// A pictorial function: object in, alphanumeric value out.
pub type PictorialFn = fn(&SpatialObject) -> Value;

/// An aggregate pictorial function: a *set* of objects in, one value out
/// — the paper's "aggregate function on a set of highway segments is
/// **northest** which finds the northest coordinates of any point in a
/// highway" (§2.1).
pub type AggregateFn = fn(&[SpatialObject]) -> Value;

/// Registry of pictorial functions callable from PSQL's `select` and
/// `where` clauses.
pub struct FunctionRegistry {
    functions: HashMap<String, PictorialFn>,
    aggregates: HashMap<String, AggregateFn>,
}

impl FunctionRegistry {
    /// Registry with the built-ins: `area`, `perimeter`, `class`, `x`,
    /// `y`, `northest` (the paper's example aggregate, here the
    /// northernmost extent of the object).
    pub fn with_builtins() -> Self {
        let mut reg = FunctionRegistry {
            functions: HashMap::new(),
            aggregates: HashMap::new(),
        };
        reg.register("area", |o| Value::Float(o.area()));
        reg.register("perimeter", |o| match o {
            SpatialObject::Region(r) => Value::Float(r.perimeter()),
            SpatialObject::Segment(s) => Value::Float(s.length()),
            SpatialObject::Point(_) => Value::Float(0.0),
        });
        reg.register("class", |o| Value::str(o.class()));
        reg.register("x", |o| Value::Float(o.representative().x));
        reg.register("y", |o| Value::Float(o.representative().y));
        reg.register("northest", |o| Value::Float(o.mbr().max_y));
        // Aggregates over object sets (§2.1's northest and friends).
        reg.register_aggregate("northest-of", |objs| {
            agg_mbr(objs).map_or(Value::Null, |m| Value::Float(m.max_y))
        });
        reg.register_aggregate("southest-of", |objs| {
            agg_mbr(objs).map_or(Value::Null, |m| Value::Float(m.min_y))
        });
        reg.register_aggregate("eastest-of", |objs| {
            agg_mbr(objs).map_or(Value::Null, |m| Value::Float(m.max_x))
        });
        reg.register_aggregate("westest-of", |objs| {
            agg_mbr(objs).map_or(Value::Null, |m| Value::Float(m.min_x))
        });
        reg.register_aggregate("count-of", |objs| Value::Int(objs.len() as i64));
        reg.register_aggregate("extent-of", |objs| {
            agg_mbr(objs).map_or(Value::Null, |m| Value::Float(m.area()))
        });
        reg.register_aggregate("total-area-of", |objs| {
            Value::Float(objs.iter().map(SpatialObject::area).sum())
        });
        reg
    }

    /// Registers (or replaces) a function.
    pub fn register(&mut self, name: &str, f: PictorialFn) {
        self.functions.insert(name.to_owned(), f);
    }

    /// Registers (or replaces) an aggregate function.
    pub fn register_aggregate(&mut self, name: &str, f: AggregateFn) {
        self.aggregates.insert(name.to_owned(), f);
    }

    /// Applies aggregate `name` to a set of objects.
    pub fn apply_aggregate(
        &self,
        name: &str,
        objects: &[SpatialObject],
    ) -> Result<Value, PsqlError> {
        let f = self
            .aggregates
            .get(name)
            .ok_or_else(|| PsqlError::Semantic(format!("no aggregate function {name:?}")))?;
        Ok(f(objects))
    }

    /// `true` if `name` is a registered aggregate.
    pub fn is_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(name)
    }

    /// Applies `name` to an object.
    pub fn apply(&self, name: &str, object: &SpatialObject) -> Result<Value, PsqlError> {
        let f = self
            .functions
            .get(name)
            .ok_or_else(|| PsqlError::Semantic(format!("no pictorial function {name:?}")))?;
        Ok(f(object))
    }

    /// `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

/// MBR of a set of objects, `None` when empty.
fn agg_mbr(objects: &[SpatialObject]) -> Option<Rect> {
    Rect::mbr_of_rects(objects.iter().map(SpatialObject::mbr))
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.functions.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "FunctionRegistry({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::{Point, Rect, Region, Segment};

    #[test]
    fn builtin_area_and_class() {
        let reg = FunctionRegistry::with_builtins();
        let region = SpatialObject::Region(Region::rectangle(Rect::new(0.0, 0.0, 4.0, 3.0)));
        assert_eq!(reg.apply("area", &region).unwrap(), Value::Float(12.0));
        assert_eq!(reg.apply("class", &region).unwrap(), Value::str("region"));
        let point = SpatialObject::Point(Point::new(1.0, 2.0));
        assert_eq!(reg.apply("area", &point).unwrap(), Value::Float(0.0));
        assert_eq!(reg.apply("y", &point).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn perimeter_per_class() {
        let reg = FunctionRegistry::with_builtins();
        let seg = SpatialObject::Segment(Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0)));
        assert_eq!(reg.apply("perimeter", &seg).unwrap(), Value::Float(5.0));
    }

    #[test]
    fn northest() {
        let reg = FunctionRegistry::with_builtins();
        let seg = SpatialObject::Segment(Segment::new(Point::new(0.0, 7.0), Point::new(3.0, 4.0)));
        assert_eq!(reg.apply("northest", &seg).unwrap(), Value::Float(7.0));
    }

    #[test]
    fn user_defined_extension() {
        let mut reg = FunctionRegistry::with_builtins();
        reg.register("width", |o| Value::Float(o.mbr().width()));
        let region = SpatialObject::Region(Region::rectangle(Rect::new(0.0, 0.0, 4.0, 3.0)));
        assert_eq!(reg.apply("width", &region).unwrap(), Value::Float(4.0));
    }

    #[test]
    fn aggregates() {
        let reg = FunctionRegistry::with_builtins();
        let objs = vec![
            SpatialObject::Segment(Segment::new(Point::new(0.0, 1.0), Point::new(4.0, 7.0))),
            SpatialObject::Segment(Segment::new(Point::new(4.0, 7.0), Point::new(9.0, 3.0))),
        ];
        assert_eq!(
            reg.apply_aggregate("northest-of", &objs).unwrap(),
            Value::Float(7.0)
        );
        assert_eq!(
            reg.apply_aggregate("westest-of", &objs).unwrap(),
            Value::Float(0.0)
        );
        assert_eq!(
            reg.apply_aggregate("count-of", &objs).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            reg.apply_aggregate("northest-of", &[]).unwrap(),
            Value::Null
        );
        assert!(reg.is_aggregate("northest-of"));
        assert!(!reg.is_aggregate("area"));
        assert!(reg.apply_aggregate("nope", &objs).is_err());
    }

    #[test]
    fn unknown_function_errors() {
        let reg = FunctionRegistry::with_builtins();
        let point = SpatialObject::Point(Point::ORIGIN);
        assert!(reg.apply("frobnicate", &point).is_err());
        assert!(reg.contains("area"));
        assert!(!reg.contains("frobnicate"));
    }
}
