//! The pictorial database: pictures + relations + their associations.
//!
//! Realizes Figure 1.1's integrated architecture: the alphanumeric
//! processor is a [`Catalog`] of relations with B+tree indexes, the
//! pictorial processor a set of [`Picture`]s with packed R-trees, and the
//! association between them is the `loc` pointer column (§2.1) plus the
//! *backward* map from objects to tuples maintained here.

use crate::error::PsqlError;
use crate::picture::Picture;
use pictorial_relational::{Catalog, ColumnType, Schema, TupleId, Value};
use rtree_geom::{Rect, SpatialObject};
use rtree_index::RTreeConfig;
use std::collections::HashMap;

/// The integrated pictorial + alphanumeric database PSQL runs against.
///
/// The read path (planning + execution of `select` mappings) takes
/// `&self` only and uses no interior mutability, so a shared database is
/// `Sync`-safe to query from many threads at once; mutation requires
/// `&mut self`. The concurrent query service exploits this by cloning the
/// database (`Clone` is a deep copy), mutating the copy, and publishing
/// it as a fresh immutable snapshot.
#[derive(Debug, Clone)]
pub struct PictorialDatabase {
    catalog: Catalog,
    pictures: HashMap<String, Picture>,
    /// `(relation, loc-column) → picture` association.
    associations: HashMap<(String, String), String>,
    /// `(relation, loc-column) → object id → tuples` backward pointers.
    backlinks: HashMap<(String, String), HashMap<u64, Vec<TupleId>>>,
    /// Named location constants usable in `at`-clauses (§2.2: "a name of
    /// a location predefined outside the retrieve mapping").
    locations: HashMap<String, Rect>,
    config: RTreeConfig,
}

impl PictorialDatabase {
    /// Creates an empty database whose pictures index with `config`.
    pub fn new(config: RTreeConfig) -> Self {
        PictorialDatabase {
            catalog: Catalog::new(),
            pictures: HashMap::new(),
            associations: HashMap::new(),
            backlinks: HashMap::new(),
            locations: HashMap::new(),
            config,
        }
    }

    /// The alphanumeric catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (for creating relations and indexes).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Creates a picture.
    pub fn create_picture(&mut self, name: &str, frame: Rect) -> Result<(), PsqlError> {
        if self.pictures.contains_key(name) {
            return Err(PsqlError::Semantic(format!(
                "picture {name:?} already exists"
            )));
        }
        self.pictures
            .insert(name.to_owned(), Picture::new(name, frame, self.config));
        Ok(())
    }

    /// Borrows a picture.
    pub fn picture(&self, name: &str) -> Result<&Picture, PsqlError> {
        self.pictures
            .get(name)
            .ok_or_else(|| PsqlError::Semantic(format!("no such picture {name:?}")))
    }

    /// Mutable picture access.
    pub fn picture_mut(&mut self, name: &str) -> Result<&mut Picture, PsqlError> {
        self.pictures
            .get_mut(name)
            .ok_or_else(|| PsqlError::Semantic(format!("no such picture {name:?}")))
    }

    /// Adds an object to a picture, returning the pointer value for `loc`
    /// columns.
    pub fn add_object(
        &mut self,
        picture: &str,
        object: SpatialObject,
        label: &str,
    ) -> Result<u64, PsqlError> {
        Ok(self.picture_mut(picture)?.add(object, label))
    }

    /// Declares that `relation.column` points into `picture` — one
    /// association per picture a relation is tied to ("a pictorial
    /// relation could be associated with more than one picture", §2.1).
    pub fn associate(
        &mut self,
        relation: &str,
        column: &str,
        picture: &str,
    ) -> Result<(), PsqlError> {
        let rel = self.catalog.relation(relation)?;
        match rel.schema().column(column) {
            Some(c) if c.ty == ColumnType::Pointer => {}
            Some(_) => {
                return Err(PsqlError::Semantic(format!(
                    "{relation}.{column} is not a pointer column"
                )))
            }
            None => {
                return Err(PsqlError::Semantic(format!(
                    "no column {column:?} in {relation:?}"
                )))
            }
        }
        self.picture(picture)?;
        self.associations
            .insert((relation.to_owned(), column.to_owned()), picture.to_owned());
        // Backfill backward pointers for tuples inserted before the
        // association was declared, so association order doesn't matter.
        let col_idx = self
            .catalog
            .relation(relation)?
            .schema()
            .index_of(column)
            .ok_or_else(|| {
                PsqlError::Internal(format!("column {column:?} vanished from {relation:?}"))
            })?;
        let mut map: HashMap<u64, Vec<TupleId>> = HashMap::new();
        for (tid, tuple) in self.catalog.relation(relation)?.scan() {
            if let Some(obj) = tuple[col_idx].as_pointer() {
                map.entry(obj).or_default().push(tid);
            }
        }
        self.backlinks
            .insert((relation.to_owned(), column.to_owned()), map);
        Ok(())
    }

    /// The picture `relation.column` points into.
    pub fn association(&self, relation: &str, column: &str) -> Option<&str> {
        self.associations
            .get(&(relation.to_owned(), column.to_owned()))
            .map(String::as_str)
    }

    /// The `loc` (pointer) columns of a relation, with their pictures.
    pub fn loc_columns(&self, relation: &str) -> Vec<(String, String)> {
        self.associations
            .iter()
            .filter(|((r, _), _)| r == relation)
            .map(|((_, c), p)| (c.clone(), p.clone()))
            .collect()
    }

    /// Inserts a tuple, maintaining indexes and object→tuple backlinks
    /// for every associated pointer column.
    pub fn insert(&mut self, relation: &str, tuple: Vec<Value>) -> Result<TupleId, PsqlError> {
        let schema = self.catalog.relation(relation)?.schema().clone();
        let tid = self.catalog.insert(relation, tuple.clone())?;
        for (i, col) in schema.columns().iter().enumerate() {
            if col.ty == ColumnType::Pointer {
                if let Some(obj) = tuple[i].as_pointer() {
                    let key = (relation.to_owned(), col.name.clone());
                    if self.associations.contains_key(&key) {
                        self.backlinks
                            .entry(key)
                            .or_default()
                            .entry(obj)
                            .or_default()
                            .push(tid);
                    }
                }
            }
        }
        Ok(tid)
    }

    /// Deletes a tuple, maintaining indexes and backlinks.
    pub fn delete(&mut self, relation: &str, tid: TupleId) -> Result<Vec<Value>, PsqlError> {
        let schema = self.catalog.relation(relation)?.schema().clone();
        let tuple = self.catalog.delete(relation, tid)?;
        for (i, col) in schema.columns().iter().enumerate() {
            if col.ty == ColumnType::Pointer {
                if let Some(obj) = tuple[i].as_pointer() {
                    let key = (relation.to_owned(), col.name.clone());
                    if let Some(map) = self.backlinks.get_mut(&key) {
                        if let Some(list) = map.get_mut(&obj) {
                            list.retain(|&t| t != tid);
                        }
                    }
                }
            }
        }
        Ok(tuple)
    }

    /// Tuples whose `relation.column` pointer equals `object` — the
    /// forward direct search of §2.1 ("the identifier's value … is used
    /// to select the relation's tuples … when it retrieves using the
    /// picture").
    pub fn tuples_of_object(&self, relation: &str, column: &str, object: u64) -> &[TupleId] {
        self.backlinks
            .get(&(relation.to_owned(), column.to_owned()))
            .and_then(|m| m.get(&object))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Defines (or replaces) a named location constant for `at`-clauses:
    /// `at loc covered-by eastern-us` resolves `eastern-us` through this
    /// registry.
    pub fn define_location(&mut self, name: &str, window: Rect) {
        self.locations.insert(name.to_owned(), window);
    }

    /// Looks up a named location.
    pub fn location(&self, name: &str) -> Option<Rect> {
        self.locations.get(name).copied()
    }

    /// Re-packs every picture's R-tree (done once after bulk loading).
    pub fn pack_all(&mut self) {
        for pic in self.pictures.values_mut() {
            pic.pack();
        }
    }

    /// Re-packs every picture through the **out-of-core** external
    /// packer (`rtree-extpack`) under a shared per-picture memory
    /// budget — the `PACK EXTERNAL` admin path. Bit-identical trees to
    /// [`pack_all`](Self::pack_all), but peak resident buffer memory per
    /// picture is bounded by `memory_budget_bytes` rather than by the
    /// largest picture. `threads` sizes the packer's pipeline (0 =
    /// machine default) without affecting the trees. Returns the summed
    /// packer stats.
    pub fn pack_external_all(
        &mut self,
        memory_budget_bytes: u64,
        threads: usize,
    ) -> Result<rtree_extpack::ExtPackStats, PsqlError> {
        let mut total = rtree_extpack::ExtPackStats::default();
        for pic in self.pictures.values_mut() {
            let s = pic
                .pack_external(memory_budget_bytes, threads)
                .map_err(|e| PsqlError::Internal(format!("external pack failed: {e}")))?;
            total.items += s.items;
            total.initial_runs += s.initial_runs;
            total.run_capacity_records = total.run_capacity_records.max(s.run_capacity_records);
            total.spill_pages += s.spill_pages;
            total.spill_bytes += s.spill_bytes;
            total.intermediate_merges += s.intermediate_merges;
            total.max_fan_in = total.max_fan_in.max(s.max_fan_in);
            total.levels = total.levels.max(s.levels);
            total.node_pages += s.node_pages;
            total.peak_budget_bytes = total.peak_budget_bytes.max(s.peak_budget_bytes);
            total.slab_buffer_bytes = total.slab_buffer_bytes.max(s.slab_buffer_bytes);
            total.threads_used = total.threads_used.max(s.threads_used);
            total.merge_partitions = total.merge_partitions.max(s.merge_partitions);
            total.produce_us += s.produce_us;
            total.sort_us += s.sort_us;
            total.spill_us += s.spill_us;
            total.merge_us += s.merge_us;
            total.emit_us += s.emit_us;
        }
        Ok(total)
    }

    /// Folds every nonempty delta tree back into a freshly packed +
    /// frozen main tree, leaving untouched pictures alone. Returns the
    /// number of pictures merged. This is what the server's background
    /// merge thread runs on a snapshot clone before publishing it.
    pub fn merge_deltas(&mut self) -> usize {
        let mut merged = 0;
        for pic in self.pictures.values_mut() {
            if pic.needs_merge() {
                pic.pack();
                merged += 1;
            }
        }
        merged
    }

    /// Total objects buffered in delta trees across all pictures.
    pub fn delta_len(&self) -> usize {
        self.pictures.values().map(|p| p.delta_len()).sum()
    }

    /// `true` while no packed picture has lost its frozen compilation to
    /// a dynamic write — the invariant the write path restores: inserts
    /// buffer in delta trees and the frozen main tree keeps serving.
    /// (Never-packed pictures don't count against this.)
    pub fn frozen_intact(&self) -> bool {
        self.pictures
            .values()
            .filter(|p| p.packed_len() > 0)
            .all(|p| p.frozen().is_some())
    }

    /// Builds the synthetic US database of `rtree-workload`: pictures
    /// `us-map`, `state-map`, `time-zone-map`, `lake-map`, `highway-map`
    /// and relations `cities`, `states`, `time-zones`, `lakes`,
    /// `highways`, all packed — the standing example of §2.
    pub fn with_us_map() -> Self {
        use rtree_workload::usmap;

        let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
        let frame = usmap::FRAME;
        for pic in [
            "us-map",
            "state-map",
            "time-zone-map",
            "lake-map",
            "highway-map",
        ] {
            db.create_picture(pic, frame).expect("fresh picture");
        }

        let mk = |cols: &[(&str, ColumnType)]| {
            Schema::new(
                cols.iter()
                    .map(|&(n, t)| pictorial_relational::Column::new(n, t))
                    .collect(),
            )
            .expect("valid schema")
        };

        // cities(city, state, population, loc) on us-map.
        db.catalog_mut()
            .create_relation(
                "cities",
                mk(&[
                    ("city", ColumnType::Str),
                    ("state", ColumnType::Str),
                    ("population", ColumnType::Int),
                    ("loc", ColumnType::Pointer),
                ]),
            )
            .expect("fresh relation");
        db.associate("cities", "loc", "us-map").expect("assoc");
        for c in usmap::cities() {
            let obj = db
                .add_object("us-map", SpatialObject::Point(c.location), c.name)
                .expect("picture exists");
            db.insert(
                "cities",
                vec![
                    c.name.into(),
                    c.state.into(),
                    c.population.into(),
                    Value::Pointer(obj),
                ],
            )
            .expect("valid tuple");
        }
        db.catalog_mut()
            .create_index("cities", "population")
            .expect("index");

        // states(state, population-density, loc) on state-map.
        db.catalog_mut()
            .create_relation(
                "states",
                mk(&[
                    ("state", ColumnType::Str),
                    ("population-density", ColumnType::Float),
                    ("loc", ColumnType::Pointer),
                ]),
            )
            .expect("fresh relation");
        db.associate("states", "loc", "state-map").expect("assoc");
        for (i, s) in usmap::states().into_iter().enumerate() {
            let density = 20.0 + (i as f64 * 13.7) % 90.0; // synthetic
            let obj = db
                .add_object("state-map", SpatialObject::Region(s.region.clone()), s.name)
                .expect("picture exists");
            db.insert(
                "states",
                vec![s.name.into(), density.into(), Value::Pointer(obj)],
            )
            .expect("valid tuple");
        }

        // time-zones(zone, hour-diff, loc) on time-zone-map.
        db.catalog_mut()
            .create_relation(
                "time-zones",
                mk(&[
                    ("zone", ColumnType::Str),
                    ("hour-diff", ColumnType::Int),
                    ("loc", ColumnType::Pointer),
                ]),
            )
            .expect("fresh relation");
        db.associate("time-zones", "loc", "time-zone-map")
            .expect("assoc");
        for (name, hour_diff, region) in usmap::time_zones() {
            let obj = db
                .add_object("time-zone-map", SpatialObject::Region(region), name)
                .expect("picture exists");
            db.insert(
                "time-zones",
                vec![name.into(), hour_diff.into(), Value::Pointer(obj)],
            )
            .expect("valid tuple");
        }

        // lakes(lake, area, volume, loc) on lake-map.
        db.catalog_mut()
            .create_relation(
                "lakes",
                mk(&[
                    ("lake", ColumnType::Str),
                    ("area", ColumnType::Float),
                    ("volume", ColumnType::Float),
                    ("loc", ColumnType::Pointer),
                ]),
            )
            .expect("fresh relation");
        db.associate("lakes", "loc", "lake-map").expect("assoc");
        for (name, area, volume, region) in usmap::lakes() {
            let obj = db
                .add_object("lake-map", SpatialObject::Region(region), name)
                .expect("picture exists");
            db.insert(
                "lakes",
                vec![name.into(), area.into(), volume.into(), Value::Pointer(obj)],
            )
            .expect("valid tuple");
        }

        // highways(hwy-name, hwy-section, loc) on highway-map.
        db.catalog_mut()
            .create_relation(
                "highways",
                mk(&[
                    ("hwy-name", ColumnType::Str),
                    ("hwy-section", ColumnType::Int),
                    ("loc", ColumnType::Pointer),
                ]),
            )
            .expect("fresh relation");
        db.associate("highways", "loc", "highway-map")
            .expect("assoc");
        for h in usmap::highways() {
            let label = format!("{}#{}", h.highway, h.section);
            let obj = db
                .add_object("highway-map", SpatialObject::Segment(h.segment), &label)
                .expect("picture exists");
            db.insert(
                "highways",
                vec![
                    h.highway.into(),
                    (h.section as i64).into(),
                    Value::Pointer(obj),
                ],
            )
            .expect("valid tuple");
        }

        db.pack_all();
        // The Figure 2.1 window as a predefined location (§2.2).
        db.define_location("eastern-us", usmap::EASTERN_WINDOW);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;

    #[test]
    fn us_map_loads() {
        let db = PictorialDatabase::with_us_map();
        assert_eq!(db.catalog().relation("cities").unwrap().len(), 42);
        assert_eq!(db.picture("us-map").unwrap().len(), 42);
        assert_eq!(db.picture("time-zone-map").unwrap().len(), 4);
        assert_eq!(db.association("cities", "loc"), Some("us-map"));
        db.picture("us-map")
            .unwrap()
            .tree()
            .validate_with(false)
            .unwrap();
        // pack_all freezes every picture, so the query hot path serves
        // from the contiguous arena.
        for pic in ["us-map", "state-map", "time-zone-map", "lake-map"] {
            assert!(db.picture(pic).unwrap().frozen().is_some(), "{pic}");
        }
    }

    #[test]
    fn backlinks_resolve_objects_to_tuples() {
        let db = PictorialDatabase::with_us_map();
        let pic = db.picture("us-map").unwrap();
        // Find the object labelled "Boston" and map it back to a tuple.
        let boston = pic
            .object_ids()
            .find(|&id| pic.label(id) == Some("Boston"))
            .unwrap();
        let tids = db.tuples_of_object("cities", "loc", boston);
        assert_eq!(tids.len(), 1);
        let tuple = db
            .catalog()
            .relation("cities")
            .unwrap()
            .get(tids[0])
            .unwrap();
        assert_eq!(tuple[0], Value::str("Boston"));
    }

    #[test]
    fn delete_clears_backlink() {
        let mut db = PictorialDatabase::with_us_map();
        let pic = db.picture("us-map").unwrap();
        let boston = pic
            .object_ids()
            .find(|&id| pic.label(id) == Some("Boston"))
            .unwrap();
        let tid = db.tuples_of_object("cities", "loc", boston)[0];
        db.delete("cities", tid).unwrap();
        assert!(db.tuples_of_object("cities", "loc", boston).is_empty());
    }

    #[test]
    fn associate_after_insert_backfills_backlinks() {
        // Tuples inserted before associate() must still be reachable
        // through the picture.
        let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
        db.create_picture("pic", Rect::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        db.catalog_mut()
            .create_relation(
                "things",
                pictorial_relational::Schema::new(vec![
                    pictorial_relational::Column::new("name", ColumnType::Str),
                    pictorial_relational::Column::new("loc", ColumnType::Pointer),
                ])
                .unwrap(),
            )
            .unwrap();
        let obj = db
            .add_object("pic", SpatialObject::Point(Point::new(1.0, 1.0)), "a")
            .unwrap();
        // Insert BEFORE associating.
        let tid = db
            .insert("things", vec!["a".into(), Value::Pointer(obj)])
            .unwrap();
        assert!(db.tuples_of_object("things", "loc", obj).is_empty());
        db.associate("things", "loc", "pic").unwrap();
        assert_eq!(db.tuples_of_object("things", "loc", obj), &[tid]);
    }

    #[test]
    fn associate_rejects_non_pointer_column() {
        let mut db = PictorialDatabase::with_us_map();
        assert!(db.associate("cities", "population", "us-map").is_err());
        assert!(db.associate("cities", "nope", "us-map").is_err());
        assert!(db.associate("cities", "loc", "no-map").is_err());
    }

    #[test]
    fn duplicate_picture_rejected() {
        let mut db = PictorialDatabase::with_us_map();
        assert!(db
            .create_picture("us-map", Rect::new(0.0, 0.0, 1.0, 1.0))
            .is_err());
    }

    #[test]
    fn pack_external_all_matches_pack_all() {
        let mut a = PictorialDatabase::with_us_map(); // pack_all'd
        let mut b = a.clone();
        a.pack_all();
        let stats = b.pack_external_all(64 * 1024, 2).expect("external pack");
        let pics = [
            "us-map",
            "state-map",
            "time-zone-map",
            "lake-map",
            "highway-map",
        ];
        let expected: u64 = pics
            .iter()
            .map(|p| b.picture(p).unwrap().len() as u64)
            .sum();
        assert_eq!(stats.items, expected, "all pictures packed");
        for pic in pics {
            assert_eq!(
                a.picture(pic).unwrap().tree(),
                b.picture(pic).unwrap().tree(),
                "{pic} diverged"
            );
            assert!(b.picture(pic).unwrap().frozen().is_some(), "{pic}");
        }
        assert!(b.frozen_intact());
    }

    #[test]
    fn dynamic_object_and_tuple_insert() {
        let mut db = PictorialDatabase::with_us_map();
        let obj = db
            .add_object(
                "us-map",
                SpatialObject::Point(Point::new(50.0, 25.0)),
                "Springfield",
            )
            .unwrap();
        let tid = db
            .insert(
                "cities",
                vec![
                    "Springfield".into(),
                    "IL".into(),
                    600_000i64.into(),
                    Value::Pointer(obj),
                ],
            )
            .unwrap();
        assert_eq!(db.tuples_of_object("cities", "loc", obj), &[tid]);
        assert_eq!(db.catalog().relation("cities").unwrap().len(), 43);
    }
}
