//! Query planning: from AST to an executable plan.
//!
//! PSQL queries "are preprocessed and translated into ordinary SQL
//! entries" plus spatial-operator calls (§2.2); this module is that
//! preprocessor. It resolves names, picks the access path (direct
//! spatial search through a picture's R-tree, a B+tree index range, or a
//! scan), and classifies the `at`-clause into window search,
//! juxtaposition, or a nested mapping.

use crate::ast::{
    AtClause, ColumnRef, Expr, LocTerm, NearestClause, Operand, OrderBy, Query, SelectItem,
};
use crate::database::PictorialDatabase;
use crate::error::PsqlError;
use crate::spatial::SpatialOp;
use pictorial_relational::{ColumnType, CompareOp, Value};
use rtree_geom::{Point, Rect};

/// A resolved column: which `from`-relation, which column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedColumn {
    /// Index into [`Plan::relations`].
    pub rel: usize,
    /// Column index within that relation's schema.
    pub col: usize,
}

/// How the driving relation's tuples are obtained when no spatial
/// strategy applies.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan all tuples.
    FullScan,
    /// B+tree index range on an alphanumeric column.
    IndexRange {
        /// Indexed column name.
        column: String,
        /// Inclusive lower bound.
        lo: Option<Value>,
        /// Inclusive upper bound.
        hi: Option<Value>,
    },
}

/// The spatial part of the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialStrategy {
    /// No `at`-clause.
    None,
    /// Direct spatial search: relation 0's objects against a constant
    /// window, through the picture's packed R-tree.
    Window {
        /// The `loc` column driving the search.
        column: ResolvedColumn,
        /// Picture whose R-tree is searched.
        picture: String,
        /// Spatial operator.
        op: SpatialOp,
        /// The window.
        window: Rect,
    },
    /// Nested mapping: relation 0's objects against each location
    /// produced by an inner query.
    Nested {
        /// The outer `loc` column.
        column: ResolvedColumn,
        /// Outer picture.
        picture: String,
        /// Spatial operator.
        op: SpatialOp,
        /// Plan of the inner query.
        inner: Box<Plan>,
    },
    /// k-nearest-neighbour search: relation 0's objects ranked by
    /// distance from a query point, through the picture's R-tree
    /// (branch-and-bound best-first descent).
    Nearest {
        /// The `loc` column driving the search.
        column: ResolvedColumn,
        /// Picture whose R-tree is searched.
        picture: String,
        /// Number of neighbours.
        k: usize,
        /// The query point.
        point: Point,
    },
    /// Juxtaposition of relations 0 and 1 through both pictures' R-trees.
    Juxtapose {
        /// Left `loc` column (relation 0).
        left: ResolvedColumn,
        /// Left picture.
        left_picture: String,
        /// Right `loc` column (relation 1).
        right: ResolvedColumn,
        /// Right picture.
        right_picture: String,
        /// Spatial operator.
        op: SpatialOp,
    },
}

/// One projected output.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// A plain column.
    Column {
        /// Resolved source.
        source: ResolvedColumn,
        /// Output name.
        name: String,
    },
    /// A pictorial function over a `loc` column.
    Function {
        /// Function name.
        function: String,
        /// Resolved `loc` argument.
        arg: ResolvedColumn,
        /// Output name, e.g. `area(loc)`.
        name: String,
    },
}

/// An executable PSQL plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The `from` relations (1 or 2).
    pub relations: Vec<String>,
    /// Access path for relation 0 when `spatial` is `None`.
    pub access: Access,
    /// The spatial strategy.
    pub spatial: SpatialStrategy,
    /// The full `where` expression, applied residually.
    pub residual: Option<Expr>,
    /// The output columns.
    pub projection: Vec<Projection>,
    /// Optional ordering (resolved column + direction).
    pub order_by: Option<(ResolvedColumn, bool)>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

impl Plan {
    /// One-line-per-operator explanation, for inspection and tests.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("from: {}\n", self.relations.join(", ")));
        match &self.spatial {
            SpatialStrategy::None => match &self.access {
                Access::FullScan => out.push_str("access: full scan\n"),
                Access::IndexRange { column, lo, hi } => out.push_str(&format!(
                    "access: b+tree index on {column} range [{}, {}]\n",
                    lo.as_ref().map(|v| v.to_string()).unwrap_or("-inf".into()),
                    hi.as_ref().map(|v| v.to_string()).unwrap_or("+inf".into()),
                )),
            },
            SpatialStrategy::Window { picture, op, window, .. } => {
                out.push_str(&format!("spatial: r-tree search on {picture} ({op} {window})\n"))
            }
            SpatialStrategy::Nested { picture, op, inner, .. } => {
                out.push_str(&format!("spatial: nested mapping on {picture} ({op})\n"));
                for line in inner.explain().lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
            SpatialStrategy::Nearest {
                picture, k, point, ..
            } => out.push_str(&format!(
                "spatial: r-tree k-nn on {picture} ({k} nearest ({}, {}))\n",
                point.x, point.y
            )),
            SpatialStrategy::Juxtapose {
                left_picture,
                right_picture,
                op,
                ..
            } => out.push_str(&format!(
                "spatial: juxtaposition {left_picture} x {right_picture} ({op}, simultaneous r-tree descent)\n"
            )),
        }
        if self.residual.is_some() {
            out.push_str("filter: residual where-clause\n");
        }
        if let Some((_, asc)) = &self.order_by {
            out.push_str(&format!(
                "sort: order by ({})\n",
                if *asc { "asc" } else { "desc" }
            ));
        }
        if let Some(n) = self.limit {
            out.push_str(&format!("limit: {n}\n"));
        }
        out.push_str(&format!("project: {} columns\n", self.projection.len()));
        out
    }
}

/// Plans a parsed query against a database.
pub fn plan(db: &PictorialDatabase, query: &Query) -> Result<Plan, PsqlError> {
    if query.from.is_empty() {
        return Err(PsqlError::Semantic("empty from-clause".into()));
    }
    if query.from.len() > 2 {
        return Err(PsqlError::Semantic(
            "at most two relations are supported in from".into(),
        ));
    }
    // Validate relations exist.
    for r in &query.from {
        db.catalog().relation(r)?;
    }
    // Validate pictures named in on exist ("nothing but the standard
    // string matching for identity is performed").
    for p in &query.on {
        db.picture(p)?;
    }

    let resolver = Resolver {
        db,
        from: &query.from,
    };

    let spatial = match (&query.at, &query.nearest) {
        (None, None) => SpatialStrategy::None,
        (Some(at), _) => plan_at(db, query, &resolver, at)?,
        (None, Some(nearest)) => plan_nearest(query, &resolver, nearest)?,
    };

    // With no spatial restriction, try a B+tree index for the where
    // clause (single relation only).
    let access = if matches!(spatial, SpatialStrategy::None) && query.from.len() == 1 {
        pick_index(db, &query.from[0], query.where_clause.as_ref())
    } else {
        Access::FullScan
    };

    // Resolve the projection.
    let mut projection = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Star => {
                for (rel_idx, rel_name) in query.from.iter().enumerate() {
                    let rel = db.catalog().relation(rel_name)?;
                    for (col_idx, col) in rel.schema().columns().iter().enumerate() {
                        let name = if query.from.len() > 1 {
                            format!("{rel_name}.{}", col.name)
                        } else {
                            col.name.clone()
                        };
                        projection.push(Projection::Column {
                            source: ResolvedColumn {
                                rel: rel_idx,
                                col: col_idx,
                            },
                            name,
                        });
                    }
                }
            }
            SelectItem::Column(cr) => {
                let source = resolver.resolve(cr)?;
                projection.push(Projection::Column {
                    source,
                    name: cr.to_string(),
                });
            }
            SelectItem::Function { name, arg } => {
                let source = resolver.resolve(arg)?;
                resolver.require_pointer(arg, source)?;
                projection.push(Projection::Function {
                    function: name.clone(),
                    arg: source,
                    name: format!("{name}({arg})"),
                });
            }
        }
    }

    // Resolve every column mentioned in where (fail early on typos).
    if let Some(expr) = &query.where_clause {
        validate_expr(&resolver, expr)?;
    }

    let order_by = match &query.order_by {
        Some(OrderBy { column, ascending }) => Some((resolver.resolve(column)?, *ascending)),
        None => None,
    };

    Ok(Plan {
        relations: query.from.clone(),
        access,
        spatial,
        residual: query.where_clause.clone(),
        projection,
        order_by,
        limit: query.limit,
    })
}

fn plan_at(
    db: &PictorialDatabase,
    query: &Query,
    resolver: &Resolver<'_>,
    at: &AtClause,
) -> Result<SpatialStrategy, PsqlError> {
    let lhs = resolver.resolve(&at.lhs)?;
    resolver.require_pointer(&at.lhs, lhs)?;
    let lhs_picture = resolver.picture_of(&at.lhs, lhs)?;
    check_on_list(query, &lhs_picture)?;

    match &at.rhs {
        LocTerm::Window(w) => {
            if lhs.rel != 0 {
                return Err(PsqlError::Semantic(
                    "window search must drive the first from-relation".into(),
                ));
            }
            if query.from.len() != 1 {
                return Err(PsqlError::Semantic(
                    "window at-clause supports a single relation".into(),
                ));
            }
            Ok(SpatialStrategy::Window {
                column: lhs,
                picture: lhs_picture,
                op: at.op,
                window: *w,
            })
        }
        LocTerm::Column(rhs_ref) => {
            // An unqualified name that is not a column of any from-relation
            // may be a predefined location constant (§2.2).
            if rhs_ref.relation.is_none() && resolver.resolve(rhs_ref).is_err() {
                if let Some(window) = db.location(&rhs_ref.column) {
                    if lhs.rel != 0 || query.from.len() != 1 {
                        return Err(PsqlError::Semantic(
                            "window search must drive a single from-relation".into(),
                        ));
                    }
                    return Ok(SpatialStrategy::Window {
                        column: lhs,
                        picture: lhs_picture,
                        op: at.op,
                        window,
                    });
                }
            }
            let rhs = resolver.resolve(rhs_ref)?;
            resolver.require_pointer(rhs_ref, rhs)?;
            if query.from.len() != 2 || lhs.rel == rhs.rel {
                return Err(PsqlError::Semantic(
                    "juxtaposition needs two distinct from-relations".into(),
                ));
            }
            let rhs_picture = resolver.picture_of(rhs_ref, rhs)?;
            check_on_list(query, &rhs_picture)?;
            // Normalize so that `left` is relation 0.
            if lhs.rel == 0 {
                Ok(SpatialStrategy::Juxtapose {
                    left: lhs,
                    left_picture: lhs_picture,
                    right: rhs,
                    right_picture: rhs_picture,
                    op: at.op,
                })
            } else {
                Ok(SpatialStrategy::Juxtapose {
                    left: rhs,
                    left_picture: rhs_picture,
                    right: lhs,
                    right_picture: lhs_picture,
                    op: at.op.flip(),
                })
            }
        }
        LocTerm::Subquery(inner_q) => {
            if query.from.len() != 1 {
                return Err(PsqlError::Semantic(
                    "nested mapping supports a single outer relation".into(),
                ));
            }
            let inner = plan(db, inner_q)?;
            // The inner projection must produce exactly one loc column.
            let loc_outputs = inner
                .projection
                .iter()
                .filter(|p| matches!(p, Projection::Column { .. }))
                .count();
            if loc_outputs != 1 || inner.projection.len() != 1 {
                return Err(PsqlError::Semantic(
                    "nested mapping must select exactly one loc column".into(),
                ));
            }
            Ok(SpatialStrategy::Nested {
                column: lhs,
                picture: lhs_picture,
                op: at.op,
                inner: Box::new(inner),
            })
        }
    }
}

fn plan_nearest(
    query: &Query,
    resolver: &Resolver<'_>,
    nearest: &NearestClause,
) -> Result<SpatialStrategy, PsqlError> {
    let lhs = resolver.resolve(&nearest.lhs)?;
    resolver.require_pointer(&nearest.lhs, lhs)?;
    let picture = resolver.picture_of(&nearest.lhs, lhs)?;
    check_on_list(query, &picture)?;
    if lhs.rel != 0 || query.from.len() != 1 {
        return Err(PsqlError::Semantic(
            "nearest search supports a single from-relation".into(),
        ));
    }
    Ok(SpatialStrategy::Nearest {
        column: lhs,
        picture,
        k: nearest.k,
        point: nearest.point,
    })
}

fn check_on_list(query: &Query, picture: &str) -> Result<(), PsqlError> {
    if !query.on.is_empty() && !query.on.iter().any(|p| p == picture) {
        return Err(PsqlError::Semantic(format!(
            "picture {picture:?} used by the at-clause is not in the on-clause"
        )));
    }
    Ok(())
}

fn pick_index(db: &PictorialDatabase, relation: &str, where_clause: Option<&Expr>) -> Access {
    // Walk the top-level AND chain for an indexed comparison.
    fn find(db: &PictorialDatabase, relation: &str, expr: &Expr) -> Option<Access> {
        match expr {
            Expr::And(a, b) => find(db, relation, a).or_else(|| find(db, relation, b)),
            Expr::Compare {
                lhs: Operand::Column(cr),
                op,
                rhs,
            } if cr.relation.as_deref().is_none_or(|r| r == relation) => {
                db.catalog().index(relation, &cr.column)?;
                let (lo, hi) = match op {
                    CompareOp::Eq => (Some(rhs.clone()), Some(rhs.clone())),
                    CompareOp::Lt | CompareOp::Le => (None, Some(rhs.clone())),
                    CompareOp::Gt | CompareOp::Ge => (Some(rhs.clone()), None),
                    CompareOp::Ne => return None,
                };
                Some(Access::IndexRange {
                    column: cr.column.clone(),
                    lo,
                    hi,
                })
            }
            _ => None,
        }
    }
    where_clause
        .and_then(|e| find(db, relation, e))
        .unwrap_or(Access::FullScan)
}

fn validate_expr(resolver: &Resolver<'_>, expr: &Expr) -> Result<(), PsqlError> {
    match expr {
        Expr::Compare { lhs, .. } => {
            match lhs {
                Operand::Column(cr) => {
                    resolver.resolve(cr)?;
                }
                Operand::Function { arg, .. } => {
                    let r = resolver.resolve(arg)?;
                    resolver.require_pointer(arg, r)?;
                }
            }
            Ok(())
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            validate_expr(resolver, a)?;
            validate_expr(resolver, b)
        }
        Expr::Not(e) => validate_expr(resolver, e),
    }
}

/// Column-name resolution over the `from` list.
pub(crate) struct Resolver<'a> {
    pub db: &'a PictorialDatabase,
    pub from: &'a [String],
}

impl Resolver<'_> {
    pub(crate) fn resolve(&self, cr: &ColumnRef) -> Result<ResolvedColumn, PsqlError> {
        match &cr.relation {
            Some(rel_name) => {
                let rel = self
                    .from
                    .iter()
                    .position(|r| r == rel_name)
                    .ok_or_else(|| {
                        PsqlError::Semantic(format!("relation {rel_name:?} not in from-clause"))
                    })?;
                let schema = self.db.catalog().relation(rel_name)?.schema().clone();
                let col = schema.index_of(&cr.column).ok_or_else(|| {
                    PsqlError::Semantic(format!("no column {} in {rel_name}", cr.column))
                })?;
                Ok(ResolvedColumn { rel, col })
            }
            None => {
                let mut found = None;
                for (rel, rel_name) in self.from.iter().enumerate() {
                    let schema = self.db.catalog().relation(rel_name)?.schema().clone();
                    if let Some(col) = schema.index_of(&cr.column) {
                        if found.is_some() {
                            return Err(PsqlError::Semantic(format!(
                                "ambiguous column {:?}",
                                cr.column
                            )));
                        }
                        found = Some(ResolvedColumn { rel, col });
                    }
                }
                found.ok_or_else(|| {
                    PsqlError::Semantic(format!("no column {:?} in from-relations", cr.column))
                })
            }
        }
    }

    pub(crate) fn require_pointer(
        &self,
        cr: &ColumnRef,
        rc: ResolvedColumn,
    ) -> Result<(), PsqlError> {
        let rel_name = &self.from[rc.rel];
        let schema = self.db.catalog().relation(rel_name)?.schema().clone();
        if schema.columns()[rc.col].ty != ColumnType::Pointer {
            return Err(PsqlError::Semantic(format!(
                "{cr} must be a pictorial (pointer) column"
            )));
        }
        Ok(())
    }

    /// Picture associated with a loc column.
    pub(crate) fn picture_of(
        &self,
        cr: &ColumnRef,
        rc: ResolvedColumn,
    ) -> Result<String, PsqlError> {
        let rel_name = &self.from[rc.rel];
        let schema = self.db.catalog().relation(rel_name)?.schema().clone();
        let col_name = &schema.columns()[rc.col].name;
        self.db
            .association(rel_name, col_name)
            .map(str::to_owned)
            .ok_or_else(|| PsqlError::Semantic(format!("{cr} is not associated with any picture")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn db() -> PictorialDatabase {
        PictorialDatabase::with_us_map()
    }

    #[test]
    fn window_query_plans_spatial_search() {
        let db = db();
        let q =
            parse_query("select city from cities on us-map at loc covered-by {50 +- 50, 25 +- 25}")
                .unwrap();
        let p = plan(&db, &q).unwrap();
        assert!(matches!(p.spatial, SpatialStrategy::Window { .. }));
        assert!(p.explain().contains("r-tree search on us-map"));
    }

    #[test]
    fn index_picked_without_at_clause() {
        let db = db();
        let q = parse_query("select city from cities where population > 5000000").unwrap();
        let p = plan(&db, &q).unwrap();
        assert!(matches!(
            p.access,
            Access::IndexRange { ref column, .. } if column == "population"
        ));
        // Unindexed column → scan.
        let q2 = parse_query("select city from cities where state = 'TX'").unwrap();
        let p2 = plan(&db, &q2).unwrap();
        assert_eq!(p2.access, Access::FullScan);
    }

    #[test]
    fn juxtaposition_plan_normalizes_sides() {
        let db = db();
        let q = parse_query(
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
        )
        .unwrap();
        let p = plan(&db, &q).unwrap();
        match &p.spatial {
            SpatialStrategy::Juxtapose { left, op, .. } => {
                assert_eq!(left.rel, 0);
                assert_eq!(*op, SpatialOp::CoveredBy);
            }
            other => panic!("{other:?}"),
        }
        // Reversed operand order flips the operator.
        let q2 = parse_query(
            "select city, zone from cities, time-zones \
             at time-zones.loc covering cities.loc",
        )
        .unwrap();
        let p2 = plan(&db, &q2).unwrap();
        match &p2.spatial {
            SpatialStrategy::Juxtapose { left, op, .. } => {
                assert_eq!(left.rel, 0);
                assert_eq!(*op, SpatialOp::CoveredBy);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nearest_plan() {
        let db = db();
        let q =
            parse_query("select city from cities on us-map at loc nearest 3 {50 +- 0, 25 +- 0}")
                .unwrap();
        let p = plan(&db, &q).unwrap();
        match &p.spatial {
            SpatialStrategy::Nearest {
                picture, k, point, ..
            } => {
                assert_eq!(picture, "us-map");
                assert_eq!(*k, 3);
                assert_eq!(*point, rtree_geom::Point { x: 50.0, y: 25.0 });
            }
            other => panic!("expected nearest strategy, got {other:?}"),
        }
        assert!(p.explain().contains("k-nn on us-map"));
        // Nearest over a join is unsupported.
        let q2 = parse_query(
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at time-zones.loc nearest 2 {50 +- 0, 25 +- 0}",
        )
        .unwrap();
        assert!(plan(&db, &q2).is_err());
    }

    #[test]
    fn nested_mapping_plan() {
        let db = db();
        let q = parse_query(
            "select lake from lakes on lake-map at lakes.loc covered-by \
             (select states.loc from states on state-map \
              at states.loc covered-by {80 +- 20, 25 +- 25})",
        )
        .unwrap();
        let p = plan(&db, &q).unwrap();
        assert!(matches!(p.spatial, SpatialStrategy::Nested { .. }));
        assert!(p.explain().contains("nested mapping"));
    }

    #[test]
    fn named_location_resolves_to_window() {
        let db = db();
        let q =
            parse_query("select city from cities on us-map at loc covered-by eastern-us").unwrap();
        let p = plan(&db, &q).unwrap();
        match &p.spatial {
            SpatialStrategy::Window { window, .. } => {
                assert_eq!(*window, rtree_workload::usmap::EASTERN_WINDOW);
            }
            other => panic!("expected window strategy, got {other:?}"),
        }
        // An unknown name is still an error.
        let q2 = parse_query("select city from cities at loc covered-by atlantis").unwrap();
        assert!(plan(&db, &q2).is_err());
    }

    #[test]
    fn semantic_errors() {
        let db = db();
        for bad in [
            "select city from nowhere",
            "select altitude from cities",
            "select city from cities on mars-map",
            "select city from cities at population covered-by {1 +- 1, 2 +- 2}",
            "select city from cities, states at cities.loc covered-by cities.loc",
            // at-picture not in on-list:
            "select city from cities on state-map at loc covered-by {1 +- 1, 2 +- 2}",
            // ambiguous unqualified column:
            "select state from cities, states at cities.loc covered-by states.loc",
            // nested query selecting more than a loc:
            "select lake from lakes at lakes.loc covered-by (select state, states.loc from states)",
        ] {
            let q = parse_query(bad).unwrap();
            assert!(plan(&db, &q).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn star_projection_resolves_all_columns() {
        let db = db();
        let q = parse_query("select * from cities").unwrap();
        let p = plan(&db, &q).unwrap();
        assert_eq!(p.projection.len(), 4);
    }
}
