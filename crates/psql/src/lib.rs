//! PSQL — the Pictorial Structured Query Language of Roussopoulos &
//! Leifker (§2), executed over packed R-trees.
//!
//! PSQL extends SQL's `select / from / where` with an `on`-clause naming
//! pictures and an `at`-clause performing **direct spatial search**:
//!
//! ```text
//! select city, state, population, loc
//! from   cities
//! on     us-map
//! at     loc covered-by {82.5 +- 17.5, 25 +- 20}
//! where  population > 450000
//! ```
//!
//! Supported, per the paper:
//!
//! * spatial comparison operators `covering`, `covered-by`,
//!   `overlapping`, `disjoined` (§2.2);
//! * window literals in the paper's `{x ± dx, y ± dy}` notation (spelled
//!   `+-`), plus named-column references `relation.loc`;
//! * **juxtaposition** — the "geographic join" of two pictures over the
//!   same area, executed as a simultaneous descent of both R-trees
//!   (`cities.loc covered-by time-zones.loc`, Figure 2.2);
//! * **nested mappings** — an inner `select` whose result locations bind
//!   the outer `at`-clause (the lakes-in-eastern-states example);
//! * pictorial functions (`area(loc)`, …) callable from `select` and
//!   `where` (§2.1's abstract-data-type view of pictorial domains);
//! * dual output channels: an alphanumeric [`ResultSet`] and the
//!   "graphics monitor" — an ASCII rendering of the picture with the
//!   qualifying objects highlighted ([`render`]).
//!
//! The engine plans direct spatial search through each picture's
//! **packed R-tree** and alphanumeric restrictions through B+tree indexes
//! when available.
//!
//! # Quick start
//!
//! ```
//! use psql::database::PictorialDatabase;
//! use psql::exec::execute;
//! use psql::parser::parse_query;
//!
//! let db = PictorialDatabase::with_us_map();
//! let q = parse_query(
//!     "select city, population from cities on us-map \
//!      at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000",
//! ).unwrap();
//! let result = execute(&db, &q).unwrap();
//! assert!(result.rows.iter().any(|r| r[0].to_string() == "New York"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code reports typed errors instead of panicking; unit tests
// (cfg(test)) may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ast;
pub mod database;
pub mod error;
pub mod exec;
pub mod functions;
pub mod join;
pub mod lexer;
pub mod parser;
pub mod picture;
pub mod plan;
pub mod render;
pub mod result;
pub mod spatial;
pub mod token;
pub mod wal_record;

pub use ast::Statement;
pub use database::PictorialDatabase;
pub use error::PsqlError;
pub use exec::execute;
pub use parser::{parse_query, parse_statement};
pub use result::ResultSet;
pub use spatial::SpatialOp;
pub use wal_record::InsertRecord;
