//! An interactive PSQL shell over the synthetic US-map database.
//!
//! The closest thing 2026 offers to the paper's dual-monitor setup:
//! queries typed at a prompt, alphanumeric results as tables, pictorial
//! results as ASCII maps.
//!
//! ```text
//! cargo run -p psql --bin psql-shell
//! psql> select city, population from cities on us-map
//!       at loc covered-by {82.5 +- 17.5, 25 +- 20}
//!       where population > 450000;
//! psql> \explain select zone from time-zones on time-zone-map at loc overlapping {50 +- 10, 25 +- 25};
//! psql> \map us-map
//! psql> \help
//! ```

use psql::ast::Statement;
use psql::database::PictorialDatabase;
use psql::exec::execute;
use psql::parser::{parse_query, parse_statement};
use psql::plan::plan;
use psql::render::render;
use std::io::{self, BufRead, Write};

const HELP: &str = "\
PSQL shell commands:
  <query>;               run a PSQL retrieve mapping (may span lines, end with ;)
  pack external <picture> budget <bytes> [threads <n>];
                         rebuild a picture's packed R-tree out-of-core,
                         bounding build memory by <bytes>
  \\explain <query>;      show the plan without executing
  \\map <picture>         render a picture (us-map, state-map, time-zone-map,
                         lake-map, highway-map)
  \\tables                list relations and pictures
  \\nomap                 toggle automatic map rendering of query highlights
  \\help                  this text
  \\quit                  exit

Example queries:
  select city, state, population, loc from cities on us-map
    at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000;
  select city, loc from cities on us-map at loc covered-by eastern-us;
  select city, zone from cities, time-zones on us-map, time-zone-map
    at cities.loc covered-by time-zones.loc;
  select lake, area(loc) from lakes where area(loc) >= 4;
  select city, population from cities order by population desc limit 5;
  select northest-of(loc) from highways where hwy-name = 'I-90';
";

fn main() {
    let mut db = PictorialDatabase::with_us_map();
    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    let mut buffer = String::new();
    let mut auto_map = true;

    println!("PSQL — pictorial structured query language (Roussopoulos & Leifker 1985)");
    println!("type \\help for help, \\quit to exit\n");
    loop {
        if buffer.is_empty() {
            print!("psql> ");
        } else {
            print!("  ... ");
        }
        io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(&db, trimmed, &mut auto_map) {
                MetaResult::Continue => continue,
                MetaResult::Quit => break,
            }
        }
        buffer.push_str(&line);
        buffer.push(' ');
        if !trimmed.ends_with(';') {
            continue;
        }
        let text = buffer.trim().trim_end_matches(';').trim().to_owned();
        buffer.clear();
        if text.is_empty() {
            continue;
        }
        run_statement(&mut db, &text, auto_map);
    }
    println!("bye");
}

enum MetaResult {
    Continue,
    Quit,
}

fn run_meta(db: &PictorialDatabase, command: &str, auto_map: &mut bool) -> MetaResult {
    let mut parts = command.splitn(2, ' ');
    match parts.next().unwrap_or_default() {
        "\\quit" | "\\q" => return MetaResult::Quit,
        "\\help" | "\\h" => print!("{HELP}"),
        "\\nomap" => {
            *auto_map = !*auto_map;
            println!(
                "automatic map rendering: {}",
                if *auto_map { "on" } else { "off" }
            );
        }
        "\\tables" => {
            println!("relations:");
            for name in db.catalog().relation_names() {
                let rel = db.catalog().relation(name).expect("listed");
                let cols: Vec<String> = rel
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| format!("{}:{}", c.name, c.ty))
                    .collect();
                println!("  {name}({})  [{} tuples]", cols.join(", "), rel.len());
            }
            println!("pictures: us-map, state-map, time-zone-map, lake-map, highway-map");
        }
        "\\map" => match parts.next() {
            Some(name) => match db.picture(name.trim()) {
                Ok(pic) => println!("{}", render(pic, &[], 110, 28)),
                Err(e) => println!("{e}"),
            },
            None => println!("usage: \\map <picture>"),
        },
        "\\explain" => match parts.next() {
            Some(text) => {
                let text = text.trim().trim_end_matches(';');
                match parse_query(text).and_then(|q| plan(db, &q)) {
                    Ok(p) => println!("{}", p.explain()),
                    Err(e) => println!("{e}"),
                }
            }
            None => println!("usage: \\explain <query>;"),
        },
        other => println!("unknown command {other}; try \\help"),
    }
    MetaResult::Continue
}

fn run_statement(db: &mut PictorialDatabase, text: &str, auto_map: bool) {
    match parse_statement(text) {
        Ok(Statement::Retrieve(q)) => run_query(db, &q, auto_map),
        Ok(Statement::PackExternal {
            picture,
            budget_bytes,
            threads,
        }) => match db.picture_mut(&picture) {
            Ok(pic) => match pic.pack_external(budget_bytes, threads) {
                Ok(stats) => println!(
                    "packed {} objects out-of-core: {} initial runs, {} intermediate \
                     merges (fan-in {}), {} spill bytes, peak resident {} of {} budget \
                     bytes; {} threads, {} merge partitions; phases (ms) produce {} \
                     sort {} spill {} merge {} emit {}",
                    stats.items,
                    stats.initial_runs,
                    stats.intermediate_merges,
                    stats.max_fan_in,
                    stats.spill_bytes,
                    stats.peak_budget_bytes,
                    budget_bytes,
                    stats.threads_used,
                    stats.merge_partitions,
                    stats.produce_us / 1000,
                    stats.sort_us / 1000,
                    stats.spill_us / 1000,
                    stats.merge_us / 1000,
                    stats.emit_us / 1000,
                ),
                Err(e) => println!("pack external failed: {e}"),
            },
            Err(e) => println!("{e}"),
        },
        Err(e) => println!("{e}"),
    }
}

fn run_query(db: &PictorialDatabase, query: &psql::ast::Query, auto_map: bool) {
    match execute(db, query) {
        Ok(result) => {
            println!("{result}");
            if auto_map && !result.highlights.is_empty() {
                // Render each picture that has highlighted objects.
                let mut pictures: Vec<&str> = result
                    .highlights
                    .iter()
                    .map(|h| h.picture.as_str())
                    .collect();
                pictures.sort_unstable();
                pictures.dedup();
                for pic_name in pictures {
                    if let Ok(pic) = db.picture(pic_name) {
                        println!("{pic_name}:");
                        println!("{}", render(pic, &result.highlights, 110, 28));
                    }
                }
            }
        }
        Err(e) => println!("{e}"),
    }
}
