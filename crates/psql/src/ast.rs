//! PSQL abstract syntax.

use crate::spatial::SpatialOp;
use pictorial_relational::{CompareOp, Value};
use rtree_geom::{Point, Rect};

/// A top-level PSQL statement: either a retrieve mapping or an
/// administrative command.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A retrieve mapping (`select … from … on … at … where …`).
    Retrieve(Box<Query>),
    /// `pack external <picture> budget <bytes> [threads <n>]` — rebuild
    /// a picture's packed R-tree with the out-of-core external packer,
    /// bounding the build's resident memory by the given budget. The
    /// optional `threads` clause sizes the packer's pipeline (overlapped
    /// sort/spill plus the partitioned merge); 0 or absent selects the
    /// machine default, and the result is bit-identical at every value.
    PackExternal {
        /// Picture whose R-tree is rebuilt.
        picture: String,
        /// Memory budget in bytes for the external pack.
        budget_bytes: u64,
        /// Pipeline thread count (0 = machine default).
        threads: usize,
    },
}

/// A parsed PSQL retrieve mapping (§2.2):
///
/// ```text
/// select <attribute-target-list>
/// from   <relation-list>
/// on     <picture-list>
/// at     <area-specification>
/// where  <qualification>
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Target list.
    pub select: Vec<SelectItem>,
    /// Relations queried.
    pub from: Vec<String>,
    /// Pictures named by the `on`-clause (positionally matched with
    /// `from` for juxtaposition).
    pub on: Vec<String>,
    /// The `at`-clause, if any.
    pub at: Option<AtClause>,
    /// The `at … nearest` clause, if any (mutually exclusive with `at`
    /// by the grammar: both grow from the `at` keyword).
    pub nearest: Option<NearestClause>,
    /// The `where`-clause, if any.
    pub where_clause: Option<Expr>,
    /// Optional `order by` (ascending unless `desc`).
    pub order_by: Option<OrderBy>,
    /// Optional `limit`.
    pub limit: Option<usize>,
}

/// An `order by` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// The sort column.
    pub column: ColumnRef,
    /// `true` for ascending (the default), `false` for `desc`.
    pub ascending: bool,
}

/// One entry of the target list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`: every column of every `from` relation.
    Star,
    /// A (possibly qualified) column: `population`, `cities.loc`.
    Column(ColumnRef),
    /// A pictorial function call: `area(loc)` (§2.1).
    Function {
        /// Function name.
        name: String,
        /// Argument column.
        arg: ColumnRef,
    },
}

/// A possibly relation-qualified column name.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Qualifying relation, if written.
    pub relation: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn plain(column: &str) -> Self {
        ColumnRef {
            relation: None,
            column: column.to_owned(),
        }
    }

    /// Qualified reference.
    pub fn qualified(relation: &str, column: &str) -> Self {
        ColumnRef {
            relation: Some(relation.to_owned()),
            column: column.to_owned(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.relation {
            Some(r) => write!(f, "{r}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// The `at`-clause: `<loc> <spatial-op> <loc-term>`.
#[derive(Debug, Clone, PartialEq)]
pub struct AtClause {
    /// Left operand — a `loc` column of a `from` relation.
    pub lhs: ColumnRef,
    /// The spatial comparison operator.
    pub op: SpatialOp,
    /// Right operand.
    pub rhs: LocTerm,
}

/// The k-nearest-neighbour `at`-clause:
/// `<loc> nearest <k> {x +- dx, y +- dy}`. The window's centre is the
/// query point (its half-extents play no role — `{x +- 0, y +- 0}` is
/// the idiomatic spelling).
#[derive(Debug, Clone, PartialEq)]
pub struct NearestClause {
    /// The `loc` column whose objects are ranked by distance.
    pub lhs: ColumnRef,
    /// How many neighbours to return.
    pub k: usize,
    /// The query point.
    pub point: Point,
}

/// The right operand of an `at`-clause.
#[derive(Debug, Clone, PartialEq)]
pub enum LocTerm {
    /// A constant window `{x +- dx, y +- dy}` entered "by coordinates or
    /// by a mouse".
    Window(Rect),
    /// Another relation's `loc` column — juxtaposition (§2.2).
    Column(ColumnRef),
    /// A nested mapping whose result locations bind this operand
    /// (the lakes-within-eastern-states example).
    Subquery(Box<Query>),
}

/// A `where`-clause expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `column op constant` or `function(column) op constant`.
    Compare {
        /// Left side.
        lhs: Operand,
        /// Operator.
        op: CompareOp,
        /// Right side constant.
        rhs: Value,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Left side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A pictorial function applied to a column.
    Function {
        /// Function name.
        name: String,
        /// Argument column.
        arg: ColumnRef,
    },
}
