//! The spatial comparison operators of §2.2.
//!
//! "The spatial operators are comparison predicates which receive two
//! area specifications … and return true or false depending on whether or
//! not the two argument locations satisfy the corresponding spatial
//! relation on the picture."
//!
//! # Edge-touching semantics
//!
//! Every PSQL operator is a *closed-set* predicate: locations include
//! their boundaries, so two locations that share only a boundary point
//! (a point on a region's edge, two rectangles sharing an edge or a
//! corner, a zero-area rect sitting on another's border) are
//! `overlapping` and therefore *not* `disjoined`.  `disjoined` is the
//! exact complement of `overlapping` for every operand class.  This
//! matches [`rtree_geom::Rect::intersects`]/[`rtree_geom::Rect::disjoint`]
//! and the closed window predicates on [`SpatialObject`]; it is *not*
//! the positive-area notion measured by [`rtree_geom::Rect::overlaps`],
//! which exists only as a packing-quality metric (see the semantics
//! note in `rtree_geom::rect`).  The differential oracle
//! (`crates/oracle`) checks engine and reference against this single
//! definition.

use rtree_geom::{Rect, SpatialObject};

/// PSQL's spatial comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialOp {
    /// `loc1 covering loc2`: loc1 contains loc2 entirely.
    Covering,
    /// `loc1 covered-by loc2`: loc1 lies entirely within loc2.
    CoveredBy,
    /// `loc1 overlapping loc2`: the locations share at least one point
    /// (closed sets — boundary contact counts, and one containing the
    /// other counts).
    Overlapping,
    /// `loc1 disjoined loc2`: the locations share no point; the exact
    /// complement of [`SpatialOp::Overlapping`].
    Disjoined,
}

impl SpatialOp {
    /// Operator with the argument roles swapped:
    /// `a op b ⇔ b op.flip() a`.
    pub fn flip(self) -> SpatialOp {
        match self {
            SpatialOp::Covering => SpatialOp::CoveredBy,
            SpatialOp::CoveredBy => SpatialOp::Covering,
            SpatialOp::Overlapping => SpatialOp::Overlapping,
            SpatialOp::Disjoined => SpatialOp::Disjoined,
        }
    }

    /// Evaluates the operator between an object and a constant window.
    pub fn eval_window(self, obj: &SpatialObject, window: &Rect) -> bool {
        match self {
            SpatialOp::CoveredBy => obj.within_window(window),
            // `obj covering window` holds iff every point of the window
            // lies in the object. The window is the convex hull of its
            // corners and all three object classes are convex, so corner
            // containment is exact for points and segments and for
            // convex (e.g. rectangular) regions.
            SpatialOp::Covering => match obj {
                SpatialObject::Region(r) => {
                    r.mbr().covers(window) && window.corners().iter().all(|&c| r.contains_point(c))
                }
                // A point covers only the window that *is* that point
                // (all corners coincide with it) — never a window with a
                // positive-length side.
                SpatialObject::Point(p) => window.corners().iter().all(|&c| c == *p),
                // A segment covers a degenerate window lying along it: a
                // point on the segment, or a zero-width/zero-height
                // window whose corners are all on the segment.
                SpatialObject::Segment(s) => window.corners().iter().all(|&c| s.contains_point(c)),
            },
            SpatialOp::Overlapping => obj.intersects_window(window),
            SpatialOp::Disjoined => !obj.intersects_window(window),
        }
    }

    /// Evaluates the operator between two objects.
    ///
    /// The filter step works on MBRs (what the R-trees store); the
    /// refinement step applies exact geometry where the classes allow
    /// (point/region containment, region/region for rectangular regions).
    pub fn eval_objects(self, a: &SpatialObject, b: &SpatialObject) -> bool {
        match self {
            SpatialOp::Covering => SpatialOp::CoveredBy.eval_objects(b, a),
            SpatialOp::CoveredBy => match b {
                SpatialObject::Region(region) => {
                    // Exact for points; corner containment for the rest
                    // (exact when the region is convex, e.g. the map's
                    // rectangular states and zones).
                    region.mbr().covers(&a.mbr())
                        && a.mbr().corners().iter().all(|&c| region.contains_point(c))
                }
                _ => b.mbr().covers(&a.mbr()),
            },
            SpatialOp::Overlapping => match b {
                SpatialObject::Region(region) => {
                    a.mbr().intersects(&region.mbr())
                        && SpatialObject::Region(region.clone()).intersects_window(&a.mbr())
                }
                // Closed-set semantics: boundary contact counts, so the
                // MBR test is plain `intersects`, never the positive-area
                // `Rect::overlaps`.
                _ => a.mbr().intersects(&b.mbr()),
            },
            SpatialOp::Disjoined => !SpatialOp::Overlapping.eval_objects(a, b),
        }
    }

    /// MBR-level filter: can `a op b` possibly hold given only bounding
    /// rectangles? Used to prune R-tree descents before exact refinement.
    pub fn mbr_filter(self, a: &Rect, b: &Rect) -> bool {
        match self {
            SpatialOp::Covering => a.covers(b),
            SpatialOp::CoveredBy => b.covers(a),
            SpatialOp::Overlapping => a.intersects(b),
            // Disjointness can never be pruned by MBRs (every pair is a
            // candidate); the caller must enumerate.
            SpatialOp::Disjoined => true,
        }
    }

    /// The operator's name in PSQL syntax.
    pub fn name(self) -> &'static str {
        match self {
            SpatialOp::Covering => "covering",
            SpatialOp::CoveredBy => "covered-by",
            SpatialOp::Overlapping => "overlapping",
            SpatialOp::Disjoined => "disjoined",
        }
    }
}

impl std::fmt::Display for SpatialOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::{Point, Region, Segment};

    fn point(x: f64, y: f64) -> SpatialObject {
        SpatialObject::Point(Point::new(x, y))
    }

    fn region(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::Region(Region::rectangle(Rect::new(x0, y0, x1, y1)))
    }

    #[test]
    fn covered_by_window() {
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(SpatialOp::CoveredBy.eval_window(&point(5.0, 5.0), &w));
        assert!(!SpatialOp::CoveredBy.eval_window(&point(15.0, 5.0), &w));
        assert!(SpatialOp::CoveredBy.eval_window(&region(1.0, 1.0, 9.0, 9.0), &w));
        assert!(!SpatialOp::CoveredBy.eval_window(&region(5.0, 5.0, 15.0, 9.0), &w));
    }

    #[test]
    fn covering_window() {
        let w = Rect::new(2.0, 2.0, 4.0, 4.0);
        assert!(SpatialOp::Covering.eval_window(&region(0.0, 0.0, 10.0, 10.0), &w));
        assert!(!SpatialOp::Covering.eval_window(&region(3.0, 3.0, 10.0, 10.0), &w));
        assert!(!SpatialOp::Covering.eval_window(&point(3.0, 3.0), &w));
    }

    #[test]
    fn overlap_and_disjoint_window() {
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        let crossing =
            SpatialObject::Segment(Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0)));
        assert!(SpatialOp::Overlapping.eval_window(&crossing, &w));
        assert!(!SpatialOp::Disjoined.eval_window(&crossing, &w));
        let far = point(50.0, 50.0);
        assert!(SpatialOp::Disjoined.eval_window(&far, &w));
    }

    #[test]
    fn point_covered_by_region_object() {
        let zone = region(0.0, 0.0, 20.0, 50.0);
        assert!(SpatialOp::CoveredBy.eval_objects(&point(10.0, 25.0), &zone));
        assert!(!SpatialOp::CoveredBy.eval_objects(&point(30.0, 25.0), &zone));
        // Flip: the zone covers the point.
        assert!(SpatialOp::Covering.eval_objects(&zone, &point(10.0, 25.0)));
    }

    #[test]
    fn region_region_relations() {
        let big = region(0.0, 0.0, 10.0, 10.0);
        let small = region(2.0, 2.0, 4.0, 4.0);
        let apart = region(20.0, 20.0, 30.0, 30.0);
        assert!(SpatialOp::CoveredBy.eval_objects(&small, &big));
        assert!(SpatialOp::Covering.eval_objects(&big, &small));
        assert!(SpatialOp::Overlapping.eval_objects(&small, &big));
        assert!(SpatialOp::Disjoined.eval_objects(&small, &apart));
        assert!(!SpatialOp::CoveredBy.eval_objects(&big, &small));
    }

    #[test]
    fn edge_touching_objects_overlap_and_are_not_disjoined() {
        // Rect regions sharing only an edge.
        let left = region(0.0, 0.0, 5.0, 5.0);
        let right = region(5.0, 0.0, 10.0, 5.0);
        assert!(SpatialOp::Overlapping.eval_objects(&left, &right));
        assert!(!SpatialOp::Disjoined.eval_objects(&left, &right));
        // Rect regions sharing only a corner.
        let corner = region(5.0, 5.0, 10.0, 10.0);
        assert!(SpatialOp::Overlapping.eval_objects(&left, &corner));
        assert!(!SpatialOp::Disjoined.eval_objects(&left, &corner));
        // A point on a region's boundary (zero-area MBR touching an edge).
        let on_edge = point(5.0, 2.5);
        assert!(SpatialOp::Overlapping.eval_objects(&on_edge, &left));
        assert!(SpatialOp::Overlapping.eval_objects(&left, &on_edge));
        assert!(!SpatialOp::Disjoined.eval_objects(&on_edge, &left));
        // Two coincident points: zero-area vs zero-area.
        assert!(SpatialOp::Overlapping.eval_objects(&point(1.0, 1.0), &point(1.0, 1.0)));
        assert!(SpatialOp::Disjoined.eval_objects(&point(1.0, 1.0), &point(1.0, 2.0)));
    }

    #[test]
    fn edge_touching_window_semantics_match_objects() {
        let w = Rect::new(0.0, 0.0, 5.0, 5.0);
        // Object touching the window's right edge only.
        let touching = region(5.0, 1.0, 8.0, 4.0);
        assert!(SpatialOp::Overlapping.eval_window(&touching, &w));
        assert!(!SpatialOp::Disjoined.eval_window(&touching, &w));
        // Point exactly on the window corner.
        assert!(SpatialOp::Overlapping.eval_window(&point(5.0, 5.0), &w));
        assert!(!SpatialOp::Disjoined.eval_window(&point(5.0, 5.0), &w));
    }

    #[test]
    fn disjoined_is_exact_complement_of_overlapping() {
        let objs = [
            point(0.0, 0.0),
            point(5.0, 5.0),
            region(0.0, 0.0, 5.0, 5.0),
            region(5.0, 5.0, 9.0, 9.0),
            region(2.0, 2.0, 3.0, 3.0),
            SpatialObject::Segment(Segment::new(Point::new(0.0, 5.0), Point::new(5.0, 0.0))),
        ];
        for a in &objs {
            for b in &objs {
                assert_ne!(
                    SpatialOp::Overlapping.eval_objects(a, b),
                    SpatialOp::Disjoined.eval_objects(a, b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn flip_is_involutive() {
        for op in [
            SpatialOp::Covering,
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
            SpatialOp::Disjoined,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn mbr_filter_is_necessary_condition() {
        let a = region(0.0, 0.0, 5.0, 5.0);
        let b = region(2.0, 2.0, 8.0, 8.0);
        for op in [
            SpatialOp::Covering,
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
        ] {
            if op.eval_objects(&a, &b) {
                assert!(op.mbr_filter(&a.mbr(), &b.mbr()), "{op}");
            }
        }
    }
}
