//! The spatial comparison operators of §2.2.
//!
//! "The spatial operators are comparison predicates which receive two
//! area specifications … and return true or false depending on whether or
//! not the two argument locations satisfy the corresponding spatial
//! relation on the picture."

use rtree_geom::{Rect, SpatialObject};

/// PSQL's spatial comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialOp {
    /// `loc1 covering loc2`: loc1 contains loc2 entirely.
    Covering,
    /// `loc1 covered-by loc2`: loc1 lies entirely within loc2.
    CoveredBy,
    /// `loc1 overlapping loc2`: the locations share interior area (or one
    /// contains the other).
    Overlapping,
    /// `loc1 disjoined loc2`: the locations share no point.
    Disjoined,
}

impl SpatialOp {
    /// Operator with the argument roles swapped:
    /// `a op b ⇔ b op.flip() a`.
    pub fn flip(self) -> SpatialOp {
        match self {
            SpatialOp::Covering => SpatialOp::CoveredBy,
            SpatialOp::CoveredBy => SpatialOp::Covering,
            SpatialOp::Overlapping => SpatialOp::Overlapping,
            SpatialOp::Disjoined => SpatialOp::Disjoined,
        }
    }

    /// Evaluates the operator between an object and a constant window.
    pub fn eval_window(self, obj: &SpatialObject, window: &Rect) -> bool {
        match self {
            SpatialOp::CoveredBy => obj.within_window(window),
            SpatialOp::Covering => match obj {
                // Only regions can cover a window with positive area.
                SpatialObject::Region(r) => {
                    r.mbr().covers(window) && window.corners().iter().all(|&c| r.contains_point(c))
                }
                SpatialObject::Point(p) => window.is_degenerate() && window.contains_point(*p),
                SpatialObject::Segment(_) => false,
            },
            SpatialOp::Overlapping => obj.intersects_window(window),
            SpatialOp::Disjoined => !obj.intersects_window(window),
        }
    }

    /// Evaluates the operator between two objects.
    ///
    /// The filter step works on MBRs (what the R-trees store); the
    /// refinement step applies exact geometry where the classes allow
    /// (point/region containment, region/region for rectangular regions).
    pub fn eval_objects(self, a: &SpatialObject, b: &SpatialObject) -> bool {
        match self {
            SpatialOp::Covering => SpatialOp::CoveredBy.eval_objects(b, a),
            SpatialOp::CoveredBy => match b {
                SpatialObject::Region(region) => {
                    // Exact for points; corner containment for the rest
                    // (exact when the region is convex, e.g. the map's
                    // rectangular states and zones).
                    region.mbr().covers(&a.mbr())
                        && a.mbr().corners().iter().all(|&c| region.contains_point(c))
                }
                _ => b.mbr().covers(&a.mbr()),
            },
            SpatialOp::Overlapping => match b {
                SpatialObject::Region(region) => {
                    a.mbr().intersects(&region.mbr())
                        && SpatialObject::Region(region.clone()).intersects_window(&a.mbr())
                }
                _ => a.mbr().overlaps(&b.mbr()) || a.mbr().intersects(&b.mbr()),
            },
            SpatialOp::Disjoined => !SpatialOp::Overlapping.eval_objects(a, b),
        }
    }

    /// MBR-level filter: can `a op b` possibly hold given only bounding
    /// rectangles? Used to prune R-tree descents before exact refinement.
    pub fn mbr_filter(self, a: &Rect, b: &Rect) -> bool {
        match self {
            SpatialOp::Covering => a.covers(b),
            SpatialOp::CoveredBy => b.covers(a),
            SpatialOp::Overlapping => a.intersects(b),
            // Disjointness can never be pruned by MBRs (every pair is a
            // candidate); the caller must enumerate.
            SpatialOp::Disjoined => true,
        }
    }

    /// The operator's name in PSQL syntax.
    pub fn name(self) -> &'static str {
        match self {
            SpatialOp::Covering => "covering",
            SpatialOp::CoveredBy => "covered-by",
            SpatialOp::Overlapping => "overlapping",
            SpatialOp::Disjoined => "disjoined",
        }
    }
}

impl std::fmt::Display for SpatialOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::{Point, Region, Segment};

    fn point(x: f64, y: f64) -> SpatialObject {
        SpatialObject::Point(Point::new(x, y))
    }

    fn region(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::Region(Region::rectangle(Rect::new(x0, y0, x1, y1)))
    }

    #[test]
    fn covered_by_window() {
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(SpatialOp::CoveredBy.eval_window(&point(5.0, 5.0), &w));
        assert!(!SpatialOp::CoveredBy.eval_window(&point(15.0, 5.0), &w));
        assert!(SpatialOp::CoveredBy.eval_window(&region(1.0, 1.0, 9.0, 9.0), &w));
        assert!(!SpatialOp::CoveredBy.eval_window(&region(5.0, 5.0, 15.0, 9.0), &w));
    }

    #[test]
    fn covering_window() {
        let w = Rect::new(2.0, 2.0, 4.0, 4.0);
        assert!(SpatialOp::Covering.eval_window(&region(0.0, 0.0, 10.0, 10.0), &w));
        assert!(!SpatialOp::Covering.eval_window(&region(3.0, 3.0, 10.0, 10.0), &w));
        assert!(!SpatialOp::Covering.eval_window(&point(3.0, 3.0), &w));
    }

    #[test]
    fn overlap_and_disjoint_window() {
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        let crossing =
            SpatialObject::Segment(Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0)));
        assert!(SpatialOp::Overlapping.eval_window(&crossing, &w));
        assert!(!SpatialOp::Disjoined.eval_window(&crossing, &w));
        let far = point(50.0, 50.0);
        assert!(SpatialOp::Disjoined.eval_window(&far, &w));
    }

    #[test]
    fn point_covered_by_region_object() {
        let zone = region(0.0, 0.0, 20.0, 50.0);
        assert!(SpatialOp::CoveredBy.eval_objects(&point(10.0, 25.0), &zone));
        assert!(!SpatialOp::CoveredBy.eval_objects(&point(30.0, 25.0), &zone));
        // Flip: the zone covers the point.
        assert!(SpatialOp::Covering.eval_objects(&zone, &point(10.0, 25.0)));
    }

    #[test]
    fn region_region_relations() {
        let big = region(0.0, 0.0, 10.0, 10.0);
        let small = region(2.0, 2.0, 4.0, 4.0);
        let apart = region(20.0, 20.0, 30.0, 30.0);
        assert!(SpatialOp::CoveredBy.eval_objects(&small, &big));
        assert!(SpatialOp::Covering.eval_objects(&big, &small));
        assert!(SpatialOp::Overlapping.eval_objects(&small, &big));
        assert!(SpatialOp::Disjoined.eval_objects(&small, &apart));
        assert!(!SpatialOp::CoveredBy.eval_objects(&big, &small));
    }

    #[test]
    fn flip_is_involutive() {
        for op in [
            SpatialOp::Covering,
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
            SpatialOp::Disjoined,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn mbr_filter_is_necessary_condition() {
        let a = region(0.0, 0.0, 5.0, 5.0);
        let b = region(2.0, 2.0, 8.0, 8.0);
        for op in [
            SpatialOp::Covering,
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
        ] {
            if op.eval_objects(&a, &b) {
                assert!(op.mbr_filter(&a.mbr(), &b.mbr()), "{op}");
            }
        }
    }
}
