//! PSQL error type.

use pictorial_relational::RelationalError;
use std::fmt;

/// Anything that can go wrong lexing, parsing, planning or executing a
/// PSQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum PsqlError {
    /// Lexical error.
    Lex(String),
    /// Syntax error.
    Parse(String),
    /// Semantic error (unknown relation/picture/column, ambiguity, …).
    Semantic(String),
    /// Error from the relational substrate.
    Relational(RelationalError),
    /// Engine invariant violated at execution time — a bug in the
    /// planner/executor contract, reported instead of panicking.
    Internal(String),
}

impl fmt::Display for PsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsqlError::Lex(m) => write!(f, "lex error: {m}"),
            PsqlError::Parse(m) => write!(f, "parse error: {m}"),
            PsqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            PsqlError::Relational(e) => write!(f, "relational error: {e}"),
            PsqlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PsqlError {}

impl From<RelationalError> for PsqlError {
    fn from(e: RelationalError) -> Self {
        PsqlError::Relational(e)
    }
}
