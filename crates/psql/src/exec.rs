//! The PSQL executor.

use crate::ast::{ColumnRef, Expr, Operand, Query};
use crate::database::PictorialDatabase;
use crate::error::PsqlError;
use crate::functions::FunctionRegistry;
use crate::join::{picture_join, JoinStats};
use crate::plan::{self, Access, Plan, Projection, ResolvedColumn, SpatialStrategy};
use crate::result::{Highlight, ResultSet};
use crate::spatial::SpatialOp;
use pictorial_relational::{ColumnType, TupleId, Value};
use rtree_geom::SpatialObject;
use rtree_index::{BatchScratch, ItemId, SearchScratch};

/// Plans and executes a query with the built-in pictorial functions.
pub fn execute(db: &PictorialDatabase, query: &Query) -> Result<ResultSet, PsqlError> {
    execute_with(db, query, &FunctionRegistry::with_builtins())
}

/// Plans and executes with a caller-supplied function registry
/// (application-defined extensions, §2.1).
pub fn execute_with(
    db: &PictorialDatabase,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<ResultSet, PsqlError> {
    let plan = plan::plan(db, query)?;
    execute_plan(db, &plan, functions)
}

/// Plans and executes reusing a caller-owned [`SearchScratch`].
///
/// The concurrent query service keeps one scratch per worker thread and
/// threads it through every request that worker serves, so steady-state
/// query execution allocates nothing for tree traversal. The scratch is
/// plain reusable buffer space — it carries no state between calls.
pub fn execute_with_scratch(
    db: &PictorialDatabase,
    query: &Query,
    functions: &FunctionRegistry,
    scratch: &mut SearchScratch,
) -> Result<ResultSet, PsqlError> {
    let plan = plan::plan(db, query)?;
    execute_plan_with_scratch(db, &plan, functions, scratch)
}

/// Executes an already-built plan.
pub fn execute_plan(
    db: &PictorialDatabase,
    plan: &Plan,
    functions: &FunctionRegistry,
) -> Result<ResultSet, PsqlError> {
    // One scratch per plan execution: every tree search in this query
    // (including the per-inner-tuple searches of nested mappings) reuses
    // the same traversal buffers instead of allocating per query.
    let mut scratch = SearchScratch::new();
    execute_plan_with_scratch(db, plan, functions, &mut scratch)
}

/// Executes an already-built plan with a caller-owned scratch.
pub fn execute_plan_with_scratch(
    db: &PictorialDatabase,
    plan: &Plan,
    functions: &FunctionRegistry,
    scratch: &mut SearchScratch,
) -> Result<ResultSet, PsqlError> {
    let rows = candidate_rows(db, plan, functions, scratch)?;
    finish_rows(db, plan, functions, rows)
}

/// Plans and executes a pack of queries, reusing a caller-owned
/// [`BatchScratch`], and returns per-query results **in input order**.
///
/// Queries whose plans are direct spatial searches (`at … covered-by /
/// overlapping / covering / disjoined` windows, or `at … nearest`) are
/// grouped by target picture and executed through the picture's batched
/// paths ([`search_windows_batch`](crate::picture::Picture::search_windows_batch) /
/// [`nearest_batch`](crate::picture::Picture::nearest_batch)): the
/// frozen tree traverses them in spatial (Z-order) groups over one
/// shared scratch, so a batch of nearby windows touches each hot node
/// once instead of once per query. Every other plan shape — and any
/// query that fails to plan — executes exactly as
/// [`execute_with_scratch`] would. Per-query results are bit-identical
/// to one-at-a-time execution either way.
pub fn execute_batch_with_scratch(
    db: &PictorialDatabase,
    queries: &[Query],
    functions: &FunctionRegistry,
    batch: &mut BatchScratch,
) -> Vec<Result<ResultSet, PsqlError>> {
    let plans: Vec<Result<Plan, PsqlError>> = queries.iter().map(|q| plan::plan(db, q)).collect();
    let mut out: Vec<Option<Result<ResultSet, PsqlError>>> = Vec::new();
    out.resize_with(queries.len(), || None);

    // Group batchable plans by (kind, picture name).
    let mut window_groups: Vec<(String, Vec<usize>)> = Vec::new();
    let mut nearest_groups: Vec<(String, Vec<usize>)> = Vec::new();
    let push = |groups: &mut Vec<(String, Vec<usize>)>, picture: &str, i: usize| match groups
        .iter_mut()
        .find(|(name, _)| name == picture)
    {
        Some((_, idxs)) => idxs.push(i),
        None => groups.push((picture.to_owned(), vec![i])),
    };
    for (i, planned) in plans.iter().enumerate() {
        match planned {
            Ok(plan) => match &plan.spatial {
                SpatialStrategy::Window { picture, .. } => push(&mut window_groups, picture, i),
                SpatialStrategy::Nearest { picture, .. } => push(&mut nearest_groups, picture, i),
                _ => {
                    out[i] = Some(execute_plan_with_scratch(
                        db,
                        plan,
                        functions,
                        batch.search(),
                    ));
                }
            },
            Err(e) => out[i] = Some(Err(e.clone())),
        }
    }

    for (picture_name, idxs) in window_groups {
        match db.picture(&picture_name) {
            Ok(pic) => {
                let specs: Vec<(SpatialOp, rtree_geom::Rect)> = idxs
                    .iter()
                    .map(|&i| match &plans[i] {
                        Ok(Plan {
                            spatial: SpatialStrategy::Window { op, window, .. },
                            ..
                        }) => (*op, *window),
                        _ => unreachable!("window group holds only window plans"),
                    })
                    .collect();
                let per_query = pic.search_windows_batch(&specs, batch);
                for (&i, objs) in idxs.iter().zip(&per_query) {
                    let plan = plans[i].as_ref().expect("grouped plans are Ok");
                    let SpatialStrategy::Window { column, .. } = &plan.spatial else {
                        unreachable!()
                    };
                    out[i] = Some(
                        objects_to_rows(db, plan, *column, objs)
                            .and_then(|rows| finish_rows(db, plan, functions, rows)),
                    );
                }
            }
            Err(_) => {
                // Missing picture: fall back so each query reports its
                // own error exactly as the single-query path would.
                for &i in &idxs {
                    let plan = plans[i].as_ref().expect("grouped plans are Ok");
                    out[i] = Some(execute_plan_with_scratch(
                        db,
                        plan,
                        functions,
                        batch.search(),
                    ));
                }
            }
        }
    }

    for (picture_name, idxs) in nearest_groups {
        match db.picture(&picture_name) {
            Ok(pic) => {
                let specs: Vec<(rtree_geom::Point, usize)> = idxs
                    .iter()
                    .map(|&i| match &plans[i] {
                        Ok(Plan {
                            spatial: SpatialStrategy::Nearest { k, point, .. },
                            ..
                        }) => (*point, *k),
                        _ => unreachable!("nearest group holds only nearest plans"),
                    })
                    .collect();
                let per_query = pic.nearest_batch(&specs, batch);
                for (&i, objs) in idxs.iter().zip(&per_query) {
                    let plan = plans[i].as_ref().expect("grouped plans are Ok");
                    let SpatialStrategy::Nearest { column, .. } = &plan.spatial else {
                        unreachable!()
                    };
                    out[i] = Some(
                        objects_to_rows(db, plan, *column, objs)
                            .and_then(|rows| finish_rows(db, plan, functions, rows)),
                    );
                }
            }
            Err(_) => {
                for &i in &idxs {
                    let plan = plans[i].as_ref().expect("grouped plans are Ok");
                    out[i] = Some(execute_plan_with_scratch(
                        db,
                        plan,
                        functions,
                        batch.search(),
                    ));
                }
            }
        }
    }

    out.into_iter()
        .map(|r| r.expect("every query executed"))
        .collect()
}

/// Turns candidate rows into a [`ResultSet`]: residual filter, order
/// by, limit, projection (including aggregates) and highlights.
fn finish_rows(
    db: &PictorialDatabase,
    plan: &Plan,
    functions: &FunctionRegistry,
    rows: Vec<Vec<TupleId>>,
) -> Result<ResultSet, PsqlError> {
    // Residual where-clause.
    #[allow(unused_mut)]
    let mut kept: Vec<Vec<TupleId>> = Vec::new();
    for row in rows {
        let keep = match &plan.residual {
            Some(expr) => eval_expr(db, plan, functions, &row, expr)?,
            None => true,
        };
        if keep {
            kept.push(row);
        }
    }

    // Ordering and limit (before projection so the sort key need not be
    // selected).
    if let Some((key, ascending)) = &plan.order_by {
        let mut keyed: Vec<(Value, Vec<TupleId>)> = Vec::with_capacity(kept.len());
        for row in kept {
            let v = column_value(db, plan, &row, *key)?.clone();
            keyed.push((v, row));
        }
        keyed.sort_by(|a, b| {
            if *ascending {
                a.0.cmp(&b.0)
            } else {
                b.0.cmp(&a.0)
            }
        });
        kept = keyed.into_iter().map(|(_, row)| row).collect();
    }
    if let Some(n) = plan.limit {
        kept.truncate(n);
    }

    // Projection.
    let columns: Vec<String> = plan
        .projection
        .iter()
        .map(|p| match p {
            Projection::Column { name, .. } | Projection::Function { name, .. } => name.clone(),
        })
        .collect();
    let has_aggregate = plan.projection.iter().any(
        |p| matches!(p, Projection::Function { function, .. } if functions.is_aggregate(function)),
    );
    let mut out_rows = Vec::with_capacity(if has_aggregate { 1 } else { kept.len() });
    if has_aggregate {
        // §2.1's aggregate pictorial functions (northest-of, …): the
        // qualifying rows collapse to a single output row; every target
        // must be an aggregate over a loc column.
        let mut out = Vec::with_capacity(plan.projection.len());
        for p in &plan.projection {
            match p {
                Projection::Function { function, arg, .. } if functions.is_aggregate(function) => {
                    let mut objects = Vec::with_capacity(kept.len());
                    for row in &kept {
                        objects.push(object_of(db, plan, row, *arg)?);
                    }
                    out.push(functions.apply_aggregate(function, &objects)?);
                }
                _ => {
                    return Err(PsqlError::Semantic(
                        "aggregate queries may only select aggregate functions".into(),
                    ))
                }
            }
        }
        out_rows.push(out);
    } else {
        for row in &kept {
            let mut out = Vec::with_capacity(plan.projection.len());
            for p in &plan.projection {
                match p {
                    Projection::Column { source, .. } => {
                        out.push(column_value(db, plan, row, *source)?.clone());
                    }
                    Projection::Function {
                        function,
                        arg,
                        name: _,
                    } => {
                        let obj = object_of(db, plan, row, *arg)?;
                        out.push(functions.apply(function, &obj)?);
                    }
                }
            }
            out_rows.push(out);
        }
    }

    // Highlights: every qualifying tuple's associated loc objects.
    let mut highlights: Vec<Highlight> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for row in &kept {
        for (rel_idx, rel_name) in plan.relations.iter().enumerate() {
            for (col_name, picture_name) in db.loc_columns(rel_name) {
                let rel = db.catalog().relation(rel_name)?;
                let Some(col_idx) = rel.schema().index_of(&col_name) else {
                    continue;
                };
                if let Some(obj) = rel.get(row[rel_idx])?[col_idx].as_pointer() {
                    if seen.insert((picture_name.clone(), obj)) {
                        let label = db
                            .picture(&picture_name)?
                            .label(obj)
                            .unwrap_or("")
                            .to_owned();
                        highlights.push(Highlight {
                            picture: picture_name.clone(),
                            object: obj,
                            label,
                        });
                    }
                }
            }
        }
    }

    Ok(ResultSet {
        columns,
        rows: out_rows,
        highlights,
    })
}

/// Produces candidate rows (one `TupleId` per `from`-relation).
fn candidate_rows(
    db: &PictorialDatabase,
    plan: &Plan,
    functions: &FunctionRegistry,
    scratch: &mut SearchScratch,
) -> Result<Vec<Vec<TupleId>>, PsqlError> {
    match &plan.spatial {
        SpatialStrategy::None => {
            let rel_name = &plan.relations[0];
            let rel = db.catalog().relation(rel_name)?;
            let tids: Vec<TupleId> = match &plan.access {
                Access::FullScan => rel.scan().map(|(tid, _)| tid).collect(),
                Access::IndexRange { column, lo, hi } => {
                    let index = db.catalog().index(rel_name, column).ok_or_else(|| {
                        PsqlError::Internal(format!(
                            "planner chose missing index {rel_name}.{column}"
                        ))
                    })?;
                    index
                        .range(lo.as_ref(), hi.as_ref())
                        .into_iter()
                        .map(|(_, tid)| tid)
                        .collect()
                }
            };
            Ok(tids.into_iter().map(|t| vec![t]).collect())
        }
        SpatialStrategy::Window {
            column,
            picture,
            op,
            window,
        } => {
            let pic = db.picture(picture)?;
            let objs = pic.search_window_fast(*op, window, scratch);
            objects_to_rows(db, plan, *column, &objs)
        }
        SpatialStrategy::Nearest {
            column,
            picture,
            k,
            point,
        } => {
            let pic = db.picture(picture)?;
            // Rows come back ascending by distance; objects_to_rows
            // preserves that order for the result set.
            let objs = pic.nearest_fast(*point, *k, scratch);
            objects_to_rows(db, plan, *column, &objs)
        }
        SpatialStrategy::Nested {
            column,
            picture,
            op,
            inner,
        } => {
            // Execute the inner mapping; its single projected column is a
            // loc pointer into the inner picture. It shares this query's
            // scratch: the inner searches are done (and their results
            // copied out) before the outer searches begin.
            let inner_result = execute_plan_with_scratch(db, inner, functions, scratch)?;
            let (inner_rel, inner_col) = match &inner.projection[0] {
                Projection::Column { source, .. } => {
                    let rel_name = &inner.relations[source.rel];
                    let schema = db.catalog().relation(rel_name)?.schema().clone();
                    (rel_name.clone(), schema.columns()[source.col].name.clone())
                }
                Projection::Function { .. } => {
                    return Err(PsqlError::Semantic(
                        "nested mapping must select a loc column".into(),
                    ))
                }
            };
            let inner_picture_name = db.association(&inner_rel, &inner_col).ok_or_else(|| {
                PsqlError::Semantic(format!("{inner_rel}.{inner_col} has no picture"))
            })?;
            let inner_picture = db.picture(inner_picture_name)?;

            // "The binding of the top level window is dynamically done
            // during the evaluation of the query": search the outer
            // picture once per inner location.
            let pic = db.picture(picture)?;
            let mut objs: Vec<u64> = Vec::new();
            let mut dedupe = std::collections::HashSet::new();
            for row in &inner_result.rows {
                let Some(obj_id) = row[0].as_pointer() else {
                    continue;
                };
                let inner_obj = inner_picture.object(obj_id).ok_or_else(|| {
                    PsqlError::Semantic(format!("dangling pointer {obj_id} in nested result"))
                })?;
                for cand in
                    pic.search_window_fast(SpatialOp::Overlapping, &inner_obj.mbr(), scratch)
                {
                    let outer_obj = pic.object(cand).ok_or_else(|| {
                        PsqlError::Internal(format!("search returned unknown object {cand}"))
                    })?;
                    if op.eval_objects(outer_obj, inner_obj) && dedupe.insert(cand) {
                        objs.push(cand);
                    }
                }
                // Disjointness cannot be found via overlap candidates.
                if *op == SpatialOp::Disjoined {
                    for cand in pic.object_ids() {
                        let outer_obj = pic.object(cand).ok_or_else(|| {
                            PsqlError::Internal(format!("object id {cand} out of range"))
                        })?;
                        if op.eval_objects(outer_obj, inner_obj) && dedupe.insert(cand) {
                            objs.push(cand);
                        }
                    }
                }
            }
            objects_to_rows(db, plan, *column, &objs)
        }
        SpatialStrategy::Juxtapose {
            left,
            left_picture,
            right,
            right_picture,
            op,
        } => {
            let lp = db.picture(left_picture)?;
            let rp = db.picture(right_picture)?;
            let mut join_stats = JoinStats::default();
            // Frozen joins are bit-identical to pointer-tree joins (same
            // pair order, same stats) and are used whenever both sides
            // are packed; buffered delta writes merge in as extra join
            // terms (see `picture_join`).
            let pairs = picture_join(lp, rp, *op, &mut join_stats);
            let mut rows = Vec::new();
            for (ItemId(lo), ItemId(ro)) in pairs {
                let lobj = lp.object(lo).ok_or_else(|| {
                    PsqlError::Internal(format!("join produced unknown left object {lo}"))
                })?;
                let robj = rp.object(ro).ok_or_else(|| {
                    PsqlError::Internal(format!("join produced unknown right object {ro}"))
                })?;
                if !op.eval_objects(lobj, robj) {
                    continue;
                }
                let lrel = &plan.relations[left.rel];
                let rrel = &plan.relations[right.rel];
                let lcol = loc_column_name(db, lrel, *left)?;
                let rcol = loc_column_name(db, rrel, *right)?;
                for &lt in db.tuples_of_object(lrel, &lcol, lo) {
                    for &rt in db.tuples_of_object(rrel, &rcol, ro) {
                        // Row slots are ordered by from-position.
                        let mut row = vec![TupleId(0); 2];
                        row[left.rel] = lt;
                        row[right.rel] = rt;
                        rows.push(row);
                    }
                }
            }
            Ok(rows)
        }
    }
}

/// Maps qualifying object ids back to tuples of relation 0 (forward
/// direct search through the backward pointers, §2.1).
fn objects_to_rows(
    db: &PictorialDatabase,
    plan: &Plan,
    column: ResolvedColumn,
    objs: &[u64],
) -> Result<Vec<Vec<TupleId>>, PsqlError> {
    let rel_name = &plan.relations[column.rel];
    let col_name = loc_column_name(db, rel_name, column)?;
    let mut rows = Vec::new();
    for &obj in objs {
        for &tid in db.tuples_of_object(rel_name, &col_name, obj) {
            rows.push(vec![tid]);
        }
    }
    Ok(rows)
}

fn loc_column_name(
    db: &PictorialDatabase,
    rel_name: &str,
    rc: ResolvedColumn,
) -> Result<String, PsqlError> {
    let schema = db.catalog().relation(rel_name)?.schema().clone();
    Ok(schema.columns()[rc.col].name.clone())
}

fn column_value<'a>(
    db: &'a PictorialDatabase,
    plan: &Plan,
    row: &[TupleId],
    rc: ResolvedColumn,
) -> Result<&'a Value, PsqlError> {
    let rel_name = &plan.relations[rc.rel];
    let rel = db.catalog().relation(rel_name)?;
    Ok(&rel.get(row[rc.rel])?[rc.col])
}

/// The spatial object a pointer column of this row refers to.
fn object_of(
    db: &PictorialDatabase,
    plan: &Plan,
    row: &[TupleId],
    rc: ResolvedColumn,
) -> Result<SpatialObject, PsqlError> {
    let rel_name = &plan.relations[rc.rel];
    let rel = db.catalog().relation(rel_name)?;
    let schema = rel.schema();
    debug_assert_eq!(schema.columns()[rc.col].ty, ColumnType::Pointer);
    let value = &rel.get(row[rc.rel])?[rc.col];
    let obj_id = value
        .as_pointer()
        .ok_or_else(|| PsqlError::Semantic("NULL loc in pictorial function".into()))?;
    let col_name = &schema.columns()[rc.col].name;
    let picture = db.association(rel_name, col_name).ok_or_else(|| {
        PsqlError::Semantic(format!("{rel_name}.{col_name} has no picture association"))
    })?;
    db.picture(picture)?
        .object(obj_id)
        .cloned()
        .ok_or_else(|| PsqlError::Semantic(format!("dangling pointer {obj_id}")))
}

fn eval_expr(
    db: &PictorialDatabase,
    plan: &Plan,
    functions: &FunctionRegistry,
    row: &[TupleId],
    expr: &Expr,
) -> Result<bool, PsqlError> {
    match expr {
        Expr::Compare { lhs, op, rhs } => {
            let left = match lhs {
                Operand::Column(cr) => resolve_value(db, plan, row, cr)?,
                Operand::Function { name, arg } => {
                    let rc = resolve_ref(db, plan, arg)?;
                    let obj = object_of(db, plan, row, rc)?;
                    functions.apply(name, &obj)?
                }
            };
            Ok(op.eval(&left, rhs))
        }
        Expr::And(a, b) => {
            Ok(eval_expr(db, plan, functions, row, a)? && eval_expr(db, plan, functions, row, b)?)
        }
        Expr::Or(a, b) => {
            Ok(eval_expr(db, plan, functions, row, a)? || eval_expr(db, plan, functions, row, b)?)
        }
        Expr::Not(e) => Ok(!eval_expr(db, plan, functions, row, e)?),
    }
}

fn resolve_ref(
    db: &PictorialDatabase,
    plan: &Plan,
    cr: &ColumnRef,
) -> Result<ResolvedColumn, PsqlError> {
    plan::Resolver {
        db,
        from: &plan.relations,
    }
    .resolve(cr)
}

fn resolve_value(
    db: &PictorialDatabase,
    plan: &Plan,
    row: &[TupleId],
    cr: &ColumnRef,
) -> Result<Value, PsqlError> {
    let rc = resolve_ref(db, plan, cr)?;
    Ok(column_value(db, plan, row, rc)?.clone())
}

/// Convenience used by examples and benches: parse + execute.
pub fn query(db: &PictorialDatabase, text: &str) -> Result<ResultSet, PsqlError> {
    let q: Query = crate::parser::parse_query(text)?;
    execute(db, &q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> PictorialDatabase {
        PictorialDatabase::with_us_map()
    }

    fn names(result: &ResultSet, col: &str) -> Vec<String> {
        let mut v: Vec<String> = result
            .column(col)
            .unwrap()
            .into_iter()
            .map(Value::to_string)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn figure_2_1_direct_spatial_search() {
        // "Find all cities in the Eastern US with population > 450,000."
        let db = db();
        let result = query(
            &db,
            "select city, state, population, loc from cities on us-map \
             at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000",
        )
        .unwrap();
        let cities = names(&result, "city");
        assert!(cities.contains(&"New York".to_string()));
        assert!(cities.contains(&"Boston".to_string()));
        assert!(cities.contains(&"Washington".to_string()));
        assert!(!cities.contains(&"Chicago".to_string()));
        assert!(!cities.contains(&"Los Angeles".to_string()));
        // Pictorial channel highlights the same qualifying objects.
        assert_eq!(result.highlights.len(), result.rows.len());
        assert!(result.highlights.iter().all(|h| h.picture == "us-map"));
    }

    #[test]
    fn figure_2_2_juxtaposition() {
        // Cities with their time zones — the geographic join.
        let db = db();
        let result = query(
            &db,
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
        )
        .unwrap();
        // Every city lands in exactly one vertical band.
        assert_eq!(result.len(), 42);
        let find = |city: &str| {
            result
                .rows
                .iter()
                .find(|r| r[0] == Value::str(city))
                .map(|r| r[1].to_string())
                .unwrap()
        };
        assert_eq!(find("Seattle"), "Pacific");
        assert_eq!(find("Denver"), "Mountain");
        assert_eq!(find("Chicago"), "Central");
        assert_eq!(find("New York"), "Eastern");
    }

    #[test]
    fn nested_mapping_lakes_in_eastern_states() {
        let db = db();
        let result = query(
            &db,
            "select lake from lakes on lake-map at lakes.loc covered-by \
             (select states.loc from states on state-map \
              at states.loc covered-by {78 +- 22, 25 +- 25})",
        )
        .unwrap();
        let lakes = names(&result, "lake");
        // The window [56,100]x[0,50] covers the Great Lakes state box
        // [60,72]x[26,40] and Florida [64,74]x[0,10]; Erie sits inside
        // the former, Okeechobee inside the latter.
        assert!(lakes.contains(&"Erie".to_string()), "{lakes:?}");
        assert!(lakes.contains(&"Okeechobee".to_string()), "{lakes:?}");
        // Great Salt (west) must not qualify, and Ontario straddles
        // state boxes so it is covered by none.
        assert!(!lakes.contains(&"Great Salt".to_string()));
        assert!(!lakes.contains(&"Ontario".to_string()));
    }

    #[test]
    fn index_scan_equals_full_scan() {
        let db = db();
        let indexed = query(&db, "select city from cities where population >= 6000000").unwrap();
        // Same query phrased to defeat the index (Ne is unindexable, so
        // force full scan via an OR).
        let scanned = query(
            &db,
            "select city from cities where population >= 6000000 or population >= 9000000000",
        )
        .unwrap();
        assert_eq!(names(&indexed, "city"), names(&scanned, "city"));
        assert!(indexed.len() >= 5);
    }

    #[test]
    fn pictorial_functions_in_select_and_where() {
        let db = db();
        let result = query(
            &db,
            "select lake, area(loc) from lakes where area(loc) >= 20",
        )
        .unwrap();
        // Superior (8x3 = 24) and Michigan (3x6.5 = 19.5)? Michigan is
        // 19.5 < 20, so only Superior qualifies.
        assert_eq!(names(&result, "lake"), vec!["Superior"]);
        assert_eq!(result.columns[1], "area(loc)");
    }

    #[test]
    fn overlapping_and_disjoined_windows() {
        let db = db();
        // Time zones overlapping the central window.
        let overlap = query(
            &db,
            "select zone from time-zones on time-zone-map \
             at loc overlapping {50 +- 10, 25 +- 25}",
        )
        .unwrap();
        let zones = names(&overlap, "zone");
        // [40,60] shares area with Mountain [20,42] and Central [42,62];
        // Eastern starts at 62 and is untouched.
        assert_eq!(zones, vec!["Central", "Mountain"]);
        let disjoint = query(
            &db,
            "select zone from time-zones on time-zone-map \
             at loc disjoined {10 +- 9, 25 +- 25}",
        )
        .unwrap();
        let dz = names(&disjoint, "zone");
        assert_eq!(dz, vec!["Central", "Eastern", "Mountain"]);
    }

    #[test]
    fn star_select_without_clauses() {
        let db = db();
        let result = query(&db, "select * from time-zones").unwrap();
        assert_eq!(result.len(), 4);
        assert_eq!(result.columns, vec!["zone", "hour-diff", "loc"]);
    }

    #[test]
    fn covering_window() {
        // Which time zone covers downtown Chicago's block?
        let db = db();
        let result = query(
            &db,
            "select zone from time-zones on time-zone-map \
             at loc covering {53 +- 1, 32 +- 1}",
        )
        .unwrap();
        assert_eq!(names(&result, "zone"), vec!["Central"]);
    }

    #[test]
    fn segments_on_highway_map() {
        let db = db();
        // Highway sections crossing the midwest window.
        let result = query(
            &db,
            "select hwy-name, hwy-section from highways on highway-map \
             at loc overlapping {50 +- 10, 30 +- 12} where hwy-name = 'I-90'",
        )
        .unwrap();
        assert!(!result.is_empty());
        assert!(result
            .column("hwy-name")
            .unwrap()
            .iter()
            .all(|v| **v == Value::str("I-90")));
    }

    #[test]
    fn aggregate_northest_of_highway() {
        // The paper's §2.1 example: the northest coordinate of any point
        // in a highway — I-90 ends in Seattle (y = 46), its highest point.
        let db = db();
        let result = query(
            &db,
            "select northest-of(loc), count-of(loc) from highways \
             where hwy-name = 'I-90'",
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0][0], Value::Float(46.0));
        assert_eq!(result.rows[0][1], Value::Int(7));
    }

    #[test]
    fn aggregate_with_spatial_restriction() {
        // Count cities inside the Eastern window.
        let db = db();
        let result = query(
            &db,
            "select count-of(loc) from cities on us-map \
             at loc covered-by {82.5 +- 17.5, 25 +- 20}",
        )
        .unwrap();
        assert_eq!(result.rows[0][0], Value::Int(12));
    }

    #[test]
    fn mixing_aggregates_and_columns_rejected() {
        let db = db();
        let err = query(&db, "select city, count-of(loc) from cities").unwrap_err();
        assert!(matches!(err, crate::error::PsqlError::Semantic(_)));
    }

    #[test]
    fn aggregate_over_empty_set() {
        let db = db();
        let result = query(
            &db,
            "select northest-of(loc), count-of(loc) from cities on us-map \
             at loc covered-by {0 +- 0.1, 0 +- 0.1}",
        )
        .unwrap();
        assert_eq!(result.rows[0][0], Value::Null);
        assert_eq!(result.rows[0][1], Value::Int(0));
    }

    #[test]
    fn order_by_and_limit_execution() {
        let db = db();
        let result = query(
            &db,
            "select city, population from cities order by population desc limit 3",
        )
        .unwrap();
        let cities: Vec<String> = result
            .column("city")
            .unwrap()
            .into_iter()
            .map(Value::to_string)
            .collect();
        assert_eq!(cities, vec!["New York", "Los Angeles", "Chicago"]);
        // Ascending, string keys.
        let result2 = query(&db, "select zone from time-zones order by zone limit 2").unwrap();
        let zones: Vec<String> = result2
            .column("zone")
            .unwrap()
            .into_iter()
            .map(Value::to_string)
            .collect();
        assert_eq!(zones, vec!["Central", "Eastern"]);
        // Order key need not be projected.
        let result3 = query(
            &db,
            "select city from cities order by population desc limit 1",
        )
        .unwrap();
        assert_eq!(result3.rows[0][0], Value::str("New York"));
    }

    #[test]
    fn nearest_query_ranks_by_distance() {
        // Three cities nearest downtown Chicago, closest first. The
        // query point sits on Chicago itself, so Chicago leads.
        let db = db();
        let result = query(
            &db,
            "select city from cities on us-map at loc nearest 3 {53 +- 0, 32 +- 0}",
        )
        .unwrap();
        let cities: Vec<String> = result
            .column("city")
            .unwrap()
            .into_iter()
            .map(Value::to_string)
            .collect();
        assert_eq!(cities.len(), 3);
        assert_eq!(cities[0], "Chicago");
        // k larger than the population returns everything.
        let all = query(
            &db,
            "select city from cities on us-map at loc nearest 1000 {53 +- 0, 32 +- 0}",
        )
        .unwrap();
        assert_eq!(all.len(), 42);
    }

    #[test]
    fn predefined_location_in_at_clause() {
        // §2.2: "The location variable may just be a name of a location
        // predefined outside the retrieve mapping."
        let mut db = db();
        db.define_location("gulf-coast", rtree_geom::Rect::new(38.0, 5.0, 55.0, 14.0));
        let result = query(
            &db,
            "select city from cities on us-map at loc covered-by gulf-coast",
        )
        .unwrap();
        let cities = names(&result, "city");
        assert!(cities.contains(&"Houston".to_string()), "{cities:?}");
        assert!(cities.contains(&"New Orleans".to_string()));
        assert!(!cities.contains(&"Chicago".to_string()));
    }

    #[test]
    fn batched_execution_matches_single_execution() {
        let db = db();
        let texts = [
            // Window searches over two pictures, all four operators.
            "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
            "select zone from time-zones on time-zone-map at loc overlapping {50 +- 10, 25 +- 25}",
            "select zone from time-zones on time-zone-map at loc covering {53 +- 1, 32 +- 1}",
            "select zone from time-zones on time-zone-map at loc disjoined {10 +- 9, 25 +- 25}",
            "select city from cities on us-map at loc covered-by {40 +- 20, 25 +- 20}",
            // Nearest, plain relational, aggregate and join plans.
            "select city from cities on us-map at loc nearest 3 {53 +- 0, 32 +- 0}",
            "select city from cities where population >= 6000000",
            "select count-of(loc) from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
            // A planning failure must surface in its slot, not abort the batch.
            "select nonsense from cities",
        ];
        let queries: Vec<Query> = texts
            .iter()
            .map(|t| crate::parser::parse_query(t).unwrap())
            .collect();
        let functions = FunctionRegistry::with_builtins();
        let mut batch = rtree_index::BatchScratch::new();
        let batched = execute_batch_with_scratch(&db, &queries, &functions, &mut batch);
        assert_eq!(batched.len(), queries.len());
        let mut scratch = SearchScratch::new();
        for (i, q) in queries.iter().enumerate() {
            let single = execute_with_scratch(&db, q, &functions, &mut scratch);
            match (&batched[i], &single) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.columns, s.columns, "query {i} columns");
                    assert_eq!(b.rows, s.rows, "query {i} rows");
                    assert_eq!(b.highlights, s.highlights, "query {i} highlights");
                }
                (Err(b), Err(s)) => assert_eq!(b, s, "query {i} error"),
                (b, s) => panic!("query {i}: batched {b:?} vs single {s:?}"),
            }
        }
    }

    #[test]
    fn empty_window_returns_nothing() {
        let db = db();
        let result = query(
            &db,
            "select city from cities on us-map at loc covered-by {0 +- 0.5, 0 +- 0.5}",
        )
        .unwrap();
        assert!(result.is_empty());
        assert!(result.highlights.is_empty());
    }

    #[test]
    fn degenerate_windows_are_safe_and_deterministic() {
        // Hostile window literals whose arithmetic leaves the finite
        // plane (a 400-digit literal parses to infinity; `inf - inf` is
        // NaN) must come back as *typed* errors through the executor,
        // never as a panic or a NaN-poisoned R-tree descent.
        let db = db();
        let huge = "9".repeat(400); // f64::from_str → +inf
        for text in [
            // Overflowing center, overflowing extent, and the inf-inf
            // NaN case, through both the at-clause and nearest.
            format!("select city from cities on us-map at loc covered-by {{{huge} +- 1, 25 +- 20}}"),
            format!("select city from cities on us-map at loc covered-by {{82.5 +- {huge}, 25 +- 20}}"),
            format!("select city from cities on us-map at loc overlapping {{{huge} +- {huge}, 25 +- 20}}"),
            format!("select city from cities on us-map at loc nearest 3 {{{huge} +- {huge}, 25 +- 0}}"),
        ] {
            match query(&db, &text) {
                Err(PsqlError::Parse(msg)) => assert!(msg.contains("finite"), "{text}: {msg}"),
                other => panic!("{text}: expected typed parse error, got {other:?}"),
            }
        }

        // Zero-area (point) windows are the legal degenerate case: all
        // four operators must answer, deterministically, on reruns.
        for op in ["covered-by", "overlapping", "covering", "disjoined"] {
            let text =
                format!("select city from cities on us-map at loc {op} {{53 +- 0, 32 +- 0}}");
            let first = query(&db, &text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let again = query(&db, &text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(first.rows, again.rows, "{text} nondeterministic");
        }
    }

    #[test]
    fn order_by_with_nan_keys_is_total_and_stable() {
        // exec's order-by comparator must be a total order even when the
        // key column contains NaN (total_cmp, not partial_cmp): every
        // row survives the sort, NaN lands at a deterministic end, and
        // reruns agree.
        let mut db = db();
        let obj = db
            .add_object(
                "state-map",
                rtree_geom::SpatialObject::Region(rtree_geom::Region::rectangle(
                    rtree_geom::Rect::new(1.0, 1.0, 2.0, 2.0),
                )),
                "Nanland",
            )
            .unwrap();
        db.insert(
            "states",
            vec!["Nanland".into(), f64::NAN.into(), Value::Pointer(obj)],
        )
        .unwrap();
        let total = db.catalog().relation("states").unwrap().len();

        let asc = query(&db, "select state from states order by population-density").unwrap();
        let desc = query(
            &db,
            "select state from states order by population-density desc",
        )
        .unwrap();
        assert_eq!(asc.len(), total, "sort dropped rows");
        assert_eq!(desc.len(), total, "sort dropped rows");
        // total_cmp orders NaN above every finite float: last ascending,
        // first descending.
        assert_eq!(asc.rows[total - 1][0], Value::str("Nanland"));
        assert_eq!(desc.rows[0][0], Value::str("Nanland"));
        let again = query(&db, "select state from states order by population-density").unwrap();
        assert_eq!(asc.rows, again.rows, "NaN sort nondeterministic");
    }
}
