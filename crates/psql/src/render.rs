//! The "graphics monitor": ASCII rendering of pictures with highlighted
//! objects.
//!
//! The paper displays qualifying spatial objects on a graphics device
//! with their names beside them (Figure 2.1b); we have no 1985 graphics
//! monitor, so this module rasterizes the picture into a character grid —
//! the same dual-channel output, terminal-friendly.

use crate::picture::Picture;
use crate::result::Highlight;
use rtree_geom::{Point, Rect, SpatialObject};

/// Renders `picture` into a `width × height` character grid.
///
/// All objects are drawn dimly (`.` for points, `-`/`|` style traces for
/// segments, `:` outlines for regions); objects in `highlights` are drawn
/// bright (`*`, `=`, `#`) with their labels written beside them.
pub fn render(picture: &Picture, highlights: &[Highlight], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "canvas too small");
    let frame = picture.frame();
    let mut grid = vec![vec![' '; width]; height];

    let highlighted: std::collections::HashSet<u64> = highlights
        .iter()
        .filter(|h| h.picture == picture.name())
        .map(|h| h.object)
        .collect();

    // Dim pass first so highlights overdraw.
    for pass in [false, true] {
        for id in picture.object_ids() {
            let is_hi = highlighted.contains(&id);
            if is_hi != pass {
                continue;
            }
            let Some(obj) = picture.object(id) else {
                continue;
            };
            draw_object(&mut grid, &frame, obj, is_hi, width, height);
        }
    }
    // Labels last, so they stay readable.
    for id in picture.object_ids() {
        if !highlighted.contains(&id) {
            continue;
        }
        let Some(obj) = picture.object(id) else {
            continue;
        };
        if let Some(label) = picture.label(id) {
            let (cx, cy) = to_cell(&frame, obj.representative(), width, height);
            write_label(&mut grid, cx + 2, cy, label);
        }
    }

    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out
}

fn to_cell(frame: &Rect, p: Point, width: usize, height: usize) -> (usize, usize) {
    let fx = ((p.x - frame.min_x) / frame.width().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let fy = ((p.y - frame.min_y) / frame.height().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let cx = (fx * (width - 1) as f64).round() as usize;
    // y grows north; rows grow down.
    let cy = ((1.0 - fy) * (height - 1) as f64).round() as usize;
    (cx, cy)
}

fn put(grid: &mut [Vec<char>], cx: usize, cy: usize, c: char) {
    if cy < grid.len() && cx < grid[cy].len() {
        grid[cy][cx] = c;
    }
}

fn draw_object(
    grid: &mut [Vec<char>],
    frame: &Rect,
    obj: &SpatialObject,
    highlighted: bool,
    width: usize,
    height: usize,
) {
    match obj {
        SpatialObject::Point(p) => {
            let (cx, cy) = to_cell(frame, *p, width, height);
            put(grid, cx, cy, if highlighted { '*' } else { '.' });
        }
        SpatialObject::Segment(s) => {
            // Sample along the segment.
            let steps = (s.length() / frame.width().max(1e-9) * width as f64 * 2.0)
                .ceil()
                .max(1.0) as usize;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let p = s.a + (s.b - s.a) * t;
                let (cx, cy) = to_cell(frame, p, width, height);
                put(grid, cx, cy, if highlighted { '=' } else { '-' });
            }
        }
        SpatialObject::Region(r) => {
            let verts = r.vertices();
            let n = verts.len();
            for i in 0..n {
                let a = verts[i];
                let b = verts[(i + 1) % n];
                let seg = rtree_geom::Segment::new(a, b);
                let steps = (seg.length() / frame.width().max(1e-9) * width as f64 * 2.0)
                    .ceil()
                    .max(1.0) as usize;
                for k in 0..=steps {
                    let t = k as f64 / steps as f64;
                    let p = a + (b - a) * t;
                    let (cx, cy) = to_cell(frame, p, width, height);
                    put(grid, cx, cy, if highlighted { '#' } else { ':' });
                }
            }
        }
    }
}

fn write_label(grid: &mut [Vec<char>], cx: usize, cy: usize, label: &str) {
    for (k, ch) in label.chars().enumerate() {
        let x = cx + k;
        if cy < grid.len() && x < grid[cy].len() {
            grid[cy][x] = ch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::PictorialDatabase;
    use crate::exec::query;

    #[test]
    fn render_shows_highlighted_labels() {
        let db = PictorialDatabase::with_us_map();
        let result = query(
            &db,
            "select city, loc from cities on us-map \
             at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 4000000",
        )
        .unwrap();
        let text = render(db.picture("us-map").unwrap(), &result.highlights, 100, 30);
        assert!(text.contains("New York"), "missing label:\n{text}");
        assert!(text.contains('*'), "missing highlight marker");
        assert!(text.contains('.'), "dim objects should still render");
        // Non-qualifying west-coast labels are absent.
        assert!(!text.contains("Seattle"));
    }

    #[test]
    fn render_regions_and_segments() {
        let db = PictorialDatabase::with_us_map();
        let zones = query(
            &db,
            "select zone, loc from time-zones on time-zone-map at loc overlapping {10 +- 9, 25 +- 25}",
        )
        .unwrap();
        let text = render(
            db.picture("time-zone-map").unwrap(),
            &zones.highlights,
            80,
            24,
        );
        assert!(text.contains('#'), "highlighted region outline expected");
        let hw = query(&db, "select hwy-name, loc from highways on highway-map at loc overlapping {50 +- 50, 25 +- 25} where hwy-name = 'I-10'").unwrap();
        let text2 = render(db.picture("highway-map").unwrap(), &hw.highlights, 80, 24);
        assert!(text2.contains('='), "highlighted segment expected");
    }

    #[test]
    fn geometry_of_grid() {
        let db = PictorialDatabase::with_us_map();
        let text = render(db.picture("us-map").unwrap(), &[], 60, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 22); // 20 rows + 2 borders
        assert!(lines.iter().all(|l| l.chars().count() == 62));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let db = PictorialDatabase::with_us_map();
        render(db.picture("us-map").unwrap(), &[], 4, 2);
    }
}
