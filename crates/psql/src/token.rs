//! PSQL tokens.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword `select`.
    Select,
    /// Keyword `from`.
    From,
    /// Keyword `on`.
    On,
    /// Keyword `at`.
    At,
    /// Keyword `where`.
    Where,
    /// Keyword `and`.
    And,
    /// Keyword `or`.
    Or,
    /// Keyword `not`.
    Not,
    /// Keyword `order` (of `order by`).
    Order,
    /// Keyword `by` (of `order by`).
    By,
    /// Keyword `asc`.
    Asc,
    /// Keyword `desc`.
    Desc,
    /// Keyword `limit`.
    Limit,
    /// Spatial operator `covering`.
    Covering,
    /// Spatial operator `covered-by`.
    CoveredBy,
    /// Spatial operator `overlapping`.
    Overlapping,
    /// Spatial operator `disjoined`.
    Disjoined,
    /// Keyword `nearest` (k-nearest-neighbour `at`-clause).
    Nearest,
    /// Identifier (may contain interior hyphens: `us-map`,
    /// `time-zones`).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single quotes).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+-` — the paper's `±` in window literals.
    PlusMinus,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Select => f.write_str("select"),
            Token::From => f.write_str("from"),
            Token::On => f.write_str("on"),
            Token::At => f.write_str("at"),
            Token::Where => f.write_str("where"),
            Token::And => f.write_str("and"),
            Token::Or => f.write_str("or"),
            Token::Not => f.write_str("not"),
            Token::Order => f.write_str("order"),
            Token::By => f.write_str("by"),
            Token::Asc => f.write_str("asc"),
            Token::Desc => f.write_str("desc"),
            Token::Limit => f.write_str("limit"),
            Token::Covering => f.write_str("covering"),
            Token::CoveredBy => f.write_str("covered-by"),
            Token::Overlapping => f.write_str("overlapping"),
            Token::Disjoined => f.write_str("disjoined"),
            Token::Nearest => f.write_str("nearest"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::PlusMinus => f.write_str("+-"),
            Token::Star => f.write_str("*"),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
        }
    }
}
