//! WAL record codec for dynamic picture writes.
//!
//! The server appends one [`InsertRecord`] to its write-ahead log
//! (`rtree_storage::wal`) for every acknowledged `INSERT`, and crash
//! recovery replays the decoded records through
//! [`PictorialDatabase::add_object`](crate::PictorialDatabase::add_object)
//! to rebuild the in-memory delta trees (DESIGN.md §14).
//!
//! The encoding is a fixed little-endian layout in the repo's
//! no-external-crates style (the WAL page framing and CRC live a layer
//! below, in the storage crate):
//!
//! ```text
//! u8            record kind (0 = insert; others reserved)
//! u16 LE        picture-name length, then that many UTF-8 bytes
//! u16 LE        label length, then that many UTF-8 bytes
//! u8            object kind (0 = point, 1 = segment, 2 = region)
//! point:        2 × f64 LE (x, y)
//! segment:      4 × f64 LE (ax, ay, bx, by)
//! region:       u16 LE vertex count, then 2 × f64 LE per vertex
//! ```

use crate::error::PsqlError;
use rtree_geom::{Point, Region, Segment, SpatialObject};

/// Record kind tag for an object insert (the only kind so far).
const KIND_INSERT: u8 = 0;

const OBJ_POINT: u8 = 0;
const OBJ_SEGMENT: u8 = 1;
const OBJ_REGION: u8 = 2;

/// One durable dynamic write: `add_object(picture, object, label)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRecord {
    /// Target picture name.
    pub picture: String,
    /// Object label (the picture-side name of the object).
    pub label: String,
    /// The spatial object inserted.
    pub object: SpatialObject,
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), PsqlError> {
    let len = u16::try_from(s.len()).map_err(|_| {
        PsqlError::Semantic(format!("string of {} bytes too long for WAL", s.len()))
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PsqlError> {
        let end = self.off.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.off..end];
                self.off = end;
                Ok(s)
            }
            None => Err(PsqlError::Semantic("truncated WAL record".into())),
        }
    }

    fn u8(&mut self) -> Result<u8, PsqlError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PsqlError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn f64(&mut self) -> Result<f64, PsqlError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, PsqlError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PsqlError::Semantic("non-UTF-8 string in WAL record".into()))
    }

    fn point(&mut self) -> Result<Point, PsqlError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }
}

impl InsertRecord {
    /// Serializes the record to the WAL payload encoding.
    pub fn encode(&self) -> Result<Vec<u8>, PsqlError> {
        let mut out = Vec::with_capacity(64);
        out.push(KIND_INSERT);
        put_str(&mut out, &self.picture)?;
        put_str(&mut out, &self.label)?;
        match &self.object {
            SpatialObject::Point(p) => {
                out.push(OBJ_POINT);
                put_point(&mut out, *p);
            }
            SpatialObject::Segment(s) => {
                out.push(OBJ_SEGMENT);
                put_point(&mut out, s.a);
                put_point(&mut out, s.b);
            }
            SpatialObject::Region(r) => {
                out.push(OBJ_REGION);
                let n = u16::try_from(r.vertices().len()).map_err(|_| {
                    PsqlError::Semantic(format!(
                        "region with {} vertices too large for WAL",
                        r.vertices().len()
                    ))
                })?;
                out.extend_from_slice(&n.to_le_bytes());
                for &v in r.vertices() {
                    put_point(&mut out, v);
                }
            }
        }
        Ok(out)
    }

    /// Decodes a record previously produced by
    /// [`encode`](InsertRecord::encode). Fails loudly on any framing
    /// violation — a decode error after WAL replay means the log layer
    /// let a partial record through, which recovery treats as fatal.
    pub fn decode(buf: &[u8]) -> Result<InsertRecord, PsqlError> {
        let mut c = Cursor { buf, off: 0 };
        let kind = c.u8()?;
        if kind != KIND_INSERT {
            return Err(PsqlError::Semantic(format!(
                "unknown WAL record kind {kind}"
            )));
        }
        let picture = c.str()?;
        let label = c.str()?;
        let object = match c.u8()? {
            OBJ_POINT => SpatialObject::Point(c.point()?),
            OBJ_SEGMENT => SpatialObject::Segment(Segment {
                a: c.point()?,
                b: c.point()?,
            }),
            OBJ_REGION => {
                let n = c.u16()? as usize;
                let mut verts = Vec::with_capacity(n);
                for _ in 0..n {
                    verts.push(c.point()?);
                }
                SpatialObject::Region(
                    Region::new(verts)
                        .map_err(|e| PsqlError::Semantic(format!("WAL region: {e}")))?,
                )
            }
            other => {
                return Err(PsqlError::Semantic(format!(
                    "unknown WAL object kind {other}"
                )))
            }
        };
        if c.off != buf.len() {
            return Err(PsqlError::Semantic(format!(
                "{} trailing bytes after WAL record",
                buf.len() - c.off
            )));
        }
        Ok(InsertRecord {
            picture,
            label,
            object,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Rect;

    fn samples() -> Vec<InsertRecord> {
        vec![
            InsertRecord {
                picture: "us-map".into(),
                label: "Pittsburgh".into(),
                object: SpatialObject::Point(Point::new(-79.99, 40.44)),
            },
            InsertRecord {
                picture: "highway-map".into(),
                label: "I-376".into(),
                object: SpatialObject::Segment(Segment {
                    a: Point::new(0.0, 1.5),
                    b: Point::new(-3.25, 7.0),
                }),
            },
            InsertRecord {
                picture: "lake-map".into(),
                label: "Erie".into(),
                object: SpatialObject::Region(Region::rectangle(Rect::new(1.0, 2.0, 3.0, 4.0))),
            },
        ]
    }

    #[test]
    fn roundtrip_all_object_kinds() {
        for rec in samples() {
            let bytes = rec.encode().unwrap();
            let back = InsertRecord::decode(&bytes).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn roundtrip_preserves_exact_float_bits() {
        let rec = InsertRecord {
            picture: "p".into(),
            label: "tiny".into(),
            object: SpatialObject::Point(Point::new(f64::MIN_POSITIVE, -0.0)),
        };
        let back = InsertRecord::decode(&rec.encode().unwrap()).unwrap();
        match back.object {
            SpatialObject::Point(p) => {
                assert_eq!(p.x.to_bits(), f64::MIN_POSITIVE.to_bits());
                assert_eq!(p.y.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let bytes = samples()[0].encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                InsertRecord::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(InsertRecord::decode(&extended).is_err());
    }

    #[test]
    fn unknown_kinds_rejected() {
        let mut bytes = samples()[0].encode().unwrap();
        bytes[0] = 9;
        assert!(InsertRecord::decode(&bytes).is_err());
    }
}
