//! Query results: the dual output channels of §2.2.
//!
//! "The output of PSQL queries is directed to two output devices. The
//! graphical output device displays the area of the picture containing
//! the qualifying spatial objects and the standard terminal displays the
//! alphanumeric data."

use pictorial_relational::Value;
use std::fmt;

/// A qualifying spatial object to highlight on the graphics output.
#[derive(Debug, Clone, PartialEq)]
pub struct Highlight {
    /// Picture the object lives on.
    pub picture: String,
    /// Object id within the picture.
    pub object: u64,
    /// Display label (the paper shows object names on the picture "to
    /// assist the user to visualize their correspondence").
    pub label: String,
}

/// The alphanumeric + pictorial result of a PSQL query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Qualifying objects for the graphics monitor.
    pub highlights: Vec<Highlight>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows qualified.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of the named column across all rows.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }
}

/// Renders the alphanumeric channel as an aligned text table (what the
/// "standard terminal" shows, Figure 2.1a).
impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.columns.is_empty() {
            return writeln!(f, "(empty result)");
        }
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        let header: Vec<String> = self.columns.clone();
        let rule: String = {
            let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
            "-".repeat(total)
        };
        writeln!(f, "{rule}")?;
        line(f, &header)?;
        writeln!(f, "{rule}")?;
        for row in &rendered {
            line(f, row)?;
        }
        writeln!(f, "{rule}")?;
        writeln!(
            f,
            "({} row{})",
            self.len(),
            if self.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet {
            columns: vec!["city".into(), "population".into()],
            rows: vec![
                vec![Value::str("Boston"), Value::Int(4_900_000)],
                vec![Value::str("NY"), Value::Int(19_600_000)],
            ],
            highlights: vec![],
        }
    }

    #[test]
    fn column_accessor() {
        let r = sample();
        let pops = r.column("population").unwrap();
        assert_eq!(pops, vec![&Value::Int(4_900_000), &Value::Int(19_600_000)]);
        assert!(r.column("altitude").is_none());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn display_is_aligned_table() {
        let text = sample().to_string();
        assert!(text.contains("| city   |"), "got:\n{text}");
        assert!(text.contains("| Boston |"));
        assert!(text.contains("(2 rows)"));
    }

    #[test]
    fn empty_result_display() {
        let r = ResultSet::default();
        assert!(r.to_string().contains("empty"));
        assert!(r.is_empty());
    }
}
