//! Juxtaposition: the simultaneous R-tree join of §2.2.
//!
//! "Juxtaposition is performed by simultaneous search on the two (or
//! more) spatial organizations which correspond to the same area … The
//! simultaneous use of several spatial organizations is analogous to the
//! use of two or more secondary indexes during the query processing."
//!
//! [`rtree_join`] descends both trees in lock-step, recursing only into
//! node pairs whose MBRs intersect; candidate leaf-entry pairs are
//! emitted for exact refinement by the caller. [`nested_loop_join`] is
//! the baseline the `fig2_2` experiment compares against.

use crate::picture::Picture;
use crate::spatial::SpatialOp;
use rtree_geom::Rect;
use rtree_index::{FrozenRTree, ItemId, Node, RTree};

/// Counters for join executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Node pairs (or node/leaf-entry pairs) examined.
    pub node_pairs_visited: u64,
    /// Candidate item pairs emitted (before exact refinement).
    pub candidates: u64,
}

/// Joins two R-trees, returning item-id pairs whose MBRs pass
/// [`SpatialOp::mbr_filter`]. For `Disjoined` — which no hierarchy of
/// bounding rectangles can prune — this degrades to the full cross
/// product of MBR-disjoint pairs.
pub fn rtree_join(
    a: &RTree,
    b: &RTree,
    op: SpatialOp,
    stats: &mut JoinStats,
) -> Vec<(ItemId, ItemId)> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return out;
    }
    if op == SpatialOp::Disjoined {
        // No pruning possible: enumerate and filter.
        for &(ra, ia) in &a.items() {
            for &(rb, ib) in &b.items() {
                stats.node_pairs_visited += 1;
                if !ra.intersects(&rb) {
                    stats.candidates += 1;
                    out.push((ia, ib));
                }
            }
        }
        return out;
    }
    join_nodes(a, a.root(), b, b.root(), op, stats, &mut out);
    out
}

fn join_nodes(
    a: &RTree,
    na: rtree_index::NodeId,
    b: &RTree,
    nb: rtree_index::NodeId,
    op: SpatialOp,
    stats: &mut JoinStats,
    out: &mut Vec<(ItemId, ItemId)>,
) {
    stats.node_pairs_visited += 1;
    let node_a = a.node(na);
    let node_b = b.node(nb);
    match (node_a.is_leaf(), node_b.is_leaf()) {
        (true, true) => {
            for ea in &node_a.entries {
                for eb in &node_b.entries {
                    if ea.mbr.intersects(&eb.mbr) && op.mbr_filter(&ea.mbr, &eb.mbr) {
                        stats.candidates += 1;
                        out.push((ea.child.expect_item(), eb.child.expect_item()));
                    }
                }
            }
        }
        (false, true) => {
            // Descend the deeper (left) side.
            for ea in &node_a.entries {
                if intersects_node(&ea.mbr, node_b) {
                    join_nodes(a, ea.child.expect_node(), b, nb, op, stats, out);
                }
            }
        }
        (true, false) => {
            for eb in &node_b.entries {
                if intersects_node(&eb.mbr, node_a) {
                    join_nodes(a, na, b, eb.child.expect_node(), op, stats, out);
                }
            }
        }
        (false, false) => {
            for ea in &node_a.entries {
                for eb in &node_b.entries {
                    if ea.mbr.intersects(&eb.mbr) {
                        join_nodes(
                            a,
                            ea.child.expect_node(),
                            b,
                            eb.child.expect_node(),
                            op,
                            stats,
                            out,
                        );
                    }
                }
            }
        }
    }
}

fn intersects_node(mbr: &Rect, node: &Node) -> bool {
    node.mbr().is_some_and(|m| m.intersects(mbr))
}

/// Juxtaposition join between two [`Picture`]s, merging each side's
/// frozen main tree with its buffered delta (DESIGN.md §14).
///
/// When both sides are packed, the pair set decomposes over the
/// (disjoint) main/delta partitions:
///
/// ```text
/// join(L, R) = frozen_join(L.main, R.main)      main  × main
///            ∪ rtree_join(L.all,  R.delta)       all   × delta
///            ∪ rtree_join(L.delta, R.main)       delta × main
/// ```
///
/// `L.all` is the pointer tree (which indexes main and delta objects
/// alike), so the middle term already covers `delta × delta`; the last
/// term filters right-side ids to the main prefix to avoid emitting
/// those pairs twice. With empty deltas this is exactly the old
/// `frozen_join` fast path, bit-identical pairs and counters included.
/// If either side was never packed, its pointer tree holds everything
/// and the plain lock-step join runs.
pub fn picture_join(
    lp: &Picture,
    rp: &Picture,
    op: SpatialOp,
    stats: &mut JoinStats,
) -> Vec<(ItemId, ItemId)> {
    match (lp.frozen(), rp.frozen()) {
        (Some(lf), Some(rf)) => {
            let mut out = frozen_join(lf, rf, op, stats);
            if rp.needs_merge() {
                out.extend(rtree_join(lp.tree(), rp.delta_tree(), op, stats));
            }
            if lp.needs_merge() {
                let cut = rp.packed_len() as u64;
                out.extend(
                    rtree_join(lp.delta_tree(), rp.tree(), op, stats)
                        .into_iter()
                        .filter(|&(_, ItemId(r))| r < cut),
                );
            }
            out
        }
        _ => rtree_join(lp.tree(), rp.tree(), op, stats),
    }
}

/// [`rtree_join`] over two frozen trees: the identical simultaneous
/// descent (same recursion structure, same counter increments, same
/// emission order) over the SoA arenas, so pair sequences and
/// [`JoinStats`] match the pointer-tree join bit for bit.
pub fn frozen_join(
    a: &FrozenRTree,
    b: &FrozenRTree,
    op: SpatialOp,
    stats: &mut JoinStats,
) -> Vec<(ItemId, ItemId)> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return out;
    }
    if op == SpatialOp::Disjoined {
        // No pruning possible: enumerate and filter.
        for &(ra, ia) in &a.items() {
            for &(rb, ib) in &b.items() {
                stats.node_pairs_visited += 1;
                if !ra.intersects(&rb) {
                    stats.candidates += 1;
                    out.push((ia, ib));
                }
            }
        }
        return out;
    }
    frozen_join_nodes(a, a.root_index(), b, b.root_index(), op, stats, &mut out);
    out
}

fn frozen_join_nodes(
    a: &FrozenRTree,
    na: u32,
    b: &FrozenRTree,
    nb: u32,
    op: SpatialOp,
    stats: &mut JoinStats,
    out: &mut Vec<(ItemId, ItemId)>,
) {
    stats.node_pairs_visited += 1;
    // Each arm tests one node's lanes against a single rectangle — the
    // shape `FrozenRTree::lane_intersect_mask` vectorizes. Consuming the
    // mask lowest-lane-first reproduces the scalar `0..entry_count` loop
    // exactly (NaN padding lanes never set a bit), so emission order and
    // counters stay bit-identical; fanouts past 64 lanes keep the scalar
    // loop.
    match (a.is_leaf_index(na), b.is_leaf_index(nb)) {
        (true, true) => {
            for la in 0..a.entry_count(na) {
                let ra = a.entry_mbr(na, la);
                if b.fanout() <= 64 {
                    let mut mask = b.lane_intersect_mask(nb, &ra);
                    while mask != 0 {
                        let lb = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let rb = b.entry_mbr(nb, lb);
                        if op.mbr_filter(&ra, &rb) {
                            stats.candidates += 1;
                            out.push((a.entry_child_item(na, la), b.entry_child_item(nb, lb)));
                        }
                    }
                } else {
                    for lb in 0..b.entry_count(nb) {
                        let rb = b.entry_mbr(nb, lb);
                        if ra.intersects(&rb) && op.mbr_filter(&ra, &rb) {
                            stats.candidates += 1;
                            out.push((a.entry_child_item(na, la), b.entry_child_item(nb, lb)));
                        }
                    }
                }
            }
        }
        (false, true) => {
            // Descend the deeper (left) side.
            let mb = b.node_mbr(nb);
            if let (Some(m), true) = (mb, a.fanout() <= 64) {
                let mut mask = a.lane_intersect_mask(na, &m);
                while mask != 0 {
                    let la = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    frozen_join_nodes(a, a.entry_child_node(na, la), b, nb, op, stats, out);
                }
            } else {
                for la in 0..a.entry_count(na) {
                    if mb.is_some_and(|m| m.intersects(&a.entry_mbr(na, la))) {
                        frozen_join_nodes(a, a.entry_child_node(na, la), b, nb, op, stats, out);
                    }
                }
            }
        }
        (true, false) => {
            let ma = a.node_mbr(na);
            if let (Some(m), true) = (ma, b.fanout() <= 64) {
                let mut mask = b.lane_intersect_mask(nb, &m);
                while mask != 0 {
                    let lb = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    frozen_join_nodes(a, na, b, b.entry_child_node(nb, lb), op, stats, out);
                }
            } else {
                for lb in 0..b.entry_count(nb) {
                    if ma.is_some_and(|m| m.intersects(&b.entry_mbr(nb, lb))) {
                        frozen_join_nodes(a, na, b, b.entry_child_node(nb, lb), op, stats, out);
                    }
                }
            }
        }
        (false, false) => {
            for la in 0..a.entry_count(na) {
                let ra = a.entry_mbr(na, la);
                if b.fanout() <= 64 {
                    let mut mask = b.lane_intersect_mask(nb, &ra);
                    while mask != 0 {
                        let lb = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        frozen_join_nodes(
                            a,
                            a.entry_child_node(na, la),
                            b,
                            b.entry_child_node(nb, lb),
                            op,
                            stats,
                            out,
                        );
                    }
                } else {
                    for lb in 0..b.entry_count(nb) {
                        if ra.intersects(&b.entry_mbr(nb, lb)) {
                            frozen_join_nodes(
                                a,
                                a.entry_child_node(na, la),
                                b,
                                b.entry_child_node(nb, lb),
                                op,
                                stats,
                                out,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The baseline: compare every item pair directly.
pub fn nested_loop_join(
    a: &RTree,
    b: &RTree,
    op: SpatialOp,
    stats: &mut JoinStats,
) -> Vec<(ItemId, ItemId)> {
    let mut out = Vec::new();
    for &(ra, ia) in &a.items() {
        for &(rb, ib) in &b.items() {
            stats.node_pairs_visited += 1;
            let keep = if op == SpatialOp::Disjoined {
                !ra.intersects(&rb)
            } else {
                ra.intersects(&rb) && op.mbr_filter(&ra, &rb)
            };
            if keep {
                stats.candidates += 1;
                out.push((ia, ib));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use packed_rtree_core::pack;
    use rtree_geom::Point;
    use rtree_index::RTreeConfig;

    fn tree_of_points(points: &[(f64, f64)]) -> RTree {
        pack(
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Rect::from_point(Point::new(x, y)), ItemId(i as u64)))
                .collect(),
            RTreeConfig::PAPER,
        )
    }

    fn tree_of_rects(rects: &[Rect]) -> RTree {
        pack(
            rects
                .iter()
                .enumerate()
                .map(|(i, &r)| (r, ItemId(i as u64)))
                .collect(),
            RTreeConfig::PAPER,
        )
    }

    fn grid_points(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| ((i % 10) as f64 * 7.0, (i / 10) as f64 * 7.0))
            .collect()
    }

    fn tiles() -> Vec<Rect> {
        let mut out = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let x = i as f64 * 17.5;
                let y = j as f64 * 17.5;
                out.push(Rect::new(x, y, x + 17.5, y + 17.5));
            }
        }
        out
    }

    #[test]
    fn join_matches_nested_loop() {
        let a = tree_of_points(&grid_points(80));
        let b = tree_of_rects(&tiles());
        for op in [
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
            SpatialOp::Covering,
            SpatialOp::Disjoined,
        ] {
            let mut s1 = JoinStats::default();
            let mut s2 = JoinStats::default();
            let mut fast = rtree_join(&a, &b, op, &mut s1);
            let mut slow = nested_loop_join(&a, &b, op, &mut s2);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow, "{op}");
        }
    }

    #[test]
    fn join_prunes_node_pairs() {
        let a = tree_of_points(&grid_points(100));
        let b = tree_of_rects(&tiles());
        let mut fast = JoinStats::default();
        let mut slow = JoinStats::default();
        rtree_join(&a, &b, SpatialOp::CoveredBy, &mut fast);
        nested_loop_join(&a, &b, SpatialOp::CoveredBy, &mut slow);
        assert!(
            fast.node_pairs_visited < slow.node_pairs_visited,
            "simultaneous search should beat nested loop: {} vs {}",
            fast.node_pairs_visited,
            slow.node_pairs_visited
        );
    }

    #[test]
    fn frozen_join_is_bit_identical() {
        use rtree_index::FrozenRTree;
        let a = tree_of_points(&grid_points(80));
        let b = tree_of_rects(&tiles());
        let fa = FrozenRTree::freeze(&a);
        let fb = FrozenRTree::freeze(&b);
        for op in [
            SpatialOp::CoveredBy,
            SpatialOp::Overlapping,
            SpatialOp::Covering,
            SpatialOp::Disjoined,
        ] {
            let mut sp = JoinStats::default();
            let mut sf = JoinStats::default();
            let pointer = rtree_join(&a, &b, op, &mut sp);
            let frozen = frozen_join(&fa, &fb, op, &mut sf);
            // Exact emission order, not just the same set.
            assert_eq!(frozen, pointer, "{op}");
            assert_eq!(sf, sp, "{op} counters");
        }
    }

    /// `picture_join` with buffered deltas on one or both sides must
    /// match the pair set of freshly re-packed pictures (pairs compared
    /// as sorted sets; deltas make the emission order differ).
    #[test]
    fn picture_join_merges_deltas() {
        use rtree_geom::SpatialObject;
        let mk = |pts: &[(f64, f64)], extra: &[(f64, f64)]| {
            let mut pic = Picture::new("p", Rect::new(0.0, 0.0, 100.0, 100.0), RTreeConfig::PAPER);
            for &(x, y) in pts {
                pic.add(SpatialObject::Point(Point::new(x, y)), "o");
            }
            pic.pack();
            for &(x, y) in extra {
                pic.add(SpatialObject::Point(Point::new(x, y)), "d");
            }
            pic
        };
        let grid = grid_points(60);
        let shifted: Vec<(f64, f64)> = grid.iter().map(|&(x, y)| (x + 1.0, y + 1.0)).collect();
        let extra_l = [(3.0, 3.0), (50.0, 50.0), (64.0, 8.0)];
        let extra_r = [(2.5, 2.5), (49.0, 51.0)];
        for (el, er) in [
            (&extra_l[..], &extra_r[..]), // deltas on both sides
            (&extra_l[..], &[][..]),      // left only
            (&[][..], &extra_r[..]),      // right only
            (&[][..], &[][..]),           // no deltas: frozen fast path
        ] {
            let live_l = mk(&grid, el);
            let live_r = mk(&shifted, er);
            let mut packed_l = live_l.clone();
            let mut packed_r = live_r.clone();
            packed_l.pack();
            packed_r.pack();
            for op in [
                SpatialOp::CoveredBy,
                SpatialOp::Overlapping,
                SpatialOp::Covering,
                SpatialOp::Disjoined,
            ] {
                let mut s1 = JoinStats::default();
                let mut s2 = JoinStats::default();
                let mut merged = picture_join(&live_l, &live_r, op, &mut s1);
                let mut packed = picture_join(&packed_l, &packed_r, op, &mut s2);
                merged.sort_unstable();
                packed.sort_unstable();
                assert_eq!(
                    merged,
                    packed,
                    "{op} diverged (deltas {}/{})",
                    el.len(),
                    er.len()
                );
            }
        }
    }

    #[test]
    fn frozen_join_mixed_depth() {
        use rtree_index::FrozenRTree;
        let a = tree_of_points(&grid_points(100));
        let b = tree_of_rects(&[Rect::new(0.0, 0.0, 70.0, 70.0)]);
        let mut sp = JoinStats::default();
        let mut sf = JoinStats::default();
        assert_eq!(
            frozen_join(
                &FrozenRTree::freeze(&a),
                &FrozenRTree::freeze(&b),
                SpatialOp::CoveredBy,
                &mut sf
            ),
            rtree_join(&a, &b, SpatialOp::CoveredBy, &mut sp)
        );
        assert_eq!(sf, sp);
    }

    #[test]
    fn empty_tree_join() {
        let a = tree_of_points(&[]);
        let b = tree_of_rects(&tiles());
        let mut stats = JoinStats::default();
        assert!(rtree_join(&a, &b, SpatialOp::CoveredBy, &mut stats).is_empty());
        assert!(rtree_join(&b, &a, SpatialOp::CoveredBy, &mut stats).is_empty());
    }

    #[test]
    fn different_heights_join() {
        // One big tree against a tiny one exercises the mixed-depth arms.
        let a = tree_of_points(&grid_points(100));
        let b = tree_of_rects(&[Rect::new(0.0, 0.0, 70.0, 70.0)]);
        let mut stats = JoinStats::default();
        let pairs = rtree_join(&a, &b, SpatialOp::CoveredBy, &mut stats);
        assert_eq!(pairs.len(), 100, "all grid points inside the one tile");
    }
}
