//! Recursive-descent parser for PSQL retrieve mappings.

use crate::ast::*;
use crate::error::PsqlError;
use crate::lexer::lex;
use crate::spatial::SpatialOp;
use crate::token::Token;
use pictorial_relational::{CompareOp, Value};
use rtree_geom::Rect;

/// Parses one PSQL statement: a retrieve mapping, or the administrative
/// `pack external <picture> budget <bytes> [threads <n>]` command.
pub fn parse_statement(input: &str) -> Result<Statement, PsqlError> {
    let tokens = lex(input)?;
    let is_pack_external = matches!(
        (tokens.first(), tokens.get(1)),
        (Some(Token::Ident(a)), Some(Token::Ident(b))) if a == "pack" && b == "external"
    );
    if !is_pack_external {
        return parse_query(input).map(|q| Statement::Retrieve(Box::new(q)));
    }
    let mut p = Parser { tokens, pos: 2 };
    let picture = p.ident()?;
    let keyword = p.ident()?;
    if keyword != "budget" {
        return Err(PsqlError::Parse(format!(
            "expected budget, found {keyword}"
        )));
    }
    let n = p.number()?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(PsqlError::Parse(format!(
            "budget must be a non-negative integer byte count, got {n}"
        )));
    }
    let mut threads = 0usize;
    if matches!(p.peek(), Some(Token::Ident(w)) if w == "threads") {
        p.pos += 1;
        let t = p.number()?;
        if t < 0.0 || t.fract() != 0.0 || t > 1024.0 {
            return Err(PsqlError::Parse(format!(
                "threads must be an integer in 0..=1024, got {t}"
            )));
        }
        threads = t as usize;
    }
    if p.pos != p.tokens.len() {
        return Err(PsqlError::Parse(format!(
            "trailing input at token {}: {}",
            p.pos,
            p.peek().map(|t| t.to_string()).unwrap_or_default()
        )));
    }
    Ok(Statement::PackExternal {
        picture,
        budget_bytes: n as u64,
        threads,
    })
}

/// Parses one PSQL query.
pub fn parse_query(input: &str) -> Result<Query, PsqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(PsqlError::Parse(format!(
            "trailing input at token {}: {}",
            p.pos,
            p.peek().map(|t| t.to_string()).unwrap_or_default()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), PsqlError> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            Some(t) => Err(PsqlError::Parse(format!("expected {want}, found {t}"))),
            None => Err(PsqlError::Parse(format!(
                "expected {want}, found end of input"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String, PsqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(PsqlError::Parse(format!("expected identifier, found {t}"))),
            None => Err(PsqlError::Parse(
                "expected identifier, found end of input".into(),
            )),
        }
    }

    fn number(&mut self) -> Result<f64, PsqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            Some(t) => Err(PsqlError::Parse(format!("expected number, found {t}"))),
            None => Err(PsqlError::Parse(
                "expected number, found end of input".into(),
            )),
        }
    }

    fn query(&mut self) -> Result<Query, PsqlError> {
        self.expect(&Token::Select)?;
        let select = self.targets()?;
        self.expect(&Token::From)?;
        let from = self.name_list()?;
        let on = if self.peek() == Some(&Token::On) {
            self.next();
            self.name_list()?
        } else {
            Vec::new()
        };
        let (at, nearest) = if self.peek() == Some(&Token::At) {
            self.next();
            self.at_or_nearest_clause()?
        } else {
            (None, None)
        };
        let where_clause = if self.peek() == Some(&Token::Where) {
            self.next();
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.peek() == Some(&Token::Order) {
            self.next();
            self.expect(&Token::By)?;
            let column = self.column_ref()?;
            let ascending = match self.peek() {
                Some(Token::Asc) => {
                    self.next();
                    true
                }
                Some(Token::Desc) => {
                    self.next();
                    false
                }
                _ => true,
            };
            Some(OrderBy { column, ascending })
        } else {
            None
        };
        let limit = if self.peek() == Some(&Token::Limit) {
            self.next();
            let n = self.number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(PsqlError::Parse(
                    "limit must be a non-negative integer".into(),
                ));
            }
            Some(n as usize)
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            on,
            at,
            nearest,
            where_clause,
            order_by,
            limit,
        })
    }

    fn targets(&mut self) -> Result<Vec<SelectItem>, PsqlError> {
        if self.peek() == Some(&Token::Star) {
            self.next();
            return Ok(vec![SelectItem::Star]);
        }
        let mut out = vec![self.target()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            out.push(self.target()?);
        }
        Ok(out)
    }

    fn target(&mut self) -> Result<SelectItem, PsqlError> {
        let first = self.ident()?;
        match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let arg = self.column_ref()?;
                self.expect(&Token::RParen)?;
                Ok(SelectItem::Function { name: first, arg })
            }
            Some(Token::Dot) => {
                self.next();
                let column = self.ident()?;
                Ok(SelectItem::Column(ColumnRef {
                    relation: Some(first),
                    column,
                }))
            }
            _ => Ok(SelectItem::Column(ColumnRef {
                relation: None,
                column: first,
            })),
        }
    }

    fn name_list(&mut self) -> Result<Vec<String>, PsqlError> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn column_ref(&mut self) -> Result<ColumnRef, PsqlError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.next();
            let column = self.ident()?;
            Ok(ColumnRef {
                relation: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                relation: None,
                column: first,
            })
        }
    }

    fn spatial_op(&mut self) -> Result<SpatialOp, PsqlError> {
        match self.next() {
            Some(Token::Covering) => Ok(SpatialOp::Covering),
            Some(Token::CoveredBy) => Ok(SpatialOp::CoveredBy),
            Some(Token::Overlapping) => Ok(SpatialOp::Overlapping),
            Some(Token::Disjoined) => Ok(SpatialOp::Disjoined),
            Some(t) => Err(PsqlError::Parse(format!(
                "expected spatial operator, found {t}"
            ))),
            None => Err(PsqlError::Parse(
                "expected spatial operator, found end of input".into(),
            )),
        }
    }

    /// After the `at` keyword: either the classic spatial predicate
    /// `<loc> <op> <loc-term>` or the k-NN form
    /// `<loc> nearest <k> {x +- dx, y +- dy}` (the window's centre is
    /// the query point).
    fn at_or_nearest_clause(
        &mut self,
    ) -> Result<(Option<AtClause>, Option<NearestClause>), PsqlError> {
        let lhs = self.column_ref()?;
        if self.peek() == Some(&Token::Nearest) {
            self.next();
            let n = self.number()?;
            if n < 1.0 || n.fract() != 0.0 {
                return Err(PsqlError::Parse(
                    "nearest count must be a positive integer".into(),
                ));
            }
            let point = self.window()?.center();
            return Ok((
                None,
                Some(NearestClause {
                    lhs,
                    k: n as usize,
                    point,
                }),
            ));
        }
        let op = self.spatial_op()?;
        let rhs = self.loc_term()?;
        Ok((Some(AtClause { lhs, op, rhs }), None))
    }

    fn loc_term(&mut self) -> Result<LocTerm, PsqlError> {
        match self.peek() {
            Some(Token::LBrace) => Ok(LocTerm::Window(self.window()?)),
            Some(Token::LParen) => {
                self.next();
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                Ok(LocTerm::Subquery(Box::new(q)))
            }
            _ => Ok(LocTerm::Column(self.column_ref()?)),
        }
    }

    /// The paper's window notation: `{x +- dx, y +- dy}`.
    fn window(&mut self) -> Result<Rect, PsqlError> {
        self.expect(&Token::LBrace)?;
        let cx = self.number()?;
        self.expect(&Token::PlusMinus)?;
        let dx = self.number()?;
        self.expect(&Token::Comma)?;
        let cy = self.number()?;
        self.expect(&Token::PlusMinus)?;
        let dy = self.number()?;
        self.expect(&Token::RBrace)?;
        if dx < 0.0 || dy < 0.0 {
            return Err(PsqlError::Parse(
                "window half-extents must be non-negative".into(),
            ));
        }
        // Literals like `1e400` parse to infinity, and `inf - inf` is
        // NaN — reject anything whose computed bounds leave the finite
        // rectangles the geometry layer is defined over, instead of
        // handing the executor a degenerate window.
        let (min_x, max_x) = (cx - dx, cx + dx);
        let (min_y, max_y) = (cy - dy, cy + dy);
        if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
            return Err(PsqlError::Parse(
                "window bounds must be finite coordinates".into(),
            ));
        }
        Ok(Rect::new(min_x, min_y, max_x, max_y))
    }

    fn expr(&mut self) -> Result<Expr, PsqlError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Token::Or) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PsqlError> {
        let mut lhs = self.unary_expr()?;
        while self.peek() == Some(&Token::And) {
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, PsqlError> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            Some(Token::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Expr, PsqlError> {
        let first = self.ident()?;
        let lhs = match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let arg = self.column_ref()?;
                self.expect(&Token::RParen)?;
                Operand::Function { name: first, arg }
            }
            Some(Token::Dot) => {
                self.next();
                let column = self.ident()?;
                Operand::Column(ColumnRef {
                    relation: Some(first),
                    column,
                })
            }
            _ => Operand::Column(ColumnRef {
                relation: None,
                column: first,
            }),
        };
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            Some(t) => return Err(PsqlError::Parse(format!("expected comparison, found {t}"))),
            None => {
                return Err(PsqlError::Parse(
                    "expected comparison, found end of input".into(),
                ))
            }
        };
        let rhs = match self.next() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Value::Int(n as i64)
                } else {
                    Value::Float(n)
                }
            }
            Some(Token::Str(s)) => Value::Str(s),
            Some(t) => return Err(PsqlError::Parse(format!("expected literal, found {t}"))),
            None => {
                return Err(PsqlError::Parse(
                    "expected literal, found end of input".into(),
                ))
            }
        };
        Ok(Expr::Compare { lhs, op, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_external_statement() {
        let s = parse_statement("pack external us-map budget 1048576").unwrap();
        assert_eq!(
            s,
            Statement::PackExternal {
                picture: "us-map".into(),
                budget_bytes: 1 << 20,
                threads: 0,
            }
        );
        // Optional threads clause.
        let s = parse_statement("pack external us-map budget 65536 threads 4").unwrap();
        assert_eq!(
            s,
            Statement::PackExternal {
                picture: "us-map".into(),
                budget_bytes: 64 * 1024,
                threads: 4,
            }
        );
        // A retrieve mapping still parses through the statement entry.
        let s = parse_statement("select city from cities on us-map").unwrap();
        assert!(matches!(s, Statement::Retrieve(_)));
        // Malformed variants.
        assert!(parse_statement("pack external us-map").is_err());
        assert!(parse_statement("pack external us-map budget -1").is_err());
        assert!(parse_statement("pack external us-map budget 1.5").is_err());
        assert!(parse_statement("pack external us-map budget 64 extra").is_err());
        assert!(parse_statement("pack external budget 64").is_err());
        assert!(parse_statement("pack external us-map budget 64 threads -1").is_err());
        assert!(parse_statement("pack external us-map budget 64 threads 1.5").is_err());
        assert!(parse_statement("pack external us-map budget 64 threads 4 junk").is_err());
    }

    #[test]
    fn figure_2_1_query() {
        let q = parse_query(
            "select city, state, population, loc from cities on us-map \
             at loc covered-by {4 +- 4, 11 +- 9} where population > 450000",
        )
        .unwrap();
        assert_eq!(q.select.len(), 4);
        assert_eq!(q.from, vec!["cities"]);
        assert_eq!(q.on, vec!["us-map"]);
        let at = q.at.unwrap();
        assert_eq!(at.op, SpatialOp::CoveredBy);
        assert_eq!(at.lhs, ColumnRef::plain("loc"));
        assert_eq!(at.rhs, LocTerm::Window(Rect::new(0.0, 2.0, 8.0, 20.0)));
        assert!(matches!(
            q.where_clause,
            Some(Expr::Compare {
                op: CompareOp::Gt,
                ..
            })
        ));
    }

    #[test]
    fn window_with_negative_centers() {
        // Centers left of / below the origin: `-5` must lex as one
        // negative number, not a stray minus.
        let q =
            parse_query("select city from cities on us-map at loc covered-by {-5 +- 2, -10 +- 3}")
                .unwrap();
        let at = q.at.unwrap();
        assert_eq!(at.rhs, LocTerm::Window(Rect::new(-7.0, -13.0, -3.0, -7.0)));
    }

    #[test]
    fn window_with_mixed_signs() {
        let q =
            parse_query("select city from cities on us-map at loc covered-by {-5 +- 2, 10 +- 3}")
                .unwrap();
        assert_eq!(
            q.at.unwrap().rhs,
            LocTerm::Window(Rect::new(-7.0, 7.0, -3.0, 13.0))
        );
    }

    #[test]
    fn window_negative_centers_tight_spacing() {
        // `+-` hugging the center and no blank after the comma must lex
        // identically to the spaced form.
        let q = parse_query("select city from cities on us-map at loc covered-by {-5+- 2,-10 +-3}")
            .unwrap();
        assert_eq!(
            q.at.unwrap().rhs,
            LocTerm::Window(Rect::new(-7.0, -13.0, -3.0, -7.0))
        );
    }

    #[test]
    fn window_negative_fractional_centers_with_sign_glyph() {
        let q = parse_query(
            "select city from cities on us-map at loc covered-by {-0.5 ± 0.25, 2.5 ± 0.5}",
        )
        .unwrap();
        assert_eq!(
            q.at.unwrap().rhs,
            LocTerm::Window(Rect::new(-0.75, 2.0, -0.25, 3.0))
        );
    }

    #[test]
    fn window_negative_half_extent_rejected() {
        // A negative center is meaningful; a negative half-extent is not.
        let err =
            parse_query("select city from cities on us-map at loc covered-by {-5 +- -2, 1 +- 1}")
                .unwrap_err();
        assert!(err.to_string().contains("half-extents"), "{err}");
    }

    #[test]
    fn figure_2_2_juxtaposition() {
        let q = parse_query(
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
        )
        .unwrap();
        assert_eq!(q.from, vec!["cities", "time-zones"]);
        assert_eq!(q.on, vec!["us-map", "time-zone-map"]);
        let at = q.at.unwrap();
        assert_eq!(at.lhs, ColumnRef::qualified("cities", "loc"));
        assert_eq!(
            at.rhs,
            LocTerm::Column(ColumnRef::qualified("time-zones", "loc"))
        );
    }

    #[test]
    fn nested_mapping() {
        let q = parse_query(
            "select lake, area, lakes.loc from lakes on lake-map \
             at lakes.loc covered-by \
             (select states.loc from states on state-map \
              at states.loc covered-by {4 +- 4, 11 +- 9})",
        )
        .unwrap();
        let at = q.at.unwrap();
        match at.rhs {
            LocTerm::Subquery(inner) => {
                assert_eq!(inner.from, vec!["states"]);
                assert!(inner.at.is_some());
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn star_and_functions() {
        let q = parse_query("select * from cities").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert!(q.on.is_empty());
        assert!(q.at.is_none());

        let q2 = parse_query("select lake, area(loc) from lakes where area(loc) >= 5").unwrap();
        assert!(matches!(&q2.select[1], SelectItem::Function { name, .. } if name == "area"));
        assert!(matches!(
            q2.where_clause,
            Some(Expr::Compare {
                lhs: Operand::Function { .. },
                ..
            })
        ));
    }

    #[test]
    fn boolean_precedence() {
        // a AND b OR c parses as (a AND b) OR c.
        let q = parse_query("select x from r where a = 1 and b = 2 or c = 3").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Or(_, _))));
        // Parentheses override.
        let q2 = parse_query("select x from r where a = 1 and (b = 2 or c = 3)").unwrap();
        assert!(matches!(q2.where_clause, Some(Expr::And(_, _))));
        // NOT binds tightest.
        let q3 = parse_query("select x from r where not a = 1 and b = 2").unwrap();
        assert!(matches!(q3.where_clause, Some(Expr::And(_, _))));
    }

    #[test]
    fn string_literals_in_where() {
        let q = parse_query("select city from cities where state = 'MA'").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Expr::Compare {
                rhs: Value::Str(_),
                ..
            })
        ));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_query("select from cities").is_err());
        assert!(parse_query("select x").is_err());
        assert!(parse_query("select x from cities at loc {1 +- 1, 2 +- 2}").is_err());
        assert!(parse_query("select x from cities where population >").is_err());
        assert!(parse_query("select x from r where a = 1 extra").is_err());
        assert!(parse_query("select x from r at loc covered-by {1 +- -1, 2 +- 2}").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse_query(
            "select city, population from cities where population > 1000000 \
             order by population desc limit 5",
        )
        .unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.column, ColumnRef::plain("population"));
        assert!(!ob.ascending);
        assert_eq!(q.limit, Some(5));
        // Default direction is ascending; limit standalone works.
        let q2 = parse_query("select city from cities order by city").unwrap();
        assert!(q2.order_by.unwrap().ascending);
        assert_eq!(q2.limit, None);
        let q3 = parse_query("select city from cities limit 3").unwrap();
        assert_eq!(q3.limit, Some(3));
        // Bad limits rejected.
        assert!(parse_query("select city from cities limit 2.5").is_err());
        assert!(parse_query("select city from cities limit -1").is_err());
        assert!(parse_query("select city from cities order population").is_err());
    }

    #[test]
    fn nearest_clause() {
        let q =
            parse_query("select city from cities on us-map at loc nearest 3 {50 +- 0, 25 +- 0}")
                .unwrap();
        assert!(q.at.is_none());
        let nearest = q.nearest.unwrap();
        assert_eq!(nearest.lhs, ColumnRef::plain("loc"));
        assert_eq!(nearest.k, 3);
        assert_eq!(nearest.point, rtree_geom::Point { x: 50.0, y: 25.0 });
        // Non-zero half-extents are tolerated; only the centre matters.
        let q2 =
            parse_query("select city from cities on us-map at loc nearest 1 {10 +- 5, 20 +- 5}")
                .unwrap();
        assert_eq!(
            q2.nearest.unwrap().point,
            rtree_geom::Point { x: 10.0, y: 20.0 }
        );
    }

    #[test]
    fn nearest_count_must_be_positive_integer() {
        for bad in ["nearest 0", "nearest 2.5", "nearest -1"] {
            let err = parse_query(&format!(
                "select city from cities on us-map at loc {bad} {{50 +- 0, 25 +- 0}}"
            ))
            .unwrap_err();
            assert!(err.to_string().contains("positive integer"), "{bad}: {err}");
        }
    }

    #[test]
    fn float_and_int_literals() {
        let q = parse_query("select x from r where a > 2.5").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Expr::Compare {
                rhs: Value::Float(_),
                ..
            })
        ));
        let q2 = parse_query("select x from r where a > 450000").unwrap();
        assert!(matches!(
            q2.where_clause,
            Some(Expr::Compare {
                rhs: Value::Int(450000),
                ..
            })
        ));
    }
}
