//! PSQL lexer.
//!
//! Identifiers may contain interior hyphens (`us-map`, `covered-by`,
//! `time-zones`), matching the paper's naming; a `-` is part of an
//! identifier when it is directly surrounded by identifier characters.
//! `+-` spells the paper's `±` in window literals. Negative numbers are
//! written with a leading `-` immediately before the digits.

use crate::error::PsqlError;
use crate::token::Token;

/// Tokenizes a PSQL query string.
pub fn lex(input: &str) -> Result<Vec<Token>, PsqlError> {
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '±' => {
                out.push(Token::PlusMinus);
                i += 1;
            }
            '+' => {
                if chars.get(i + 1) == Some(&'-') {
                    out.push(Token::PlusMinus);
                    i += 2;
                } else {
                    return Err(PsqlError::Lex(format!("stray '+' at offset {i}")));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(PsqlError::Lex("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '-' if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let (n, used) = lex_number(&chars[i..])?;
                out.push(Token::Number(n));
                i += used;
            }
            c if c.is_ascii_digit() => {
                let (n, used) = lex_number(&chars[i..])?;
                out.push(Token::Number(n));
                i += used;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() {
                    let c = chars[i];
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else if c == '-'
                        && chars
                            .get(i + 1)
                            .is_some_and(|n| n.is_alphanumeric() || *n == '_')
                    {
                        // Interior hyphen: part of the identifier.
                        i += 2;
                    } else {
                        break;
                    }
                }
                let word: String = chars[start..i].iter().collect();
                out.push(keyword_or_ident(&word));
            }
            other => {
                return Err(PsqlError::Lex(format!(
                    "unexpected character {other:?} at offset {i}"
                )))
            }
        }
    }
    Ok(out)
}

fn lex_number(chars: &[char]) -> Result<(f64, usize), PsqlError> {
    let mut i = 0;
    if chars[0] == '-' {
        i = 1;
    }
    let start = i;
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
        i += 1;
    }
    if i == start {
        return Err(PsqlError::Lex("expected digits".into()));
    }
    let text: String = chars[..i].iter().collect();
    text.parse::<f64>()
        .map(|n| (n, i))
        .map_err(|e| PsqlError::Lex(format!("bad number {text:?}: {e}")))
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_lowercase().as_str() {
        "select" => Token::Select,
        "from" => Token::From,
        "on" => Token::On,
        "at" => Token::At,
        "where" => Token::Where,
        "and" => Token::And,
        "or" => Token::Or,
        "not" => Token::Not,
        "order" => Token::Order,
        "by" => Token::By,
        "asc" => Token::Asc,
        "desc" => Token::Desc,
        "limit" => Token::Limit,
        "covering" => Token::Covering,
        "covered-by" => Token::CoveredBy,
        "overlapping" => Token::Overlapping,
        "disjoined" => Token::Disjoined,
        "nearest" => Token::Nearest,
        _ => Token::Ident(word.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_1_query_lexes() {
        let toks = lex("select city,state,population,loc from cities on us-map \
             at loc covered-by {4 +- 4, 11 +- 9} where population > 450000")
        .unwrap();
        assert_eq!(toks[0], Token::Select);
        assert!(toks.contains(&Token::Ident("us-map".into())));
        assert!(toks.contains(&Token::CoveredBy));
        assert!(toks.contains(&Token::PlusMinus));
        assert!(toks.contains(&Token::Number(450000.0)));
    }

    #[test]
    fn hyphenated_identifiers() {
        let toks = lex("time-zones us-map hour-diff").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("time-zones".into()),
                Token::Ident("us-map".into()),
                Token::Ident("hour-diff".into()),
            ]
        );
    }

    #[test]
    fn covered_by_is_keyword_not_ident() {
        assert_eq!(lex("covered-by").unwrap(), vec![Token::CoveredBy]);
        assert_eq!(lex("COVERED-BY").unwrap(), vec![Token::CoveredBy]);
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            lex("3.5 -2 10").unwrap(),
            vec![Token::Number(3.5), Token::Number(-2.0), Token::Number(10.0)]
        );
    }

    #[test]
    fn plus_minus_and_unicode_pm() {
        assert_eq!(lex("4 +- 4").unwrap()[1], Token::PlusMinus);
        assert_eq!(lex("4 ± 4").unwrap()[1], Token::PlusMinus);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("= <> < <= > >=").unwrap(),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            lex("'New York'").unwrap(),
            vec![Token::Str("New York".into())]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn dotted_references() {
        let toks = lex("cities.loc").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("cities".into()),
                Token::Dot,
                Token::Ident("loc".into()),
            ]
        );
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(lex("select @").is_err());
        assert!(lex("+5").is_err());
    }

    #[test]
    fn trailing_hyphen_not_part_of_ident() {
        // `x -1` lexes as ident then number; `x- 1` is an error case the
        // hyphen rule avoids by not consuming the dangling hyphen.
        let toks = lex("x -1").unwrap();
        assert_eq!(toks, vec![Token::Ident("x".into()), Token::Number(-1.0)]);
    }
}
