//! Pictures: collections of spatial objects indexed by a packed R-tree.

use crate::spatial::SpatialOp;
use packed_rtree_core::pack;
use rtree_geom::{Point, Rect, SpatialObject};
use rtree_index::{FrozenRTree, ItemId, RTree, RTreeConfig, SearchScratch, SearchStats};

/// A picture: named spatial objects over a frame, indexed by an R-tree.
///
/// "Each pictorial domain element that corresponds to a tuple of the
/// relation appears on a leaf-node of the R-tree" (§2.1): object ids here
/// are the pointer values stored in relations' `loc` columns.
///
/// After [`pack`](Picture::pack) the tree is also compiled into a
/// [`FrozenRTree`] — the cache-conscious SoA layout — and every query
/// path serves from it (results and counters are bit-identical to the
/// pointer tree). A dynamic [`add`](Picture::add) invalidates the frozen
/// form until the next pack.
///
/// `Clone` deep-copies objects, labels and the R-tree so a snapshot
/// builder can re-pack a copy without disturbing concurrent readers.
#[derive(Debug, Clone)]
pub struct Picture {
    name: String,
    frame: Rect,
    objects: Vec<SpatialObject>,
    labels: Vec<String>,
    tree: RTree,
    frozen: Option<FrozenRTree>,
}

impl Picture {
    /// Creates an empty picture over `frame`.
    pub fn new(name: &str, frame: Rect, config: RTreeConfig) -> Self {
        Picture {
            name: name.to_owned(),
            frame,
            objects: Vec::new(),
            labels: Vec::new(),
            tree: RTree::new(config),
            frozen: None,
        }
    }

    /// Picture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The picture's frame rectangle.
    pub fn frame(&self) -> Rect {
        self.frame
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the picture has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Adds an object (dynamically, via Guttman INSERT), returning its
    /// object id — the pointer value for `loc` columns.
    pub fn add(&mut self, object: SpatialObject, label: &str) -> u64 {
        let id = self.objects.len() as u64;
        self.tree.insert(object.mbr(), ItemId(id));
        self.objects.push(object);
        self.labels.push(label.to_owned());
        // The frozen compilation no longer matches the pointer tree.
        self.frozen = None;
        id
    }

    /// Re-packs the picture's R-tree with the paper's PACK algorithm —
    /// the "initial packing" applied once the (static) picture is loaded
    /// — and compiles the result into the frozen SoA layout.
    pub fn pack(&mut self) {
        let items: Vec<(Rect, ItemId)> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.mbr(), ItemId(i as u64)))
            .collect();
        self.tree = pack(items, self.tree.config());
        self.frozen = Some(FrozenRTree::freeze(&self.tree));
    }

    /// The object with id `id`.
    pub fn object(&self, id: u64) -> Option<&SpatialObject> {
        self.objects.get(id as usize)
    }

    /// The label of object `id`.
    pub fn label(&self, id: u64) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// The picture's R-tree.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The frozen compilation of the tree, present since the last
    /// [`pack`](Picture::pack) (and invalidated by [`add`](Picture::add)).
    pub fn frozen(&self) -> Option<&FrozenRTree> {
        self.frozen.as_ref()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = u64> {
        0..self.objects.len() as u64
    }

    /// Direct spatial search: object ids satisfying `obj op window`,
    /// pruned through the R-tree and refined with exact geometry.
    pub fn search_window(&self, op: SpatialOp, window: &Rect, stats: &mut SearchStats) -> Vec<u64> {
        let candidates: Vec<ItemId> = match (op, &self.frozen) {
            // The paper's SEARCH: WITHIN at the leaves.
            (SpatialOp::CoveredBy, Some(f)) => f.search_within(window, stats),
            (SpatialOp::CoveredBy, None) => self.tree.search_within(window, stats),
            // Overlap/cover candidates must intersect the window.
            (SpatialOp::Overlapping | SpatialOp::Covering, Some(f)) => {
                f.search_intersecting(window, stats)
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, None) => {
                self.tree.search_intersecting(window, stats)
            }
            // Disjointness cannot be pruned; enumerate everything.
            (SpatialOp::Disjoined, _) => {
                stats.queries += 1;
                self.tree.items().into_iter().map(|(_, id)| id).collect()
            }
        };
        candidates
            .into_iter()
            .map(|ItemId(id)| id)
            .filter(|&id| op.eval_window(&self.objects[id as usize], window))
            .collect()
    }

    /// [`search_window`](Self::search_window) without statistics: the
    /// executor's hot path. Tree traversal reuses `scratch`, so repeated
    /// queries (e.g. one per inner tuple of a nested mapping) allocate
    /// nothing once the scratch buffers have warmed up.
    pub fn search_window_fast(
        &self,
        op: SpatialOp,
        window: &Rect,
        scratch: &mut SearchScratch,
    ) -> Vec<u64> {
        match (op, &self.frozen) {
            (SpatialOp::CoveredBy, Some(f)) => {
                self.refine(op, window, f.search_within_into(window, scratch))
            }
            (SpatialOp::CoveredBy, None) => {
                self.refine(op, window, self.tree.search_within_into(window, scratch))
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, Some(f)) => {
                self.refine(op, window, f.search_intersecting_into(window, scratch))
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, None) => self.refine(
                op,
                window,
                self.tree.search_intersecting_into(window, scratch),
            ),
            (SpatialOp::Disjoined, _) => self
                .object_ids()
                .filter(|&id| op.eval_window(&self.objects[id as usize], window))
                .collect(),
        }
    }

    /// The `k` objects whose MBRs are nearest to `p`, ordered by
    /// ascending distance, with Table 1 counters.
    pub fn nearest(&self, p: Point, k: usize, stats: &mut SearchStats) -> Vec<u64> {
        let neighbors = match &self.frozen {
            Some(f) => f.nearest_neighbors(p, k, stats),
            None => self.tree.nearest_neighbors(p, k, stats),
        };
        neighbors.into_iter().map(|n| n.item.0).collect()
    }

    /// [`nearest`](Self::nearest) without statistics: the executor's
    /// `at … nearest` path. The branch-and-bound heap lives in the
    /// scratch's embedded [`KnnScratch`](rtree_index::KnnScratch), so
    /// repeated queries allocate nothing once warmed up.
    pub fn nearest_fast(&self, p: Point, k: usize, scratch: &mut SearchScratch) -> Vec<u64> {
        let knn = scratch.knn();
        let neighbors = match &self.frozen {
            Some(f) => f.nearest_neighbors_into(p, k, knn),
            None => self.tree.nearest_neighbors_into(p, k, knn),
        };
        neighbors.iter().map(|n| n.item.0).collect()
    }

    fn refine(&self, op: SpatialOp, window: &Rect, candidates: &[ItemId]) -> Vec<u64> {
        candidates
            .iter()
            .map(|&ItemId(id)| id)
            .filter(|&id| op.eval_window(&self.objects[id as usize], window))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::{Point, Region};

    fn sample() -> Picture {
        let mut pic = Picture::new(
            "test",
            Rect::new(0.0, 0.0, 100.0, 100.0),
            RTreeConfig::PAPER,
        );
        for i in 0..20 {
            let p = Point::new((i * 5) as f64, (i * 5) as f64);
            pic.add(SpatialObject::Point(p), &format!("pt{i}"));
        }
        pic.add(
            SpatialObject::Region(Region::rectangle(Rect::new(10.0, 10.0, 30.0, 30.0))),
            "zone",
        );
        pic
    }

    #[test]
    fn add_and_lookup() {
        let pic = sample();
        assert_eq!(pic.len(), 21);
        assert_eq!(pic.label(0), Some("pt0"));
        assert_eq!(pic.label(20), Some("zone"));
        assert!(pic.object(99).is_none());
    }

    #[test]
    fn pack_preserves_searchability() {
        let mut pic = sample();
        let mut stats = SearchStats::default();
        let before = pic.search_window(
            SpatialOp::CoveredBy,
            &Rect::new(0.0, 0.0, 26.0, 26.0),
            &mut stats,
        );
        pic.pack();
        pic.tree().validate_with(false).unwrap();
        let mut after = pic.search_window(
            SpatialOp::CoveredBy,
            &Rect::new(0.0, 0.0, 26.0, 26.0),
            &mut stats,
        );
        let mut before = before;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // pt0..pt5 (0,5,10,15,20,25) plus the zone region [10,30]? No:
        // the zone's max corner (30,30) exceeds 26, so only the points.
        assert_eq!(after, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn overlap_vs_covered_by() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let window = Rect::new(5.0, 5.0, 26.0, 26.0);
        let covered = pic.search_window(SpatialOp::CoveredBy, &window, &mut stats);
        let overlapping = pic.search_window(SpatialOp::Overlapping, &window, &mut stats);
        // The zone region overlaps the window but is not covered by it.
        assert!(!covered.contains(&20));
        assert!(overlapping.contains(&20));
    }

    #[test]
    fn pack_freezes_and_add_invalidates() {
        let mut pic = sample();
        assert!(pic.frozen().is_none());
        pic.pack();
        assert!(pic.frozen().is_some());
        // Frozen and pointer paths agree on results and counters.
        let window = Rect::new(0.0, 0.0, 40.0, 40.0);
        let mut frozen_stats = SearchStats::default();
        let mut tree_stats = SearchStats::default();
        let via_frozen = pic.search_window(SpatialOp::Overlapping, &window, &mut frozen_stats);
        let via_tree: Vec<u64> = pic
            .tree()
            .search_intersecting(&window, &mut tree_stats)
            .into_iter()
            .map(|ItemId(id)| id)
            .collect();
        assert_eq!(via_frozen, via_tree);
        assert_eq!(frozen_stats, tree_stats);
        pic.add(SpatialObject::Point(Point::new(1.0, 2.0)), "late");
        assert!(pic.frozen().is_none(), "dynamic insert must invalidate");
    }

    #[test]
    fn nearest_paths_agree() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let mut scratch = SearchScratch::new();
        let p = Point::new(33.0, 12.0);
        let with_stats = pic.nearest(p, 5, &mut stats);
        let fast = pic.nearest_fast(p, 5, &mut scratch);
        assert_eq!(with_stats, fast);
        assert_eq!(with_stats.len(), 5);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn disjoined_search() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let window = Rect::new(0.0, 0.0, 26.0, 26.0);
        let mut disjoint = pic.search_window(SpatialOp::Disjoined, &window, &mut stats);
        disjoint.sort_unstable();
        // Points at 30.. and beyond (ids 6..19) are disjoint from the
        // window; zone intersects it.
        assert_eq!(disjoint, (6..20).collect::<Vec<u64>>());
    }
}
