//! Pictures: collections of spatial objects indexed by a packed R-tree.

use crate::spatial::SpatialOp;
use packed_rtree_core::pack;
use rtree_extpack::{ExtPackConfig, ExtPackError, ExtPackResult, ExtPackStats, NodeSink};
use rtree_geom::{Point, Rect, SpatialObject};
use rtree_index::{
    BatchScratch, BottomUpBuilder, FrozenChild, FrozenRTree, ItemId, Neighbor, NodeId, RTree,
    RTreeConfig, SearchScratch, SearchStats,
};
use rtree_storage::{codec, PageId, Pager};
use std::collections::HashMap;

/// Node-count threshold below which queries keep serving the pointer
/// tree even when a frozen compilation exists. On trees the size of the
/// paper's Table 1 (J=900, ~300 nodes at M=4) the whole pointer arena
/// is cache-resident and its direct child links beat the frozen
/// layout's lane arithmetic on the scalar fallback build, so freezing
/// a small picture must never make its queries slower there. (With the
/// `simd` kernels the frozen path wins even at Table-1 size, but the
/// threshold is sized for the weakest compiled path.) The crossover
/// sits well under 10k nodes; 4096 keeps a safety margin on the
/// pointer side.
const FROZEN_QUERY_MIN_NODES: usize = 4096;

/// A picture: named spatial objects over a frame, indexed by an R-tree.
///
/// "Each pictorial domain element that corresponds to a tuple of the
/// relation appears on a leaf-node of the R-tree" (§2.1): object ids here
/// are the pointer values stored in relations' `loc` columns.
///
/// After [`pack`](Picture::pack) the tree is also compiled into a
/// [`FrozenRTree`] — the cache-conscious SoA layout — and every query
/// path serves from it (results and counters are bit-identical to the
/// pointer tree).
///
/// A dynamic [`add`](Picture::add) after a pack **no longer invalidates
/// the frozen form** (the §3.4 "update problem"). The new object goes
/// into a small in-memory Guttman **delta tree** instead, and every
/// query path merges frozen-main and delta results: the frozen arena
/// covers object ids `[0, packed_len)`, the delta covers
/// `[packed_len, len)`, so the two candidate sets are disjoint by
/// construction. The next [`pack`](Picture::pack) (an explicit REPACK or
/// the server's background merge) folds the delta back into a freshly
/// packed + frozen main tree. DESIGN.md §14 describes the full write
/// path, including the WAL that makes buffered adds durable.
///
/// `Clone` deep-copies objects, labels and the R-trees so a snapshot
/// builder can re-pack a copy without disturbing concurrent readers.
#[derive(Debug, Clone)]
pub struct Picture {
    name: String,
    frame: Rect,
    objects: Vec<SpatialObject>,
    labels: Vec<String>,
    /// The pointer tree over **all** objects — the fallback query path
    /// and the substrate `pack`/`freeze` compile from.
    tree: RTree,
    frozen: Option<FrozenRTree>,
    /// Guttman tree over objects added since the last pack (ids
    /// `packed_len..len`). Empty whenever `frozen` is `None`.
    delta: RTree,
    /// Objects covered by the frozen compilation (prefix of `objects`).
    packed_len: usize,
    /// Test hook: serve frozen queries regardless of tree size, so the
    /// differential fuzzer can drive the frozen+delta merge path on
    /// small cases (see [`force_frozen_queries`]).
    ///
    /// [`force_frozen_queries`]: Picture::force_frozen_queries
    force_frozen: bool,
}

impl Picture {
    /// Creates an empty picture over `frame`.
    pub fn new(name: &str, frame: Rect, config: RTreeConfig) -> Self {
        Picture {
            name: name.to_owned(),
            frame,
            objects: Vec::new(),
            labels: Vec::new(),
            tree: RTree::new(config),
            frozen: None,
            delta: RTree::new(config),
            packed_len: 0,
            force_frozen: false,
        }
    }

    /// Picture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The picture's frame rectangle.
    pub fn frame(&self) -> Rect {
        self.frame
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the picture has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Adds an object (dynamically, via Guttman INSERT), returning its
    /// object id — the pointer value for `loc` columns.
    pub fn add(&mut self, object: SpatialObject, label: &str) -> u64 {
        let id = self.objects.len() as u64;
        self.tree.insert(object.mbr(), ItemId(id));
        if self.frozen.is_some() {
            // The frozen arena keeps serving ids [0, packed_len); the
            // new object joins the delta tree and queries merge both.
            self.delta.insert(object.mbr(), ItemId(id));
        }
        self.objects.push(object);
        self.labels.push(label.to_owned());
        id
    }

    /// Re-packs the picture's R-tree with the paper's PACK algorithm —
    /// the "initial packing" applied once the (static) picture is loaded
    /// — and compiles the result into the frozen SoA layout.
    pub fn pack(&mut self) {
        let items: Vec<(Rect, ItemId)> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.mbr(), ItemId(i as u64)))
            .collect();
        self.tree = pack(items, self.tree.config());
        self.frozen = Some(FrozenRTree::freeze(&self.tree));
        // The delta is folded into the fresh main tree.
        self.delta = RTree::new(self.tree.config());
        self.packed_len = self.objects.len();
    }

    /// Re-packs the picture with the **out-of-core** external packer
    /// (`PACK EXTERNAL <picture> BUDGET <bytes> [THREADS <n>]` in PSQL):
    /// object MBRs stream through budget-bounded spill runs into packed
    /// disk pages — overlapped, multi-threaded, and partition-merged
    /// when `threads ≥ 2` — while a [`NodeSink`] rebuilds the pointer
    /// tree **and** the frozen SoA arena directly from the emission
    /// stream (no post-pack re-read of the destination, no separate
    /// freeze pass). Bit-identical to [`pack`](Picture::pack) at every
    /// budget and thread count, with peak resident buffer memory bounded
    /// by `memory_budget_bytes` instead of the dataset size. `threads`
    /// 0 selects the machine default. Returns the packer's counters.
    pub fn pack_external(
        &mut self,
        memory_budget_bytes: u64,
        threads: usize,
    ) -> ExtPackResult<ExtPackStats> {
        let items: Vec<(Rect, ItemId)> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.mbr(), ItemId(i as u64)))
            .collect();
        let dest = Pager::temp().map_err(ExtPackError::Io)?;
        let cfg = ExtPackConfig {
            tree: self.tree.config(),
            threads,
            ..ExtPackConfig::new(memory_budget_bytes)
        };
        let mut sink = RebuildSink {
            builder: BottomUpBuilder::new(self.tree.config()),
            nodes: HashMap::new(),
            by_page: HashMap::new(),
            root: None,
            root_page: 0,
            depth: 0,
        };
        let (_disk, stats) = rtree_extpack::pack_external_with_sink(items, &cfg, &dest, &mut sink)?;
        if self.objects.is_empty() {
            // The packer emits a single empty leaf page; the canonical
            // in-memory form of that is an empty tree, so discard the
            // sink state and build the empty forms directly.
            self.tree = BottomUpBuilder::new(self.tree.config()).finish_empty();
            self.frozen = Some(FrozenRTree::freeze(&self.tree));
        } else {
            let root = sink.root.expect("non-empty pack emits a root");
            self.tree = sink.builder.finish(root);
            let mut nodes = sink.nodes;
            self.frozen = Some(FrozenRTree::from_nodes(
                self.tree.config(),
                sink.depth,
                self.objects.len(),
                sink.root_page,
                |key| {
                    nodes
                        .remove(&key)
                        .expect("every referenced page was emitted")
                },
            ));
        }
        self.delta = RTree::new(self.tree.config());
        self.packed_len = self.objects.len();
        Ok(stats)
    }

    /// The object with id `id`.
    pub fn object(&self, id: u64) -> Option<&SpatialObject> {
        self.objects.get(id as usize)
    }

    /// The label of object `id`.
    pub fn label(&self, id: u64) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// The picture's R-tree.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The frozen compilation of the tree, present since the last
    /// [`pack`](Picture::pack). It covers ids `[0, packed_len)`; objects
    /// added since live in the [`delta_tree`](Picture::delta_tree).
    pub fn frozen(&self) -> Option<&FrozenRTree> {
        self.frozen.as_ref()
    }

    /// The in-memory Guttman delta tree over objects added since the
    /// last pack (ids `packed_len..len`). Empty on a never-packed or
    /// freshly packed picture.
    pub fn delta_tree(&self) -> &RTree {
        &self.delta
    }

    /// Objects buffered in the delta tree since the last pack.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Objects covered by the frozen compilation (prefix of the object
    /// id space). Zero on a never-packed picture.
    pub fn packed_len(&self) -> usize {
        self.packed_len
    }

    /// `true` when the picture has buffered dynamic writes the next
    /// merge-repack should fold into the main tree.
    pub fn needs_merge(&self) -> bool {
        !self.delta.is_empty()
    }

    /// The frozen compilation *if queries should serve from it*: present
    /// and large enough that the SoA layout wins over the pointer tree.
    fn query_frozen(&self) -> Option<&FrozenRTree> {
        self.frozen
            .as_ref()
            .filter(|f| self.force_frozen || f.node_count() >= FROZEN_QUERY_MIN_NODES)
    }

    /// Serve frozen queries regardless of tree size. The size gate in
    /// [`serves_frozen_queries`](Picture::serves_frozen_queries) is a
    /// performance heuristic only; the differential fuzzer flips this to
    /// drive the frozen+delta merged query path on small generated
    /// pictures, where the gate would otherwise route around it.
    #[doc(hidden)]
    pub fn force_frozen_queries(&mut self) {
        self.force_frozen = true;
    }

    /// `true` when spatial queries on this picture are served from the
    /// frozen arena rather than the pointer tree. Small packed pictures
    /// deliberately stay on the pointer path (see
    /// `FROZEN_QUERY_MIN_NODES`); both paths are bit-identical, so this
    /// only changes performance, never results.
    pub fn serves_frozen_queries(&self) -> bool {
        self.query_frozen().is_some()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = u64> {
        0..self.objects.len() as u64
    }

    /// Window candidates buffered in the delta tree (empty when there is
    /// no delta), with traversal counters folded into `stats`.
    fn delta_window_candidates(
        &self,
        within: bool,
        window: &Rect,
        stats: &mut SearchStats,
    ) -> Vec<ItemId> {
        if self.delta.is_empty() {
            return Vec::new();
        }
        let mut ds = SearchStats::default();
        let out = if within {
            self.delta.search_within(window, &mut ds)
        } else {
            self.delta.search_intersecting(window, &mut ds)
        };
        stats.absorb_traversal(&ds);
        out
    }

    /// Merges two distance-ascending neighbour lists into the `k`
    /// nearest, preferring the frozen-main side on exact distance ties
    /// (its ids are smaller by construction).
    fn merge_neighbors(main: &[Neighbor], delta: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::with_capacity(k.min(main.len() + delta.len()));
        let (mut i, mut j) = (0, 0);
        while out.len() < k {
            match (main.get(i), delta.get(j)) {
                (Some(a), Some(b)) => {
                    if a.distance_sq.total_cmp(&b.distance_sq).is_le() {
                        out.push(*a);
                        i += 1;
                    } else {
                        out.push(*b);
                        j += 1;
                    }
                }
                (Some(a), None) => {
                    out.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push(*b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        out
    }

    /// Direct spatial search: object ids satisfying `obj op window`,
    /// pruned through the R-tree and refined with exact geometry. When
    /// the picture serves frozen queries and holds a delta, the frozen
    /// arena and the delta tree are both searched and their (disjoint)
    /// candidate sets merged.
    pub fn search_window(&self, op: SpatialOp, window: &Rect, stats: &mut SearchStats) -> Vec<u64> {
        let candidates: Vec<ItemId> = match (op, self.query_frozen()) {
            // The paper's SEARCH: WITHIN at the leaves.
            (SpatialOp::CoveredBy, Some(f)) => {
                let mut c = f.search_within(window, stats);
                c.extend(self.delta_window_candidates(true, window, stats));
                c
            }
            (SpatialOp::CoveredBy, None) => self.tree.search_within(window, stats),
            // Overlap/cover candidates must intersect the window.
            (SpatialOp::Overlapping | SpatialOp::Covering, Some(f)) => {
                let mut c = f.search_intersecting(window, stats);
                c.extend(self.delta_window_candidates(false, window, stats));
                c
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, None) => {
                self.tree.search_intersecting(window, stats)
            }
            // Disjointness cannot be pruned; enumerate everything (the
            // pointer tree indexes main and delta objects alike).
            (SpatialOp::Disjoined, _) => {
                stats.queries += 1;
                self.tree.items().into_iter().map(|(_, id)| id).collect()
            }
        };
        candidates
            .into_iter()
            .map(|ItemId(id)| id)
            .filter(|&id| op.eval_window(&self.objects[id as usize], window))
            .collect()
    }

    /// [`search_window`](Self::search_window) without statistics: the
    /// executor's hot path. Tree traversal reuses `scratch`, so repeated
    /// queries (e.g. one per inner tuple of a nested mapping) allocate
    /// nothing once the scratch buffers have warmed up.
    pub fn search_window_fast(
        &self,
        op: SpatialOp,
        window: &Rect,
        scratch: &mut SearchScratch,
    ) -> Vec<u64> {
        match (op, self.query_frozen()) {
            (SpatialOp::CoveredBy, Some(f)) => {
                let mut out = self.refine(op, window, f.search_within_into(window, scratch));
                if !self.delta.is_empty() {
                    out.extend(self.refine(
                        op,
                        window,
                        self.delta.search_within_into(window, scratch),
                    ));
                }
                out
            }
            (SpatialOp::CoveredBy, None) => {
                self.refine(op, window, self.tree.search_within_into(window, scratch))
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, Some(f)) => {
                let mut out = self.refine(op, window, f.search_intersecting_into(window, scratch));
                if !self.delta.is_empty() {
                    out.extend(self.refine(
                        op,
                        window,
                        self.delta.search_intersecting_into(window, scratch),
                    ));
                }
                out
            }
            (SpatialOp::Overlapping | SpatialOp::Covering, None) => self.refine(
                op,
                window,
                self.tree.search_intersecting_into(window, scratch),
            ),
            (SpatialOp::Disjoined, _) => self
                .object_ids()
                .filter(|&id| op.eval_window(&self.objects[id as usize], window))
                .collect(),
        }
    }

    /// The `k` objects whose MBRs are nearest to `p`, ordered by
    /// ascending distance, with Table 1 counters.
    pub fn nearest(&self, p: Point, k: usize, stats: &mut SearchStats) -> Vec<u64> {
        let neighbors = match self.query_frozen() {
            Some(f) => {
                let main = f.nearest_neighbors(p, k, stats);
                if self.delta.is_empty() {
                    main
                } else {
                    let mut ds = SearchStats::default();
                    let delta = self.delta.nearest_neighbors(p, k, &mut ds);
                    stats.absorb_traversal(&ds);
                    Self::merge_neighbors(&main, &delta, k)
                }
            }
            None => self.tree.nearest_neighbors(p, k, stats),
        };
        neighbors.into_iter().map(|n| n.item.0).collect()
    }

    /// [`nearest`](Self::nearest) without statistics: the executor's
    /// `at … nearest` path. The branch-and-bound heap lives in the
    /// scratch's embedded [`KnnScratch`](rtree_index::KnnScratch), so
    /// repeated queries allocate nothing once warmed up.
    pub fn nearest_fast(&self, p: Point, k: usize, scratch: &mut SearchScratch) -> Vec<u64> {
        match self.query_frozen() {
            Some(f) => {
                if self.delta.is_empty() {
                    return f
                        .nearest_neighbors_into(p, k, scratch.knn())
                        .iter()
                        .map(|n| n.item.0)
                        .collect();
                }
                let main: Vec<Neighbor> = f.nearest_neighbors_into(p, k, scratch.knn()).to_vec();
                let delta: Vec<Neighbor> = self
                    .delta
                    .nearest_neighbors_into(p, k, scratch.knn())
                    .to_vec();
                Self::merge_neighbors(&main, &delta, k)
                    .into_iter()
                    .map(|n| n.item.0)
                    .collect()
            }
            None => self
                .tree
                .nearest_neighbors_into(p, k, scratch.knn())
                .iter()
                .map(|n| n.item.0)
                .collect(),
        }
    }

    /// Batched [`search_window_fast`](Self::search_window_fast): executes
    /// a pack of window queries and returns per-query refined object ids
    /// **in input order**. Queries are partitioned by traversal kind
    /// (`within` for covered-by, `intersecting` for overlap/cover) and
    /// each partition runs through [`FrozenRTree::batch_windows`] —
    /// spatially grouped over one shared scratch — when the picture
    /// serves frozen queries; otherwise each query falls back to the
    /// one-at-a-time path. Per-query results are bit-identical to
    /// `search_window_fast` either way.
    pub fn search_windows_batch(
        &self,
        queries: &[(SpatialOp, Rect)],
        batch: &mut BatchScratch,
    ) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); queries.len()];
        let Some(f) = self.query_frozen() else {
            for (slot, (op, window)) in out.iter_mut().zip(queries) {
                *slot = self.search_window_fast(*op, window, batch.search());
            }
            return out;
        };
        // Disjointness enumerates; it gains nothing from tree batching.
        for (slot, (op, window)) in out.iter_mut().zip(queries) {
            if matches!(op, SpatialOp::Disjoined) {
                *slot = self.search_window_fast(*op, window, batch.search());
            }
        }
        for within in [true, false] {
            let group: Vec<usize> = queries
                .iter()
                .enumerate()
                .filter(|(_, (op, _))| match op {
                    SpatialOp::CoveredBy => within,
                    SpatialOp::Overlapping | SpatialOp::Covering => !within,
                    SpatialOp::Disjoined => false,
                })
                .map(|(i, _)| i)
                .collect();
            if group.is_empty() {
                continue;
            }
            let windows: Vec<Rect> = group.iter().map(|&i| queries[i].1).collect();
            {
                let results = f.batch_windows(&windows, within, batch);
                for (slot, &i) in group.iter().enumerate() {
                    let (op, window) = &queries[i];
                    out[i] = self.refine(*op, window, results.get(slot));
                }
            }
            // Buffered delta objects merge in after the frozen batch
            // (the batch results borrow the scratch, so this is a
            // second pass once that borrow ends).
            if !self.delta.is_empty() {
                for &i in &group {
                    let (op, window) = &queries[i];
                    let candidates = if within {
                        self.delta.search_within_into(window, batch.search())
                    } else {
                        self.delta.search_intersecting_into(window, batch.search())
                    };
                    let extra = self.refine(*op, window, candidates);
                    out[i].extend(extra);
                }
            }
        }
        out
    }

    /// Batched [`nearest_fast`](Self::nearest_fast): the `k` nearest
    /// object ids per `(point, k)` query, in input order, via
    /// [`FrozenRTree::batch_knn`] when the picture serves frozen queries
    /// and the one-at-a-time path otherwise.
    pub fn nearest_batch(
        &self,
        queries: &[(Point, usize)],
        batch: &mut BatchScratch,
    ) -> Vec<Vec<u64>> {
        match self.query_frozen() {
            Some(f) => {
                if self.delta.is_empty() {
                    let results = f.batch_knn(queries, batch);
                    return results
                        .iter()
                        .map(|ns| ns.iter().map(|n| n.item.0).collect())
                        .collect();
                }
                // Copy the frozen batch out (it borrows the scratch),
                // then merge each query's delta neighbours in.
                let main: Vec<Vec<Neighbor>> = {
                    let results = f.batch_knn(queries, batch);
                    results.iter().map(|ns| ns.to_vec()).collect()
                };
                queries
                    .iter()
                    .zip(main)
                    .map(|(&(p, k), m)| {
                        let delta: Vec<Neighbor> = self
                            .delta
                            .nearest_neighbors_into(p, k, batch.search().knn())
                            .to_vec();
                        Self::merge_neighbors(&m, &delta, k)
                            .into_iter()
                            .map(|n| n.item.0)
                            .collect()
                    })
                    .collect()
            }
            None => queries
                .iter()
                .map(|&(p, k)| self.nearest_fast(p, k, batch.search()))
                .collect(),
        }
    }

    fn refine(&self, op: SpatialOp, window: &Rect, candidates: &[ItemId]) -> Vec<u64> {
        candidates
            .iter()
            .map(|&ItemId(id)| id)
            .filter(|&id| op.eval_window(&self.objects[id as usize], window))
            .collect()
    }
}

/// Rebuilds the pointer tree **and** captures the node stream for the
/// frozen SoA arena during the external pack, straight from the packer's
/// [`NodeSink`] — no post-pack sweep of the destination file. The packer
/// emits nodes level-major (all leaves, then each internal level, root
/// last), so every child is observed before its parent and the pointer
/// tree assembles bottom-up. Emission order within a level is *run
/// order*, not the BFS sibling order the frozen layout wants (the NN
/// strategy reorders entries within a group), so the frozen arena is
/// compiled afterwards by [`FrozenRTree::from_nodes`], whose own
/// breadth-first walk over the buffered nodes reproduces exactly the
/// layout [`FrozenRTree::freeze`] would build from the rebuilt tree.
struct RebuildSink {
    builder: BottomUpBuilder,
    /// Emitted nodes by destination page id, fed to `from_nodes`.
    nodes: HashMap<u64, (u32, Vec<(Rect, FrozenChild)>)>,
    /// Destination page id → pointer-tree node, for parent resolution.
    by_page: HashMap<u64, NodeId>,
    /// Last node seen; the packer emits the root last.
    root: Option<NodeId>,
    /// Destination page of the root (last node emitted).
    root_page: u64,
    /// Root level — the pointer tree's `depth()`.
    depth: u32,
}

impl NodeSink for RebuildSink {
    fn node(&mut self, level: u32, page: PageId, entries: &[codec::DiskEntry]) {
        if entries.is_empty() {
            // Empty-picture pack: the packer still emits one empty root
            // leaf page, but the caller rebuilds the canonical empty
            // forms directly, so there is nothing to buffer.
            return;
        }
        let frozen_entries: Vec<(Rect, FrozenChild)> = entries
            .iter()
            .map(|e| {
                let child = if level == 0 {
                    FrozenChild::Item(ItemId(e.child))
                } else {
                    FrozenChild::Node(e.child)
                };
                (e.mbr, child)
            })
            .collect();
        self.nodes.insert(page.0 as u64, (level, frozen_entries));
        let (nid, _) = if level == 0 {
            self.builder
                .add_leaf(entries.iter().map(|e| (e.mbr, ItemId(e.child))).collect())
        } else {
            let children = entries
                .iter()
                .map(|e| {
                    let nid = *self
                        .by_page
                        .get(&e.child)
                        .expect("packer emits children before parents");
                    (nid, e.mbr)
                })
                .collect();
            self.builder.add_internal(level, children)
        };
        self.by_page.insert(page.0 as u64, nid);
        self.root = Some(nid);
        self.root_page = page.0 as u64;
        self.depth = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::{Point, Region};

    fn sample() -> Picture {
        let mut pic = Picture::new(
            "test",
            Rect::new(0.0, 0.0, 100.0, 100.0),
            RTreeConfig::PAPER,
        );
        for i in 0..20 {
            let p = Point::new((i * 5) as f64, (i * 5) as f64);
            pic.add(SpatialObject::Point(p), &format!("pt{i}"));
        }
        pic.add(
            SpatialObject::Region(Region::rectangle(Rect::new(10.0, 10.0, 30.0, 30.0))),
            "zone",
        );
        pic
    }

    #[test]
    fn add_and_lookup() {
        let pic = sample();
        assert_eq!(pic.len(), 21);
        assert_eq!(pic.label(0), Some("pt0"));
        assert_eq!(pic.label(20), Some("zone"));
        assert!(pic.object(99).is_none());
    }

    #[test]
    fn pack_preserves_searchability() {
        let mut pic = sample();
        let mut stats = SearchStats::default();
        let before = pic.search_window(
            SpatialOp::CoveredBy,
            &Rect::new(0.0, 0.0, 26.0, 26.0),
            &mut stats,
        );
        pic.pack();
        pic.tree().validate_with(false).unwrap();
        let mut after = pic.search_window(
            SpatialOp::CoveredBy,
            &Rect::new(0.0, 0.0, 26.0, 26.0),
            &mut stats,
        );
        let mut before = before;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // pt0..pt5 (0,5,10,15,20,25) plus the zone region [10,30]? No:
        // the zone's max corner (30,30) exceeds 26, so only the points.
        assert_eq!(after, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn overlap_vs_covered_by() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let window = Rect::new(5.0, 5.0, 26.0, 26.0);
        let covered = pic.search_window(SpatialOp::CoveredBy, &window, &mut stats);
        let overlapping = pic.search_window(SpatialOp::Overlapping, &window, &mut stats);
        // The zone region overlaps the window but is not covered by it.
        assert!(!covered.contains(&20));
        assert!(overlapping.contains(&20));
    }

    #[test]
    fn pack_freezes_and_add_opens_delta() {
        let mut pic = sample();
        assert!(pic.frozen().is_none());
        assert_eq!(pic.delta_len(), 0, "pre-pack adds bypass the delta");
        pic.pack();
        assert!(pic.frozen().is_some());
        assert_eq!(pic.packed_len(), pic.len());
        // Frozen and pointer paths agree on results and counters.
        let window = Rect::new(0.0, 0.0, 40.0, 40.0);
        let mut frozen_stats = SearchStats::default();
        let mut tree_stats = SearchStats::default();
        let via_frozen = pic.search_window(SpatialOp::Overlapping, &window, &mut frozen_stats);
        let via_tree: Vec<u64> = pic
            .tree()
            .search_intersecting(&window, &mut tree_stats)
            .into_iter()
            .map(|ItemId(id)| id)
            .collect();
        assert_eq!(via_frozen, via_tree);
        assert_eq!(frozen_stats, tree_stats);
        // A dynamic insert no longer drops the frozen arena: it buffers
        // in the delta tree and queries keep merging both.
        let late = pic.add(SpatialObject::Point(Point::new(1.0, 2.0)), "late");
        assert!(pic.frozen().is_some(), "add must not drop the frozen tree");
        assert!(pic.needs_merge());
        assert_eq!(pic.delta_len(), 1);
        let mut stats = SearchStats::default();
        let got = pic.search_window(SpatialOp::Overlapping, &window, &mut stats);
        assert!(got.contains(&late), "merged query must see the delta");
        // Re-packing folds the delta back into the main tree.
        pic.pack();
        assert!(!pic.needs_merge());
        assert_eq!(pic.packed_len(), pic.len());
        let mut stats = SearchStats::default();
        let after = pic.search_window(SpatialOp::Overlapping, &window, &mut stats);
        let mut got = got;
        got.sort_unstable();
        let mut after = after;
        after.sort_unstable();
        assert_eq!(got, after);
    }

    /// The delta path on a picture large enough to serve frozen queries:
    /// every query shape (window ops, k-NN, batched forms) must agree
    /// with a freshly packed copy of the same objects.
    #[test]
    fn delta_merge_is_equivalent_to_repacked() {
        let mut live = big_picture(16_000);
        assert!(live.serves_frozen_queries());
        for i in 0..300u64 {
            let x = (i.wrapping_mul(48271) % 100_000) as f64 / 100.0;
            let y = (i.wrapping_mul(69621) % 100_000) as f64 / 100.0;
            live.add(SpatialObject::Point(Point::new(x, y)), &format!("d{i}"));
        }
        assert_eq!(live.delta_len(), 300);
        assert!(
            live.serves_frozen_queries(),
            "delta writes must not knock queries off the frozen arena"
        );
        let mut repacked = live.clone();
        repacked.pack();

        let mut batch = BatchScratch::new();
        let windows: Vec<(SpatialOp, Rect)> = (0..30)
            .map(|i| {
                let x = (i * 97 % 800) as f64;
                let y = (i * 31 % 800) as f64;
                let op = match i % 4 {
                    0 => SpatialOp::CoveredBy,
                    1 => SpatialOp::Overlapping,
                    2 => SpatialOp::Covering,
                    _ => SpatialOp::Disjoined,
                };
                (op, Rect::new(x, y, x + 120.0, y + 120.0))
            })
            .collect();
        for (op, w) in &windows {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let mut merged = live.search_window(*op, w, &mut s1);
            let mut packed = repacked.search_window(*op, w, &mut s2);
            merged.sort_unstable();
            packed.sort_unstable();
            assert_eq!(merged, packed, "{op:?} {w:?} diverged from repacked");
            let mut fast = live.search_window_fast(*op, w, batch.search());
            fast.sort_unstable();
            assert_eq!(fast, merged, "fast path diverged on {op:?}");
        }
        let batched = live.search_windows_batch(&windows, &mut batch);
        for (got, (op, w)) in batched.iter().zip(&windows) {
            let single = live.search_window_fast(*op, w, batch.search());
            assert_eq!(got, &single, "batched {op:?} {w:?} diverged");
        }

        // k-NN: distances must match the repacked picture (ties at the
        // cut-off make the identity of the k-th neighbour ambiguous).
        let dist = |pic: &Picture, p: Point, ids: &[u64]| -> Vec<f64> {
            ids.iter()
                .map(|&id| pic.object(id).unwrap().mbr().min_distance_sq(p))
                .collect()
        };
        let knn_queries: Vec<(Point, usize)> = (0..20)
            .map(|i| {
                let x = (i * 211 % 1000) as f64;
                let y = (i * 57 % 1000) as f64;
                (Point::new(x, y), 1 + i % 9)
            })
            .collect();
        for &(p, k) in &knn_queries {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let merged = live.nearest(p, k, &mut s1);
            let packed = repacked.nearest(p, k, &mut s2);
            assert_eq!(merged.len(), packed.len());
            assert_eq!(dist(&live, p, &merged), dist(&repacked, p, &packed));
            let fast = live.nearest_fast(p, k, batch.search());
            assert_eq!(merged, fast, "k-NN fast path diverged at {p:?}");
        }
        let batched = live.nearest_batch(&knn_queries, &mut batch);
        for (got, &(p, k)) in batched.iter().zip(&knn_queries) {
            let single = live.nearest_fast(p, k, batch.search());
            assert_eq!(got, &single, "batched k-NN at {p:?} k={k} diverged");
        }
    }

    #[test]
    fn nearest_paths_agree() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let mut scratch = SearchScratch::new();
        let p = Point::new(33.0, 12.0);
        let with_stats = pic.nearest(p, 5, &mut stats);
        let fast = pic.nearest_fast(p, 5, &mut scratch);
        assert_eq!(with_stats, fast);
        assert_eq!(with_stats.len(), 5);
        assert_eq!(stats.queries, 1);
    }

    fn big_picture(n: u64) -> Picture {
        let mut pic = Picture::new(
            "big",
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            RTreeConfig::PAPER,
        );
        for i in 0..n {
            // Deterministic pseudo-random scatter over the frame.
            let x = (i.wrapping_mul(2654435761) % 100_000) as f64 / 100.0;
            let y = (i.wrapping_mul(40503) % 100_000) as f64 / 100.0;
            pic.add(SpatialObject::Point(Point::new(x, y)), &format!("o{i}"));
        }
        pic.pack();
        pic
    }

    /// The Table-1 regression: freezing a small picture must not move
    /// its queries onto the frozen path (where lane arithmetic loses to
    /// the cache-resident pointer arena), while large pictures must.
    #[test]
    fn small_trees_serve_pointer_queries_large_trees_frozen() {
        let mut small = sample();
        small.pack();
        assert!(small.frozen().is_some());
        assert!(
            !small.serves_frozen_queries(),
            "a Table-1-scale picture must keep serving the pointer tree"
        );

        let big = big_picture(16_000);
        assert!(big.frozen().is_some());
        assert!(
            big.serves_frozen_queries(),
            "a picture past the node threshold must serve the frozen arena"
        );

        // Dispatch is invisible in results: both paths are bit-identical.
        let window = Rect::new(100.0, 100.0, 300.0, 300.0);
        let mut stats = SearchStats::default();
        let via_dispatch = big.search_window(SpatialOp::CoveredBy, &window, &mut stats);
        let via_pointer: Vec<u64> = big
            .tree()
            .search_within(&window, &mut SearchStats::default())
            .into_iter()
            .map(|ItemId(id)| id)
            .collect();
        assert_eq!(via_dispatch, via_pointer);
    }

    #[test]
    fn batched_window_queries_match_single_queries() {
        let mut batch = BatchScratch::new();
        for pic in [big_picture(16_000), {
            let mut small = sample();
            small.pack();
            small
        }] {
            let queries: Vec<(SpatialOp, Rect)> = (0..40)
                .map(|i| {
                    let x = (i * 23 % 900) as f64;
                    let y = (i * 41 % 900) as f64;
                    let op = match i % 4 {
                        0 => SpatialOp::CoveredBy,
                        1 => SpatialOp::Overlapping,
                        2 => SpatialOp::Covering,
                        _ => SpatialOp::Disjoined,
                    };
                    (op, Rect::new(x, y, x + 40.0, y + 40.0))
                })
                .collect();
            let batched = pic.search_windows_batch(&queries, &mut batch);
            for (got, (op, window)) in batched.iter().zip(&queries) {
                let single = pic.search_window_fast(*op, window, batch.search());
                assert_eq!(got, &single, "{op:?} {window:?} diverged");
            }
        }
    }

    #[test]
    fn batched_nearest_matches_single_queries() {
        let mut batch = BatchScratch::new();
        for pic in [big_picture(16_000), {
            let mut small = sample();
            small.pack();
            small
        }] {
            let queries: Vec<(Point, usize)> = (0..30)
                .map(|i| {
                    let x = (i * 137 % 1000) as f64;
                    let y = (i * 71 % 1000) as f64;
                    (Point::new(x, y), 1 + i % 7)
                })
                .collect();
            let batched = pic.nearest_batch(&queries, &mut batch);
            for (got, &(p, k)) in batched.iter().zip(&queries) {
                let single = pic.nearest_fast(p, k, batch.search());
                assert_eq!(got, &single, "k-NN at {p:?} k={k} diverged");
            }
        }
    }

    /// The out-of-core path must reconstruct the very same pointer tree
    /// (`RTree: PartialEq`, arena layout included) as the in-memory
    /// packer, and serve identical queries afterwards.
    #[test]
    fn pack_external_is_bit_identical_to_pack() {
        let in_memory = big_picture(5_000); // big_picture packs
        let mut external = in_memory.clone();
        // 32 KiB budget: far below the ~480 KiB the items occupy. Two
        // pipeline threads drive the overlapped produce/sort/spill path.
        let stats = external.pack_external(32 * 1024, 2).expect("external pack");
        assert!(stats.initial_runs > 1, "must have spilled: {stats:?}");
        assert!(stats.peak_budget_bytes <= 32 * 1024);
        assert_eq!(stats.threads_used, 2);
        assert_eq!(
            external.tree(),
            in_memory.tree(),
            "trees must be bit-identical"
        );
        assert_eq!(external.packed_len(), external.len());
        assert!(external.frozen().is_some());
        // The sink-built arena must equal a from-scratch freeze of the
        // rebuilt pointer tree (direct emission skipped that pass).
        assert_eq!(
            external.frozen().expect("frozen"),
            &FrozenRTree::freeze(external.tree()),
            "sink-built frozen arena diverged from freeze()"
        );
        assert!(!external.needs_merge());

        let window = Rect::new(100.0, 100.0, 400.0, 400.0);
        for op in [SpatialOp::CoveredBy, SpatialOp::Overlapping] {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            assert_eq!(
                external.search_window(op, &window, &mut s1),
                in_memory.search_window(op, &window, &mut s2),
                "{op:?} diverged"
            );
            assert_eq!(s1, s2, "{op:?} traversal counters diverged");
        }
        let mut s = SearchStats::default();
        assert_eq!(
            external.nearest(Point::new(500.0, 500.0), 7, &mut s),
            in_memory.nearest(Point::new(500.0, 500.0), 7, &mut SearchStats::default())
        );
    }

    #[test]
    fn pack_external_folds_delta_and_empty_picture() {
        let mut pic = sample();
        pic.pack();
        pic.add(SpatialObject::Point(Point::new(2.0, 3.0)), "late");
        assert!(pic.needs_merge());
        pic.pack_external(0, 1)
            .expect("degenerate budget still packs");
        assert!(!pic.needs_merge());
        assert_eq!(pic.packed_len(), pic.len());
        let mut twin = sample();
        twin.add(SpatialObject::Point(Point::new(2.0, 3.0)), "late");
        twin.pack();
        assert_eq!(pic.tree(), twin.tree());

        let mut empty = Picture::new("e", Rect::new(0.0, 0.0, 1.0, 1.0), RTreeConfig::PAPER);
        empty.pack_external(1 << 20, 4).expect("empty pack");
        assert!(empty.is_empty());
        assert!(empty.frozen().is_some());
    }

    #[test]
    fn disjoined_search() {
        let mut pic = sample();
        pic.pack();
        let mut stats = SearchStats::default();
        let window = Rect::new(0.0, 0.0, 26.0, 26.0);
        let mut disjoint = pic.search_window(SpatialOp::Disjoined, &window, &mut stats);
        disjoint.sort_unstable();
        // Points at 30.. and beyond (ids 6..19) are disjoint from the
        // window; zone intersects it.
        assert_eq!(disjoint, (6..20).collect::<Vec<u64>>());
    }
}
