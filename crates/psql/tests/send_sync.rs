//! Compile-time thread-safety audit of the shared read path.
//!
//! The concurrent query service shares one immutable [`PictorialDatabase`]
//! snapshot across worker threads, so every type on the read path must be
//! `Send + Sync` — which in turn requires that the search path holds no
//! interior mutability (no `Cell`/`RefCell`) and no thread-bound handles
//! (no `Rc`). These assertions are evaluated at compile time: if a future
//! change introduces interior mutability anywhere in the query path, this
//! test file stops building.
//!
//! [`SearchScratch`] is deliberately *not* required to be shared: it is
//! mutable per-thread buffer space. It must still be `Send` so a worker
//! pool can own one per thread.

use psql::database::PictorialDatabase;
use psql::functions::FunctionRegistry;
use psql::picture::Picture;
use psql::result::ResultSet;
use psql::PsqlError;
use rtree_index::{RTree, SearchScratch, SearchStats};
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn shared_read_path_is_send_sync() {
    // The database snapshot shared by all sessions.
    assert_send_sync::<PictorialDatabase>();
    assert_send_sync::<Arc<PictorialDatabase>>();
    // Its pieces.
    assert_send_sync::<Picture>();
    assert_send_sync::<RTree>();
    assert_send_sync::<pictorial_relational::Catalog>();
    // The executor's inputs and outputs cross thread boundaries too: a
    // registry is shared by all workers, results travel back to
    // connection writers.
    assert_send_sync::<FunctionRegistry>();
    assert_send_sync::<ResultSet>();
    assert_send_sync::<PsqlError>();
    assert_send_sync::<SearchStats>();
}

#[test]
fn scratch_is_send_but_stays_thread_local() {
    // A worker pool moves each scratch into its thread once; it is never
    // shared, so `Sync` is not required (and not relied upon).
    assert_send::<SearchScratch>();
}

#[test]
fn executor_runs_against_a_shared_snapshot() {
    // Not just a trait check: actually query one snapshot from several
    // threads at once through the scratch-reusing entry point.
    let db = Arc::new(PictorialDatabase::with_us_map());
    let functions = Arc::new(FunctionRegistry::with_builtins());
    let query = psql::parse_query(
        "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
    )
    .unwrap();
    let query = Arc::new(query);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        let functions = Arc::clone(&functions);
        let query = Arc::clone(&query);
        handles.push(std::thread::spawn(move || {
            let mut scratch = SearchScratch::new();
            let mut lens = Vec::new();
            for _ in 0..50 {
                let r = psql::exec::execute_with_scratch(&db, &query, &functions, &mut scratch)
                    .unwrap();
                lens.push(r.len());
            }
            lens
        }));
    }
    for h in handles {
        let lens = h.join().unwrap();
        assert!(lens.iter().all(|&n| n == lens[0]));
        assert!(lens[0] >= 10, "eastern window should hold many cities");
    }
}
