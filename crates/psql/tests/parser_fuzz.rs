//! Robustness: the PSQL front end must never panic, whatever the input.

use proptest::prelude::*;
use psql::database::PictorialDatabase;
use psql::exec::execute;
use psql::lexer::lex;
use psql::parser::parse_query;
use psql::plan::plan;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer returns Ok or Err on arbitrary bytes — never panics.
    #[test]
    fn lexer_total_on_arbitrary_strings(input in ".*") {
        let _ = lex(&input);
    }

    /// The parser is total on arbitrary ASCII-ish strings.
    #[test]
    fn parser_total_on_arbitrary_strings(input in "[ -~]{0,200}") {
        let _ = parse_query(&input);
    }

    /// Grammar-shaped random queries parse + plan + execute without
    /// panicking (they may legitimately fail with semantic errors).
    #[test]
    fn pipeline_total_on_grammarish_queries(
        col in prop::sample::select(vec!["city", "state", "population", "loc", "zone", "bogus"]),
        rel in prop::sample::select(vec!["cities", "time-zones", "lakes", "nowhere"]),
        pic in prop::sample::select(vec!["us-map", "time-zone-map", "mars-map"]),
        op in prop::sample::select(vec!["covering", "covered-by", "overlapping", "disjoined"]),
        cx in 0.0..100.0f64,
        dx in 0.0..60.0f64,
        threshold in 0i64..20_000_000,
    ) {
        let db = PictorialDatabase::with_us_map();
        let text = format!(
            "select {col} from {rel} on {pic} at loc {op} {{{cx} +- {dx}, 25 +- 25}} \
             where population > {threshold}"
        );
        if let Ok(q) = parse_query(&text) {
            if let Ok(p) = plan(&db, &q) {
                let _ = p.explain();
                let _ = execute(&db, &q);
            }
        }
    }
}

/// Deterministic regression corpus of nasty inputs.
#[test]
fn nasty_inputs_do_not_panic() {
    let db = PictorialDatabase::with_us_map();
    for text in [
        "",
        ";",
        "select",
        "select select select",
        "select * from cities at loc covered-by {1 +- 1, 2 +- 2} where",
        "select city from cities on us-map at loc covered-by {999999999999 +- 1e308, 0 +- 0}",
        "select city from cities where population > -0",
        "select city from cities where city = ''",
        "select a.b.c from cities",
        "select city from cities, cities at cities.loc covered-by cities.loc",
        "select lake from lakes at lakes.loc covered-by (select lake from lakes)",
        "select city from cities on us-map at loc covered-by {5 +- 4, 11 +- 9} \
         where population > 450000 and (state = 'NY' or not population < 2)",
        "\\u{1F600} select city from cities",
    ] {
        if let Ok(q) = parse_query(text) {
            let _ = execute(&db, &q);
        }
    }
}
