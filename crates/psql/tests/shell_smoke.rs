//! End-to-end smoke test of the interactive shell binary: a scripted
//! session through stdin must produce the expected tables and exit
//! cleanly.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_session(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_psql-shell"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn scripted_query_session() {
    let out =
        run_session("select city, population from cities where population > 9000000;\n\\quit\n");
    assert!(out.contains("New York"), "missing result:\n{out}");
    assert!(out.contains("Chicago"));
    assert!(out.contains("(3 rows)"));
    assert!(out.contains("bye"));
}

#[test]
fn multiline_query_and_map() {
    let out = run_session(
        "select city, loc from cities on us-map\n\
         at loc covered-by {82.5 +- 17.5, 25 +- 20}\n\
         where population > 4000000;\n\
         \\quit\n",
    );
    // Alphanumeric channel + automatic map rendering with labels.
    assert!(out.contains("| Boston"), "{out}");
    assert!(out.contains("us-map:"));
    assert!(out.contains("* New York") || out.contains("*  New York") || out.contains("New York"));
}

#[test]
fn meta_commands() {
    let out = run_session("\\tables\n\\explain select city from cities where population > 5000000;\n\\map lake-map\n\\badcmd\n\\quit\n");
    assert!(out.contains("cities(city:str, state:str, population:int, loc:pointer)"));
    assert!(out.contains("b+tree index on population"));
    assert!(
        !out.contains("Superior"),
        "\\map renders without highlights/labels"
    );
    assert!(out.contains("unknown command"));
}

#[test]
fn errors_are_reported_not_fatal() {
    let out = run_session(
        "select nope from nowhere;\nselect city from cities where population > 9000000;\n\\quit\n",
    );
    assert!(
        out.contains("no such relation") || out.contains("semantic error"),
        "{out}"
    );
    // The session continued after the error.
    assert!(out.contains("New York"));
}

#[test]
fn aggregate_in_shell() {
    let out = run_session(
        "select northest-of(loc), count-of(loc) from highways where hwy-name = 'I-90';\n\\quit\n",
    );
    assert!(out.contains("46"), "{out}");
    assert!(out.contains("(1 row)"));
}
