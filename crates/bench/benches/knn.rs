//! Nearest-neighbour search (the 1995 follow-up) on packed vs dynamic
//! trees: packing tightens MBRs, which tightens branch-and-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::PackStrategy;
use rtree_bench::{build_insert, build_pack};
use rtree_index::{RTreeConfig, SearchStats, SplitPolicy};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_knn(c: &mut Criterion) {
    let j = 10_000;
    let mut data_rng = rng(1985);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let items = points::as_items(&pts);
    let packed = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let dynamic = build_insert(&items, SplitPolicy::Quadratic, RTreeConfig::PAPER);
    let mut query_rng = rng(0x5eed);
    let qs = queries::point_queries(&mut query_rng, &PAPER_UNIVERSE, 500);

    let mut group = c.benchmark_group("knn");
    for k in [1usize, 10, 100] {
        for (name, tree) in [("pack", &packed), ("insert-quadratic", &dynamic)] {
            group.bench_with_input(BenchmarkId::new(name, k), &qs, |b, qs| {
                b.iter(|| {
                    let mut stats = SearchStats::default();
                    for &q in qs {
                        black_box(tree.nearest_neighbors(black_box(q), k, &mut stats));
                    }
                    stats.nodes_visited
                })
            });
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_knn
}
criterion_main!(benches);
