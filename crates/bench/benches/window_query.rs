//! Window (range) queries across selectivities — the workload behind
//! PSQL's `at loc covered-by {window}` clause.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::PackStrategy;
use rtree_bench::{build_insert, build_pack};
use rtree_index::{RTreeConfig, SearchStats, SplitPolicy};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_window_queries(c: &mut Criterion) {
    let j = 10_000;
    let mut data_rng = rng(1985);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let items = points::as_items(&pts);
    let packed = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let dynamic = build_insert(&items, SplitPolicy::Quadratic, RTreeConfig::PAPER);

    let mut group = c.benchmark_group("window_query");
    for selectivity in [0.0001, 0.01, 0.1] {
        let mut query_rng = rng(0x5eed);
        let windows = queries::window_queries(&mut query_rng, &PAPER_UNIVERSE, 200, selectivity);
        for (name, tree) in [("pack", &packed), ("insert-quadratic", &dynamic)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("sel{selectivity}")),
                &windows,
                |b, windows| {
                    b.iter(|| {
                        let mut stats = SearchStats::default();
                        let mut total = 0usize;
                        for w in windows {
                            total += tree.search_within(black_box(w), &mut stats).len();
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_window_queries
}
criterion_main!(benches);
