//! Juxtaposition cost: simultaneous R-tree descent vs nested loop
//! (the "geographic join" of Figure 2.2 at benchmark scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::pack;
use psql::join::{nested_loop_join, rtree_join, JoinStats};
use psql::SpatialOp;
use rtree_index::RTreeConfig;
use rtree_workload::{points, rects, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_join");
    group.sample_size(20);
    for n in [500usize, 2000] {
        let mut data_rng = rng(1985);
        let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
        let left = pack(points::as_items(&pts), RTreeConfig::PAPER);
        let regions = rects::uniform(&mut data_rng, &PAPER_UNIVERSE, n / 10, 20.0, 120.0);
        let right = pack(rects::as_items(&regions), RTreeConfig::PAPER);

        group.bench_with_input(BenchmarkId::new("rtree-join", n), &(), |b, ()| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                black_box(rtree_join(&left, &right, SpatialOp::CoveredBy, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("nested-loop", n), &(), |b, ()| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                black_box(nested_loop_join(
                    &left,
                    &right,
                    SpatialOp::CoveredBy,
                    &mut stats,
                ))
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_join
}
criterion_main!(benches);
