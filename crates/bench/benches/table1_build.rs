//! Construction cost: PACK (and variants) vs Guttman INSERT — the price
//! of the initial packing Table 1's quality numbers buy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::{pack_with, PackStrategy};
use rtree_bench::build_insert;
use rtree_index::{RTreeConfig, SplitPolicy};
use rtree_workload::{points, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(20);
    for j in [900usize, 10_000] {
        let mut data_rng = rng(1985);
        let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
        let items = points::as_items(&pts);

        for strategy in [
            PackStrategy::NearestNeighbor,
            PackStrategy::XSort,
            PackStrategy::SortTileRecursive,
            PackStrategy::Hilbert,
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), j), &items, |b, items| {
                b.iter(|| {
                    black_box(pack_with(
                        black_box(items.clone()),
                        RTreeConfig::PAPER,
                        strategy,
                    ))
                })
            });
        }
        // The literal O(n^2) NN scan only at the paper's scale.
        if j <= 900 {
            group.bench_with_input(BenchmarkId::new("pack-nn-naive", j), &items, |b, items| {
                b.iter(|| {
                    black_box(pack_with(
                        black_box(items.clone()),
                        RTreeConfig::PAPER,
                        PackStrategy::NearestNeighborNaive,
                    ))
                })
            });
        }
        for split in [SplitPolicy::Linear, SplitPolicy::Quadratic] {
            group.bench_with_input(
                BenchmarkId::new(format!("insert-{split:?}"), j),
                &items,
                |b, items| {
                    b.iter(|| black_box(build_insert(black_box(items), split, RTreeConfig::PAPER)))
                },
            );
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_build
}
criterion_main!(benches);
