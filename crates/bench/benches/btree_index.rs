//! The alphanumeric substrate: our from-scratch B+tree vs
//! `std::collections::BTreeMap` on insert and point/range lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pictorial_relational::{BPlusTree, TupleId, Value};
use std::collections::BTreeMap;
use std::hint::black_box;

fn keys(n: usize) -> Vec<i64> {
    let mut s = 0x1985_u64;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 1_000_000) as i64
        })
        .collect()
}

fn bench_btree(c: &mut Criterion) {
    let n = 50_000;
    let ks = keys(n);

    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("insert", "bplustree"), |b| {
        b.iter(|| {
            let mut t = BPlusTree::with_order(32);
            for (i, &k) in ks.iter().enumerate() {
                t.insert(Value::Int(black_box(k)), TupleId(i as u64));
            }
            t.len()
        })
    });
    group.bench_function(BenchmarkId::new("insert", "std-btreemap"), |b| {
        b.iter(|| {
            let mut t: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
            for (i, &k) in ks.iter().enumerate() {
                t.entry(black_box(k)).or_default().push(i as u64);
            }
            t.len()
        })
    });

    let mut tree = BPlusTree::with_order(32);
    let mut model: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
    for (i, &k) in ks.iter().enumerate() {
        tree.insert(Value::Int(k), TupleId(i as u64));
        model.entry(k).or_default().push(i as u64);
    }
    group.bench_function(BenchmarkId::new("lookup", "bplustree"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &k in ks.iter().take(5000) {
                found += tree.get(&Value::Int(black_box(k))).len();
            }
            black_box(found)
        })
    });
    group.bench_function(BenchmarkId::new("lookup", "std-btreemap"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &k in ks.iter().take(5000) {
                found += model.get(&black_box(k)).map_or(0, Vec::len);
            }
            black_box(found)
        })
    });
    group.bench_function(BenchmarkId::new("range", "bplustree"), |b| {
        b.iter(|| {
            black_box(
                tree.range(Some(&Value::Int(250_000)), Some(&Value::Int(300_000)))
                    .len(),
            )
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_btree
}
criterion_main!(benches);
