//! The Table 1 query workload as a throughput benchmark: random
//! point-containment queries against packed vs dynamically built trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::PackStrategy;
use rtree_bench::{build_insert, build_pack};
use rtree_index::{RTreeConfig, SearchStats, SplitPolicy};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_point_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    for j in [900usize, 10_000] {
        let mut data_rng = rng(1985);
        let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
        let items = points::as_items(&pts);
        let mut query_rng = rng(0x5eed);
        let qs = queries::point_queries(&mut query_rng, &PAPER_UNIVERSE, 1000);

        let packed = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
        let dynamic = build_insert(&items, SplitPolicy::Linear, RTreeConfig::PAPER);

        for (name, tree) in [("pack", &packed), ("insert-linear", &dynamic)] {
            group.bench_with_input(BenchmarkId::new(name, j), &qs, |b, qs| {
                b.iter(|| {
                    let mut stats = SearchStats::default();
                    for &q in qs {
                        black_box(tree.point_query(black_box(q), &mut stats));
                    }
                    stats.nodes_visited
                })
            });
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_point_queries
}
criterion_main!(benches);
