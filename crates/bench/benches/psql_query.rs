//! End-to-end PSQL latency: parse + plan + execute for the paper's three
//! canonical query shapes (window search, juxtaposition, nested mapping).

use criterion::{criterion_group, criterion_main, Criterion};
use psql::database::PictorialDatabase;
use psql::exec::query;
use std::hint::black_box;

fn bench_psql(c: &mut Criterion) {
    let db = PictorialDatabase::with_us_map();
    let mut group = c.benchmark_group("psql");

    let cases = [
        (
            "window_search",
            "select city, state, population, loc from cities on us-map \
             at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000",
        ),
        (
            "juxtaposition",
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
        ),
        (
            "nested_mapping",
            "select lake from lakes on lake-map at lakes.loc covered-by \
             (select states.loc from states on state-map \
              at states.loc covered-by {78 +- 22, 25 +- 25})",
        ),
        (
            "index_scan",
            "select city from cities where population > 5000000",
        ),
    ];
    for (name, text) in cases {
        group.bench_function(name, |b| {
            b.iter(|| black_box(query(&db, black_box(text)).expect("valid query")))
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_psql
}
criterion_main!(benches);
