//! Disk-image search through LRU buffer pools of varying size —
//! the paging behaviour of §1 as wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packed_rtree_core::PackStrategy;
use rtree_bench::build_pack;
use rtree_index::{RTreeConfig, SearchStats};
use rtree_storage::{BufferPool, DiskRTree, Pager};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::hint::black_box;

fn bench_buffer_pool(c: &mut Criterion) {
    let j = 20_000;
    let mut data_rng = rng(1985);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let items = points::as_items(&pts);
    let tree = build_pack(
        &items,
        PackStrategy::NearestNeighbor,
        RTreeConfig::with_branching(64),
    );
    let pager = Pager::temp().expect("temp pager");
    let disk = DiskRTree::store(&tree, &pager).expect("store");
    let mut query_rng = rng(0x5eed);
    let windows = queries::window_queries(&mut query_rng, &PAPER_UNIVERSE, 200, 0.005);

    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);
    for frames in [4usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::new("window-search", frames), &(), |b, ()| {
            let pool = BufferPool::new(&pager, frames);
            b.iter(|| {
                let mut stats = SearchStats::default();
                let mut total = 0usize;
                for w in &windows {
                    total += disk
                        .search_within(&pool, black_box(w), &mut stats)
                        .expect("io")
                        .len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .without_plots()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_buffer_pool
}
criterion_main!(benches);
