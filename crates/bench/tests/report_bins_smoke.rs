//! Every table/figure report binary must run to completion and print its
//! key findings — the experiment index of DESIGN.md, executable.
//!
//! These run the debug binaries at reduced scale where the binaries allow
//! it (they are all seed-deterministic), so this is a correctness smoke
//! test, not a performance run.

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin)
        .output()
        .unwrap_or_else(|e| panic!("{bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8")
}

#[test]
fn table1_reports_paper_shape() {
    let out = run(env!("CARGO_BIN_EXE_table1"));
    // The PACK column's structural identity with the paper.
    assert!(out.contains("302"), "N(pack)=302 at J=900 missing:\n{out}");
    assert!(out.contains("Paper (J=900)"));
}

#[test]
fn fig2_1_runs_query_and_map() {
    let out = run(env!("CARGO_BIN_EXE_fig2_1"));
    assert!(out.contains("r-tree search on us-map"));
    assert!(out.contains("New York"));
    assert!(out.contains("Figure 2.1b"));
}

#[test]
fn fig2_2_shows_join_pruning() {
    let out = run(env!("CARGO_BIN_EXE_fig2_2"));
    assert!(out.contains("(42 rows)"));
    assert!(out.contains("simultaneous R-tree search"));
}

#[test]
fn fig3_1_dumps_trees() {
    let out = run(env!("CARGO_BIN_EXE_fig3_1"));
    assert!(out.contains("level="));
    assert!(out.contains("Figure 3.2"));
}

#[test]
fn fig3_3_shows_degrading_pruning() {
    let out = run(env!("CARGO_BIN_EXE_fig3_3"));
    assert!(out.contains("root entries hit"));
}

#[test]
fn fig3_4_recovers_clusters() {
    let out = run(env!("CARGO_BIN_EXE_fig3_4"));
    assert!(out.contains("PACK (fig 3.4b)"));
    assert!(out.contains("[0.000,1.000]x[0.000,1.000]"));
}

#[test]
fn fig3_6_confirms_theorem() {
    let out = run(env!("CARGO_BIN_EXE_fig3_6"));
    assert!(out.contains("NO zero-overlap grouping exists"));
    assert!(!out.contains("UNEXPECTED"));
}

#[test]
fn fig3_7_contrasts_coverage() {
    let out = run(env!("CARGO_BIN_EXE_fig3_7"));
    assert!(out.contains("8.7x") || out.contains("coverage is"));
}

#[test]
fn fig3_8_renders_levels() {
    let out = run(env!("CARGO_BIN_EXE_fig3_8"));
    assert!(out.contains("Figure 3.8a"));
    assert!(out.contains("Figure 3.8b"));
}

#[test]
fn server_load_emits_bench_json() {
    let dir = std::env::temp_dir().join(format!("server_load_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out_path = dir.join("BENCH_server.json");
    let bin = env!("CARGO_BIN_EXE_server_load");
    let out = Command::new(bin)
        .env("SERVER_LOAD_CONNECTIONS", "4")
        .env("SERVER_LOAD_QUERIES", "5")
        .env("SERVER_LOAD_WORKERS", "2")
        .env("SERVER_LOAD_OUT", &out_path)
        .output()
        .unwrap_or_else(|e| panic!("{bin}: {e}"));
    assert!(
        out.status.success(),
        "server_load exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("throughput op/s"), "{stdout}");
    assert!(stdout.contains("mixed read p99"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).expect("BENCH_server.json written");
    for key in [
        "\"experiment\": \"server_load\"",
        "\"total_queries\": 20",
        "\"throughput_qps\"",
        "\"p50\"",
        "\"p99\"",
        "\"server_stats\"",
        "\"mixed\"",
        "\"insert_latency_us\"",
        "\"read_p99_vs_read_only\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thm3_2_verifies_disjointness() {
    let out = run(env!("CARGO_BIN_EXE_thm3_2"));
    assert!(out.contains("true"));
    assert!(!out.contains("false"));
}
