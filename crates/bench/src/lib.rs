//! Shared harness for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §3 for the index); this library holds
//! the measurement code they share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

use packed_rtree_core::{pack_with, PackStrategy};
use rand::rngs::StdRng;
use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats, SplitPolicy, TreeMetrics};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};

/// Seed used by all experiments (fixed for reproducibility; vary with
/// `PACKED_RTREE_SEED` to check robustness).
pub fn experiment_seed() -> u64 {
    std::env::var("PACKED_RTREE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1985)
}

/// Salt XORed into the base seed to derive the query stream, so query
/// geometry is decorrelated from the data while both flow from the one
/// experiment seed.
pub const QUERY_SEED_SALT: u64 = 0x5eed_cafe;

/// The seeded uniform workload over [`PAPER_UNIVERSE`] (the paper's
/// `[0,1000]²` space) that every experiment binary draws from.
///
/// Data and queries come from two independent streams derived from one
/// seed: the data stream is `rng(seed)`, the query stream
/// `rng(seed ^ QUERY_SEED_SALT)`. Each generator method starts its
/// stream fresh, so the same `SeededWorkload` always hands out
/// bit-identical geometry regardless of call order — that property is
/// what keeps Table 1's structural assertions (e.g. PACK `N=302, D=4`
/// at `J=900`) reproducible across binaries.
#[derive(Debug, Clone, Copy)]
pub struct SeededWorkload {
    /// Base seed for the data stream.
    pub seed: u64,
}

impl SeededWorkload {
    /// Workload for an explicit seed.
    pub fn new(seed: u64) -> Self {
        SeededWorkload { seed }
    }

    /// Workload for [`experiment_seed`] (the `PACKED_RTREE_SEED`-
    /// overridable default).
    pub fn from_env() -> Self {
        SeededWorkload::new(experiment_seed())
    }

    /// A fresh data-stream RNG — for generators beyond plain uniform
    /// points (clustered/skewed/diagonal sweeps draw from this
    /// sequentially).
    pub fn data_rng(&self) -> StdRng {
        rng(self.seed)
    }

    /// A fresh query-stream RNG.
    pub fn query_rng(&self) -> StdRng {
        rng(self.seed ^ QUERY_SEED_SALT)
    }

    /// `j` uniform points in the paper universe.
    pub fn uniform_points(&self, j: usize) -> Vec<Point> {
        points::uniform(&mut self.data_rng(), &PAPER_UNIVERSE, j)
    }

    /// `j` uniform points as `(mbr, id)` items ready for tree building.
    pub fn uniform_items(&self, j: usize) -> Vec<(Rect, ItemId)> {
        points::as_items(&self.uniform_points(j))
    }

    /// `n` random point queries.
    pub fn point_queries(&self, n: usize) -> Vec<Point> {
        queries::point_queries(&mut self.query_rng(), &PAPER_UNIVERSE, n)
    }

    /// `n` random window queries, each covering `selectivity` of the
    /// universe's area.
    pub fn window_queries(&self, n: usize, selectivity: f64) -> Vec<Rect> {
        queries::window_queries(&mut self.query_rng(), &PAPER_UNIVERSE, n, selectivity)
    }
}

/// Exact overlap area (the paper's `O`) of a large rectangle set.
///
/// [`rtree_geom::rectset::overlap_area`] compresses coordinates into a
/// dense `(2n)²`-cell grid — exact, but quadratic in memory, which rules
/// it out beyond a few thousand rectangles. This variant partitions the
/// set's bounding box into `grid × grid` disjoint tiles, clips every
/// rectangle to each tile it touches and sums the per-tile overlap. The
/// tiles partition the plane (shared edges have zero area), so the sum
/// equals the global overlap exactly while each per-tile grid stays
/// small.
pub fn tiled_overlap_area(rects: &[Rect], grid: usize) -> f64 {
    use rtree_geom::rectset;
    let grid = grid.max(1);
    let Some(bounds) = Rect::mbr_of_rects(rects.iter().copied()) else {
        return 0.0;
    };
    let w = bounds.max_x - bounds.min_x;
    let h = bounds.max_y - bounds.min_y;
    if w <= 0.0 || h <= 0.0 {
        return 0.0;
    }
    let mut tiles: Vec<Vec<Rect>> = vec![Vec::new(); grid * grid];
    let clamp_idx = |t: f64| (t as isize).clamp(0, grid as isize - 1) as usize;
    for r in rects {
        if r.area() == 0.0 {
            continue;
        }
        let tx0 = clamp_idx((r.min_x - bounds.min_x) / w * grid as f64);
        let tx1 = clamp_idx((r.max_x - bounds.min_x) / w * grid as f64);
        let ty0 = clamp_idx((r.min_y - bounds.min_y) / h * grid as f64);
        let ty1 = clamp_idx((r.max_y - bounds.min_y) / h * grid as f64);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                tiles[ty * grid + tx].push(*r);
            }
        }
    }
    let tile_rect = |tx: usize, ty: usize| {
        Rect::new(
            bounds.min_x + w * tx as f64 / grid as f64,
            bounds.min_y + h * ty as f64 / grid as f64,
            bounds.min_x + w * (tx + 1) as f64 / grid as f64,
            bounds.min_y + h * (ty + 1) as f64 / grid as f64,
        )
    };
    let mut total = 0.0;
    let mut clipped = Vec::new();
    for ty in 0..grid {
        for tx in 0..grid {
            let bucket = &tiles[ty * grid + tx];
            if bucket.len() < 2 {
                continue;
            }
            let t = tile_rect(tx, ty);
            clipped.clear();
            for r in bucket {
                let c = Rect::new(
                    r.min_x.max(t.min_x),
                    r.min_y.max(t.min_y),
                    r.max_x.min(t.max_x),
                    r.max_y.min(t.max_y),
                );
                if c.area() > 0.0 {
                    clipped.push(c);
                }
            }
            total += rectset::overlap_area(&clipped);
        }
    }
    total
}

/// One measured configuration: the columns of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Number of data objects.
    pub j: usize,
    /// Coverage `C` (sum of leaf MBR areas).
    pub coverage: f64,
    /// Overlap `O` (area covered by ≥ 2 leaf MBRs).
    pub overlap: f64,
    /// Depth `D`.
    pub depth: u32,
    /// Node count `N`.
    pub nodes: usize,
    /// Average nodes visited per point query, `A`.
    pub avg_visited: f64,
}

/// Measures one tree against the paper's 1000-random-point-query
/// workload.
pub fn measure(tree: &RTree, query_points: &[Point]) -> Table1Row {
    let m = TreeMetrics::measure(tree);
    let mut stats = SearchStats::default();
    for &q in query_points {
        tree.point_query(q, &mut stats);
    }
    Table1Row {
        j: tree.len(),
        coverage: m.coverage,
        overlap: m.overlap,
        depth: m.depth,
        nodes: m.nodes,
        avg_visited: stats.avg_nodes_visited(),
    }
}

/// Builds the paper's INSERT-side tree: Guttman insertion of `items` in
/// generation order with the given split policy (Table 1 uses
/// [`SplitPolicy::Linear`], the policy whose behaviour best matches the
/// 1985 numbers; `ablation_split` sweeps the rest).
pub fn build_insert(items: &[(Rect, ItemId)], split: SplitPolicy, branching: RTreeConfig) -> RTree {
    let mut tree = RTree::new(branching.with_split(split));
    for &(mbr, id) in items {
        tree.insert(mbr, id);
    }
    tree
}

/// Builds the PACK-side tree.
pub fn build_pack(items: &[(Rect, ItemId)], strategy: PackStrategy, config: RTreeConfig) -> RTree {
    pack_with(items.to_vec(), config, strategy)
}

/// The paper's §3.5 experiment for one `J`: same point set for both
/// algorithms, 1000 identical random queries. Returns
/// `(insert_row, pack_row)`.
pub fn table1_experiment(j: usize, seed: u64) -> (Table1Row, Table1Row) {
    let workload = SeededWorkload::new(seed);
    let items = workload.uniform_items(j);
    let query_points = workload.point_queries(1000);

    let insert_tree = build_insert(&items, SplitPolicy::Linear, RTreeConfig::PAPER);
    let pack_tree = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    (
        measure(&insert_tree, &query_points),
        measure(&pack_tree, &query_points),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_workload_matches_the_historic_inline_pattern() {
        // The helper must be bit-exact with the pattern the binaries
        // used to inline — the Table 1 structural assertions depend on
        // this exact stream.
        let w = SeededWorkload::new(1985);
        let mut data_rng = rng(1985);
        assert_eq!(
            w.uniform_points(900),
            points::uniform(&mut data_rng, &PAPER_UNIVERSE, 900)
        );
        let mut query_rng = rng(1985 ^ 0x5eed_cafe);
        assert_eq!(
            w.point_queries(1000),
            queries::point_queries(&mut query_rng, &PAPER_UNIVERSE, 1000)
        );
        let mut query_rng = rng(1985 ^ QUERY_SEED_SALT);
        assert_eq!(
            w.window_queries(300, 0.01),
            queries::window_queries(&mut query_rng, &PAPER_UNIVERSE, 300, 0.01)
        );
        // Streams restart per call: generation order can't skew results.
        assert_eq!(w.uniform_points(100), w.uniform_points(100));
    }

    #[test]
    fn tiled_overlap_matches_dense_overlap() {
        use rand::Rng;
        let mut r = rng(7);
        let rects: Vec<Rect> = (0..400)
            .map(|_| {
                let x = r.gen_range(0.0..900.0);
                let y = r.gen_range(0.0..900.0);
                let w = r.gen_range(0.0..80.0);
                let h = r.gen_range(0.0..80.0);
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let dense = rtree_geom::rectset::overlap_area(&rects);
        for grid in [1, 3, 8, 17] {
            let tiled = tiled_overlap_area(&rects, grid);
            assert!(
                (tiled - dense).abs() <= 1e-6 * dense.max(1.0),
                "grid {grid}: {tiled} vs {dense}"
            );
        }
        assert_eq!(tiled_overlap_area(&[], 8), 0.0);
    }

    #[test]
    fn table1_experiment_is_deterministic() {
        let (a1, b1) = table1_experiment(100, 7);
        let (a2, b2) = table1_experiment(100, 7);
        assert_eq!(a1.nodes, a2.nodes);
        assert_eq!(b1.nodes, b2.nodes);
        assert_eq!(a1.avg_visited, a2.avg_visited);
        assert_eq!(b1.coverage, b2.coverage);
    }

    #[test]
    fn pack_side_matches_paper_structure() {
        // The paper reports N=302, D=4 for PACK at J=900 — structural
        // values independent of the RNG (⌈900/4⌉ = 225 leaves, etc.).
        let (_, pack) = table1_experiment(900, experiment_seed());
        assert_eq!(pack.nodes, 302);
        assert_eq!(pack.depth, 4);
        assert_eq!(pack.j, 900);
    }

    #[test]
    fn table1_direction_holds() {
        let (insert, pack) = table1_experiment(900, experiment_seed());
        assert!(pack.coverage < insert.coverage);
        assert!(pack.overlap < insert.overlap);
        assert!(pack.depth <= insert.depth);
        assert!(pack.nodes < insert.nodes);
        assert!(pack.avg_visited < insert.avg_visited);
    }
}
