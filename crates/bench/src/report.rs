//! Plain-text table formatting for experiment reports.

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with right-aligned numeric-looking cells.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align text.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
                    && cell
                        .chars()
                        .all(|c| c.is_ascii_digit() || ".-eE+".contains(c))
                {
                    line.push_str(&format!("{cell:>w$}"));
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with limited decimals, trimming trailing zeros.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        assert!(lines[3].trim_start().starts_with('b'));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
