//! **EXT-12**: the WAL crash matrix — scripted fault injection against
//! the write-ahead log that backs dynamic picture inserts, over every
//! (or a sampled set of) physical write positions, across several seeds.
//!
//! For each seed the harness generates a stream of `InsertRecord`s and
//! commits them the way the server does: group commits of a few appends
//! followed by one `sync` — every record in a synced group counts as
//! **acknowledged**. It then replays the identical workload with a
//! simulated crash at physical write *k* (torn or dropped write, then
//! total I/O failure), reopens the underlying file cold, and classifies
//! what `Wal::open` + `InsertRecord::decode` recover:
//!
//! * **No lost acknowledged write** — every record whose group commit
//!   completed before the crash must replay, bit-for-bit, in order.
//! * **No partial apply** — the replayed sequence must be an exact
//!   prefix of the appended sequence (acknowledged records plus possibly
//!   an intact-but-unacknowledged suffix); every replayed payload must
//!   decode cleanly and apply to a fresh database without error.
//!
//! Any violation fails the run with a nonzero exit. Environment:
//! `CRASH_SEEDS` (comma-separated, default `7,42,1985`) and
//! `CRASH_POINTS` (crash points sampled, `0` = every write, the
//! default).
//!
//! Run with: `cargo run --release -p rtree-bench --bin wal_crash_matrix`

use psql::database::PictorialDatabase;
use psql::InsertRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtree_bench::report::Table;
use rtree_geom::{Point, Rect, Region, Segment, SpatialObject};
use rtree_index::RTreeConfig;
use rtree_storage::fault::{FaultKind, FaultPager, FaultScript};
use rtree_storage::{PageStore, Pager, Wal};
use std::io;
use std::path::PathBuf;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("CRASH_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![7, 42, 1985])
}

/// Crash points to exercise: all of `1..=total`, or `budget` evenly
/// spaced ones (always including the first and last write).
fn crash_points(total: u64, budget: u64) -> Vec<u64> {
    if budget == 0 || budget >= total {
        return (1..=total).collect();
    }
    let mut ks: Vec<u64> = (0..budget)
        .map(|i| 1 + i * (total - 1) / (budget - 1).max(1))
        .collect();
    ks.dedup();
    ks
}

fn scratch(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "wal-crash-matrix-{seed}-{}.wal",
        std::process::id()
    ))
}

/// A seeded stream of inserts mixing all three object kinds, grouped
/// into the commit batches the server's group commit would form.
fn workload(seed: u64) -> Vec<Vec<InsertRecord>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups = Vec::new();
    let mut id = 0usize;
    let total = 60 + (seed % 17) as usize;
    while id < total {
        let group_len = rng.gen_range(1..=5usize).min(total - id);
        let group = (0..group_len)
            .map(|_| {
                let x = rng.gen_range(0..1000u32) as f64 / 8.0;
                let y = rng.gen_range(0..1000u32) as f64 / 8.0;
                let object = match rng.gen_range(0..3u32) {
                    0 => SpatialObject::Point(Point::new(x, y)),
                    1 => SpatialObject::Segment(Segment::new(
                        Point::new(x, y),
                        Point::new(x + 2.0, y + 1.0),
                    )),
                    _ => {
                        SpatialObject::Region(Region::rectangle(Rect::new(x, y, x + 3.0, y + 2.0)))
                    }
                };
                id += 1;
                InsertRecord {
                    picture: "pic".into(),
                    label: format!("w{seed}-{}", id - 1),
                    object,
                }
            })
            .collect();
        groups.push(group);
    }
    groups
}

/// Runs the group-committed workload against `store`, stopping at the
/// first I/O error (the server stops acknowledging there too). Returns
/// the number of **acknowledged** records: members of groups whose
/// `sync` returned before the crash.
fn run_workload<S: PageStore>(store: S, groups: &[Vec<InsertRecord>]) -> usize {
    let mut wal = Wal::create(store);
    let mut acked = 0usize;
    for group in groups {
        for rec in group {
            let bytes = rec.encode().expect("encode");
            if wal.append(&bytes).is_err() {
                return acked;
            }
        }
        if wal.sync().is_err() {
            return acked;
        }
        acked += group.len();
    }
    acked
}

/// One alternating fault kind per crash point, so the matrix covers both
/// torn and dropped writes.
fn kind_for(k: u64) -> FaultKind {
    if k % 2 == 1 {
        FaultKind::TornWrite
    } else {
        FaultKind::FailWrite
    }
}

#[derive(Default)]
struct Outcome {
    trials: u64,
    exact: u64,
    with_suffix: u64,
    violations: u64,
}

fn wal_matrix(seed: u64, budget: u64) -> io::Result<Outcome> {
    let path = scratch(seed);
    let groups = workload(seed);
    let flat: Vec<InsertRecord> = groups.iter().flatten().cloned().collect();
    let encoded: Vec<Vec<u8>> = flat.iter().map(|r| r.encode().expect("encode")).collect();

    // Dry run to count physical writes (and sanity-check a clean pass).
    let total_writes = {
        let pager = Pager::create(&path)?;
        let faulty = FaultPager::new(&pager, FaultScript::new());
        let acked = run_workload(&faulty, &groups);
        assert_eq!(acked, flat.len(), "clean run must acknowledge everything");
        faulty.writes_seen()
    };

    let mut out = Outcome::default();
    for k in crash_points(total_writes, budget) {
        out.trials += 1;
        // Fresh file per trial; the workload is deterministic.
        let pager = Pager::create(&path)?;
        let script = FaultScript::new().on_write(k, kind_for(k), true);
        let faulty = FaultPager::new(&pager, script);
        let acked = run_workload(&faulty, &groups);
        if acked == flat.len() {
            eprintln!("seed {seed} k={k}: workload survived its own crash");
            out.violations += 1;
            continue;
        }
        drop(faulty);

        // Reopen cold, exactly as `Server::start` recovery does.
        let (_, replayed) = match Wal::open(&pager) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("seed {seed} k={k}: replay errored instead of truncating: {e}");
                out.violations += 1;
                continue;
            }
        };
        // No lost acknowledged write, and the replay is an exact prefix
        // of the appended sequence (so no reordering, no invention).
        if replayed.len() < acked {
            eprintln!(
                "seed {seed} k={k}: {} acknowledged records, only {} replayed",
                acked,
                replayed.len()
            );
            out.violations += 1;
            continue;
        }
        if replayed.len() > flat.len() || replayed[..] != encoded[..replayed.len()] {
            eprintln!(
                "seed {seed} k={k}: replay is not a prefix of the appended log \
                 ({} replayed)",
                replayed.len()
            );
            out.violations += 1;
            continue;
        }
        // No partial apply: every replayed payload decodes and applies.
        let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
        db.create_picture("pic", Rect::new(-1.0, -1.0, 130.0, 130.0))
            .expect("picture");
        db.pack_all();
        let mut applied = 0usize;
        let mut apply_failed = false;
        for bytes in &replayed {
            let rec = match InsertRecord::decode(bytes) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("seed {seed} k={k}: replayed record undecodable: {e}");
                    apply_failed = true;
                    break;
                }
            };
            if let Err(e) = db.add_object(&rec.picture, rec.object.clone(), &rec.label) {
                eprintln!("seed {seed} k={k}: replayed record failed to apply: {e}");
                apply_failed = true;
                break;
            }
            applied += 1;
        }
        if apply_failed || db.delta_len() != applied {
            out.violations += 1;
            continue;
        }
        if replayed.len() == acked {
            out.exact += 1;
        } else {
            out.with_suffix += 1;
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(out)
}

fn main() -> io::Result<()> {
    let seeds = env_seeds();
    let budget = env_u64("CRASH_POINTS", 0);
    println!(
        "EXT-12 — WAL crash matrix (seeds {seeds:?}, points: {})",
        if budget == 0 {
            "all".to_string()
        } else {
            budget.to_string()
        }
    );
    println!();

    let mut table = Table::new([
        "seed",
        "trials",
        "exact prefix",
        "intact suffix",
        "violations",
    ]);
    let mut violations = 0u64;
    for &seed in &seeds {
        let o = wal_matrix(seed, budget)?;
        violations += o.violations;
        table.row([
            seed.to_string(),
            o.trials.to_string(),
            o.exact.to_string(),
            o.with_suffix.to_string(),
            o.violations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("exact prefix = replay recovered exactly the acknowledged records;");
    println!("intact suffix = plus unacknowledged-but-intact tail records (allowed:");
    println!("at-least-once). Violations = a lost acknowledged write, a non-prefix");
    println!("replay, or a replayed record that failed to decode/apply (DESIGN.md §14).");
    if violations > 0 {
        return Err(io::Error::other(format!(
            "{violations} WAL crash-safety violations"
        )));
    }
    println!("\nPASS — no WAL crash-safety violations.");
    Ok(())
}
