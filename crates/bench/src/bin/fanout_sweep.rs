//! **EXT-3**: branching-factor sweep — from the paper's illustrative 4 up
//! to the page-filling ~100 of §3 ("extensions to higher branching
//! factors (that fill a logical disk block) are readily apparent").
//!
//! Run with: `cargo run --release -p rtree-bench --bin fanout_sweep`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, build_pack, measure, SeededWorkload};
use rtree_index::{RTreeConfig, SplitPolicy};
use rtree_storage::codec::MAX_ENTRIES_PER_PAGE;

fn main() {
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    let j = 5000;
    println!("EXT-3 — branching-factor sweep at J={j} (seed {seed})");
    println!("(page capacity with 4 KiB pages: {MAX_ENTRIES_PER_PAGE} entries)\n");

    let items = workload.uniform_items(j);
    let query_points = workload.point_queries(1000);

    let mut table = Table::new(["M", "builder", "D", "N", "A", "C", "O"]);
    for m in [4usize, 8, 16, 32, 64, 102] {
        let config = RTreeConfig::with_branching(m);
        let packed = build_pack(&items, PackStrategy::NearestNeighbor, config);
        let inserted = build_insert(&items, SplitPolicy::Quadratic, config);
        for (name, tree) in [("PACK", &packed), ("INSERT", &inserted)] {
            let row = measure(tree, &query_points);
            table.row([
                m.to_string(),
                name.to_string(),
                row.depth.to_string(),
                row.nodes.to_string(),
                f(row.avg_visited, 3),
                f(row.coverage, 0),
                f(row.overlap, 0),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Higher fanout flattens both trees. PACK keeps its ~30% node-count");
    println!("(= page-count) advantage at every fanout; raw node visits converge");
    println!("because full packed leaves have larger MBRs than half-full dynamic");
    println!("ones — on disk the page savings dominate (see io_sweep).");
}
