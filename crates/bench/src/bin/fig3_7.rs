//! **Figure 3.7**: zero overlap is not enough — coverage matters too.
//!
//! The figure's point layout (two horizontal strips) can be grouped with
//! zero overlap in two ways: pairing across strips (3.7a — tall skinny
//! boxes, huge coverage) or along strips (3.7b — flat boxes, small
//! coverage). Both have zero overlap; only one searches well.
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_7`

use rtree_bench::report::{f, Table};
use rtree_geom::{rectset, Point, Rect};

fn main() {
    println!("Figure 3.7 — same points, zero overlap, very different coverage\n");

    // Two slightly thick strips of 8 points, vertically far apart.
    let top: Vec<Point> = (0..8)
        .map(|i| Point::new(i as f64 * 10.0, 100.0 + (i % 2) as f64 * 4.0))
        .collect();
    let bottom: Vec<Point> = (0..8)
        .map(|i| Point::new(i as f64 * 10.0, (i % 2) as f64 * 4.0))
        .collect();

    // Grouping (a): vertical pairs spanning both strips (zero overlap,
    // bad coverage) — groups of 2 across, then pairs of columns.
    let grouping_a: Vec<Rect> = (0..4)
        .map(|k| {
            let pts = [top[2 * k], top[2 * k + 1], bottom[2 * k], bottom[2 * k + 1]];
            Rect::mbr_of_points(pts).expect("non-empty")
        })
        .collect();

    // Grouping (b): horizontal runs within each strip.
    let mut grouping_b: Vec<Rect> = Vec::new();
    for strip in [&top, &bottom] {
        for chunk in strip.chunks(4) {
            grouping_b.push(Rect::mbr_of_points(chunk.iter().copied()).expect("non-empty"));
        }
    }

    let mut table = Table::new(["grouping", "leaves", "coverage", "overlap"]);
    for (name, leaves) in [
        ("(a) across strips", &grouping_a),
        ("(b) along strips", &grouping_b),
    ] {
        table.row([
            name.to_string(),
            leaves.len().to_string(),
            f(rectset::total_area(leaves), 1),
            f(rectset::overlap_area(leaves), 1),
        ]);
    }
    println!("{}", table.render());

    let ca = rectset::total_area(&grouping_a);
    let cb = rectset::total_area(&grouping_b);
    println!(
        "grouping (a) coverage is {:.1}x grouping (b) with identical overlap (0).",
        ca / cb
    );
    println!("\"Although there is zero overlap, the coverage is unacceptably high.");
    println!(" The simultaneous minimization of both coverage and overlap is a");
    println!(" complex task\" — which is why PACK uses nearest-neighbour grouping.");
    assert!(ca > cb * 5.0);
}
