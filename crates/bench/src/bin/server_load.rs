//! **EXT-9**: query-service load generator — N concurrent connections ×
//! M mixed PSQL queries (point windows, region overlaps, juxtaposition
//! joins) against an in-process `psql-server`, reporting throughput and
//! client-observed latency percentiles. Results are written to
//! `BENCH_server.json` as the machine-readable baseline.
//!
//! Scale via environment (all optional):
//! `SERVER_LOAD_CONNECTIONS` (default 16), `SERVER_LOAD_QUERIES` per
//! connection (default 25), `SERVER_LOAD_WORKERS` (default 4),
//! `SERVER_LOAD_OUT` (default `BENCH_server.json`).
//!
//! Run with: `cargo run --release -p rtree-bench --bin server_load`

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::Response;
use psql_server::server::{Server, ServerConfig};
use rtree_bench::report::{f, Table};
use rtree_bench::SeededWorkload;
use rtree_geom::Rect;
use rtree_workload::{queries, usmap};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Renders a window as the PSQL `{cx +- hw, cy +- hh}` literal.
fn window_literal(w: &Rect) -> String {
    format!(
        "{{{:.3} +- {:.3}, {:.3} +- {:.3}}}",
        (w.min_x + w.max_x) / 2.0,
        (w.max_x - w.min_x) / 2.0,
        (w.min_y + w.max_y) / 2.0,
        (w.max_y - w.min_y) / 2.0,
    )
}

const JUXTAPOSITION: &str = "select city, zone from cities, time-zones on us-map, time-zone-map \
                             at cities.loc covered-by time-zones.loc";

fn main() {
    let connections = env_usize("SERVER_LOAD_CONNECTIONS", 16);
    let per_conn = env_usize("SERVER_LOAD_QUERIES", 25);
    let workers = env_usize("SERVER_LOAD_WORKERS", 4);
    let out_path =
        std::env::var("SERVER_LOAD_OUT").unwrap_or_else(|_| "BENCH_server.json".to_owned());
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    println!(
        "EXT-9 — server load: {connections} connections x {per_conn} mixed queries, \
         {workers} workers (seed {seed})\n"
    );

    // One seeded query stream feeds every connection's window geometry,
    // drawn in the us-map frame: small point-like windows for the city
    // search, larger ones for the lake overlap.
    let mut qrng = workload.query_rng();
    let point_windows =
        queries::window_queries(&mut qrng, &usmap::FRAME, connections * per_conn, 0.002);
    let region_windows =
        queries::window_queries(&mut qrng, &usmap::FRAME, connections * per_conn, 0.02);
    let scripts: Vec<Vec<String>> = (0..connections)
        .map(|c| {
            (0..per_conn)
                .map(|i| match (c + i) % 3 {
                    0 => format!(
                        "select city, population from cities on us-map at loc covered-by {}",
                        window_literal(&point_windows[c * per_conn + i])
                    ),
                    1 => format!(
                        "select lake from lakes on lake-map at loc overlapping {}",
                        window_literal(&region_windows[c * per_conn + i])
                    ),
                    _ => JUXTAPOSITION.to_owned(),
                })
                .collect()
        })
        .collect();

    let config = ServerConfig {
        workers,
        queue_capacity: (connections * 4).max(64),
        ..ServerConfig::default()
    };
    let server = Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config)
        .expect("bind ephemeral");
    let addr = server.local_addr();

    let started = Instant::now();
    let handles: Vec<_> = scripts
        .into_iter()
        .enumerate()
        .map(|(c, script)| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_timeout(addr, Duration::from_secs(60)).expect("connect");
                let mut latencies = Vec::with_capacity(script.len());
                let mut retries = 0u64;
                for text in &script {
                    let t0 = Instant::now();
                    loop {
                        match client.query(text).expect("roundtrip") {
                            Response::Result { result, .. } => {
                                if text == JUXTAPOSITION {
                                    assert_eq!(result.len(), 42, "conn {c}: wrong join result");
                                }
                                break;
                            }
                            Response::Overloaded { retry_after_ms, .. } => {
                                retries += 1;
                                std::thread::sleep(Duration::from_millis(
                                    retry_after_ms.max(1) as u64
                                ));
                            }
                            other => panic!("conn {c}: unexpected response {other:?}"),
                        }
                    }
                    latencies.push(t0.elapsed());
                }
                (latencies, retries)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(connections * per_conn);
    let mut retries = 0u64;
    for h in handles {
        let (l, r) = h.join().expect("client thread panicked");
        latencies.extend(l);
        retries += r;
    }
    let wall = started.elapsed();

    let mut stats_client = Client::connect_timeout(addr, Duration::from_secs(10)).expect("stats");
    let server_stats = stats_client.stats().expect("stats");
    drop(stats_client);
    server.stop();

    latencies.sort_unstable();
    let total = latencies.len();
    let pct = |q: f64| latencies[(((total as f64) * q).ceil() as usize).clamp(1, total) - 1];
    let micros = |d: Duration| d.as_micros() as f64;
    let throughput = total as f64 / wall.as_secs_f64();
    let p50 = pct(0.50);
    let p90 = pct(0.90);
    let p99 = pct(0.99);
    let mean = latencies.iter().map(|&d| micros(d)).sum::<f64>() / total as f64;

    let mut table = Table::new(["metric", "value"]);
    table.row(["queries".into(), total.to_string()]);
    table.row(["wall ms".into(), f(wall.as_secs_f64() * 1000.0, 1)]);
    table.row(["throughput q/s".into(), f(throughput, 0)]);
    table.row(["mean µs".into(), f(mean, 0)]);
    table.row(["p50 µs".into(), f(micros(p50), 0)]);
    table.row(["p90 µs".into(), f(micros(p90), 0)]);
    table.row(["p99 µs".into(), f(micros(p99), 0)]);
    table.row(["overload retries".into(), retries.to_string()]);
    println!("{}", table.render());
    println!("server stats: {server_stats}\n");

    let json = format!(
        "{{\n  \"experiment\": \"server_load\",\n  \"seed\": {seed},\n  \
         \"connections\": {connections},\n  \"queries_per_connection\": {per_conn},\n  \
         \"workers\": {workers},\n  \"total_queries\": {total},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \"throughput_qps\": {throughput:.1},\n  \
         \"latency_us\": {{\"mean\": {mean:.0}, \"p50\": {p50:.0}, \"p90\": {p90:.0}, \
         \"p99\": {p99:.0}}},\n  \"overload_retries\": {retries},\n  \
         \"server_stats\": {server_stats}\n}}\n",
        wall_ms = wall.as_secs_f64() * 1000.0,
        p50 = micros(p50),
        p90 = micros(p90),
        p99 = micros(p99),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}
