//! **EXT-9**: query-service load generator — N concurrent connections ×
//! M mixed PSQL queries (point windows, region overlaps, juxtaposition
//! joins) against an in-process `psql-server`, reporting throughput and
//! client-observed latency percentiles. A second **mixed read/write**
//! phase replays the same read workload with a fraction of the
//! operations turned into dynamic `INSERT`s against a WAL-backed server
//! with the background merge enabled, so the numbers pin how much the
//! sustained-write path (delta buffering + group commit + merge-repack)
//! costs concurrent readers. Results are written to `BENCH_server.json`
//! as the machine-readable baseline.
//!
//! A third **connection-storm** phase holds 10k simultaneous
//! connections open against one event-driven server and drives waves of
//! pipeline-framed requests through all of them, verifying every
//! response correlates to its request id — the paper-era front end's
//! "many interactive users" scenario at modern scale.
//!
//! Scale via environment (all optional):
//! `SERVER_LOAD_CONNECTIONS` (default 16), `SERVER_LOAD_QUERIES` per
//! connection (default 25), `SERVER_LOAD_WORKERS` (default 4),
//! `SERVER_LOAD_STORM_CONNECTIONS` (default 10000, `0` skips the storm),
//! `SERVER_LOAD_STORM_WAVES` (default 3),
//! `SERVER_LOAD_OUT` (default `BENCH_server.json`).
//!
//! Run with: `cargo run --release -p rtree-bench --bin server_load`

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::{decode_response, encode_request, Request, Response};
use psql_server::server::{Server, ServerConfig};
use rtree_bench::report::{f, Table};
use rtree_bench::SeededWorkload;
use rtree_geom::{Point, Rect, SpatialObject};
use rtree_workload::{points, queries, usmap};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Renders a window as the PSQL `{cx +- hw, cy +- hh}` literal.
fn window_literal(w: &Rect) -> String {
    format!(
        "{{{:.3} +- {:.3}, {:.3} +- {:.3}}}",
        (w.min_x + w.max_x) / 2.0,
        (w.max_x - w.min_x) / 2.0,
        (w.min_y + w.max_y) / 2.0,
        (w.max_y - w.min_y) / 2.0,
    )
}

const JUXTAPOSITION: &str = "select city, zone from cities, time-zones on us-map, time-zone-map \
                             at cities.loc covered-by time-zones.loc";

/// One scripted client operation.
#[derive(Clone)]
enum Op {
    Query(String),
    /// Insert a point into `us-map` with this label.
    Insert(String, Point),
}

/// Latency sets one load phase produces.
struct PhaseResult {
    reads: Vec<Duration>,
    writes: Vec<Duration>,
    retries: u64,
    wall: Duration,
    server_stats: String,
}

/// Runs `scripts` against a freshly started server with `config`,
/// returning read/write latencies separately.
fn run_phase(scripts: Vec<Vec<Op>>, config: ServerConfig) -> PhaseResult {
    let server = Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config)
        .expect("bind ephemeral");
    let addr = server.local_addr();

    let started = Instant::now();
    let handles: Vec<_> = scripts
        .into_iter()
        .enumerate()
        .map(|(c, script)| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_timeout(addr, Duration::from_secs(60)).expect("connect");
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                let mut retries = 0u64;
                for op in &script {
                    let t0 = Instant::now();
                    match op {
                        Op::Query(text) => loop {
                            match client.query(text).expect("roundtrip") {
                                Response::Result { result, .. } => {
                                    if text == JUXTAPOSITION {
                                        assert_eq!(result.len(), 42, "conn {c}: wrong join result");
                                    }
                                    reads.push(t0.elapsed());
                                    break;
                                }
                                Response::Overloaded { retry_after_ms, .. } => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(
                                        retry_after_ms.max(1) as u64,
                                    ));
                                }
                                other => panic!("conn {c}: unexpected response {other:?}"),
                            }
                        },
                        Op::Insert(label, p) => loop {
                            match client
                                .insert("us-map", label, SpatialObject::Point(*p))
                                .expect("roundtrip")
                            {
                                Response::Done { .. } => {
                                    writes.push(t0.elapsed());
                                    break;
                                }
                                Response::Overloaded { retry_after_ms, .. } => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(
                                        retry_after_ms.max(1) as u64,
                                    ));
                                }
                                other => panic!("conn {c}: unexpected response {other:?}"),
                            }
                        },
                    }
                }
                (reads, writes, retries)
            })
        })
        .collect();

    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut retries = 0u64;
    for h in handles {
        let (r, w, x) = h.join().expect("client thread panicked");
        reads.extend(r);
        writes.extend(w);
        retries += x;
    }
    let wall = started.elapsed();

    let mut stats_client = Client::connect_timeout(addr, Duration::from_secs(10)).expect("stats");
    let server_stats = stats_client.stats().expect("stats");
    drop(stats_client);
    server.stop();

    PhaseResult {
        reads,
        writes,
        retries,
        wall,
        server_stats,
    }
}

/// Storm-phase outcome: every request answered and correlated, plus
/// client-observed latencies.
struct StormResult {
    connections: usize,
    waves: u64,
    latencies: Vec<Duration>,
    overloads: u64,
    wall: Duration,
    server_stats: String,
}

/// Holds `connections` simultaneous connections open against one server
/// and drives `waves` request waves through all of them — mostly pings
/// (pure connection-scale traffic answered on the reactor) with a real
/// query on every 16th connection. Panics on any dropped, garbled, or
/// mis-correlated response.
fn run_storm(connections: usize, waves: u64, workers: usize) -> StormResult {
    // Both ends of every connection live in this process.
    match epoll::raise_nofile_limit((connections as u64) * 2 + 4_096) {
        Ok(limit) => println!("storm: RLIMIT_NOFILE soft limit now {limit}"),
        Err(e) => println!("storm: could not raise RLIMIT_NOFILE ({e}); proceeding"),
    }
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity: 2_048,
            ..ServerConfig::default()
        },
    )
    .expect("bind storm server");
    let addr = server.local_addr();

    const SHARDS: usize = 16;
    let per_shard = connections.div_ceil(SHARDS);
    let started = Instant::now();
    let handles: Vec<_> = (0..SHARDS)
        .map(|s| {
            std::thread::spawn(move || {
                let count = per_shard.min(connections.saturating_sub(s * per_shard));
                let mut conns: Vec<TcpStream> = (0..count)
                    .map(|i| {
                        let stream = TcpStream::connect(addr)
                            .unwrap_or_else(|e| panic!("shard {s} conn {i}: connect: {e}"));
                        stream.set_nodelay(true).expect("nodelay");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(120)))
                            .expect("timeout");
                        stream
                    })
                    .collect();
                let mut latencies = Vec::with_capacity(count * waves as usize);
                let mut overloads = 0u64;
                let mut sent = Vec::with_capacity(count);
                for wave in 0..waves {
                    sent.clear();
                    for (i, stream) in conns.iter_mut().enumerate() {
                        let id = ((s * per_shard + i) as u64) * waves + wave + 1;
                        let payload = if i % 16 == 0 {
                            encode_request(&Request::Query {
                                id,
                                timeout_ms: 60_000,
                                text: "select zone from time-zones".into(),
                            })
                        } else {
                            encode_request(&Request::Ping { id })
                        };
                        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                        frame.extend_from_slice(&payload);
                        let t0 = Instant::now();
                        stream.write_all(&frame).expect("write request");
                        sent.push((id, t0));
                    }
                    for (i, stream) in conns.iter_mut().enumerate() {
                        let (id, t0) = sent[i];
                        let mut header = [0u8; 4];
                        stream.read_exact(&mut header).expect("frame header");
                        let len = u32::from_be_bytes(header) as usize;
                        let mut payload = vec![0u8; len];
                        stream.read_exact(&mut payload).expect("frame payload");
                        latencies.push(t0.elapsed());
                        let got = match decode_response(&payload).expect("decodable response") {
                            Response::Pong { id } => id,
                            Response::Result { id, result, .. } => {
                                assert_eq!(result.len(), 4, "garbled result");
                                id
                            }
                            Response::Overloaded { id, .. } => {
                                overloads += 1;
                                id
                            }
                            other => panic!("shard {s} conn {i}: unexpected {other:?}"),
                        };
                        assert_eq!(got, id, "shard {s} conn {i}: wrong correlation");
                    }
                }
                (latencies, overloads)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut overloads = 0u64;
    for h in handles {
        let (l, o) = h.join().expect("storm shard panicked");
        latencies.extend(l);
        overloads += o;
    }
    let wall = started.elapsed();

    let mut stats_client = Client::connect_timeout(addr, Duration::from_secs(10)).expect("stats");
    let server_stats = stats_client.stats().expect("stats");
    drop(stats_client);
    server.stop();
    StormResult {
        connections,
        waves,
        latencies,
        overloads,
        wall,
        server_stats,
    }
}

struct Percentiles {
    mean: f64,
    p50: f64,
    p90: f64,
    p99: f64,
}

fn percentiles(latencies: &mut [Duration]) -> Percentiles {
    latencies.sort_unstable();
    let total = latencies.len().max(1);
    let micros = |d: Duration| d.as_micros() as f64;
    let pct =
        |q: f64| micros(latencies[(((total as f64) * q).ceil() as usize).clamp(1, total) - 1]);
    Percentiles {
        mean: latencies.iter().map(|&d| micros(d)).sum::<f64>() / total as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
    }
}

fn main() {
    let connections = env_usize("SERVER_LOAD_CONNECTIONS", 16);
    let per_conn = env_usize("SERVER_LOAD_QUERIES", 25);
    let workers = env_usize("SERVER_LOAD_WORKERS", 4);
    let out_path =
        std::env::var("SERVER_LOAD_OUT").unwrap_or_else(|_| "BENCH_server.json".to_owned());
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    println!(
        "EXT-9 — server load: {connections} connections x {per_conn} mixed queries, \
         {workers} workers (seed {seed})\n"
    );

    // One seeded query stream feeds every connection's window geometry,
    // drawn in the us-map frame: small point-like windows for the city
    // search, larger ones for the lake overlap.
    let mut qrng = workload.query_rng();
    let point_windows =
        queries::window_queries(&mut qrng, &usmap::FRAME, connections * per_conn, 0.002);
    let region_windows =
        queries::window_queries(&mut qrng, &usmap::FRAME, connections * per_conn, 0.02);
    let query_text = |c: usize, i: usize| match (c + i) % 3 {
        0 => format!(
            "select city, population from cities on us-map at loc covered-by {}",
            window_literal(&point_windows[c * per_conn + i])
        ),
        1 => format!(
            "select lake from lakes on lake-map at loc overlapping {}",
            window_literal(&region_windows[c * per_conn + i])
        ),
        _ => JUXTAPOSITION.to_owned(),
    };
    let read_scripts: Vec<Vec<Op>> = (0..connections)
        .map(|c| (0..per_conn).map(|i| Op::Query(query_text(c, i))).collect())
        .collect();
    // The mixed phase keeps the same read stream and turns every fourth
    // operation into a dynamic insert (25% writes), so reads contend with
    // group commits, delta-merged queries, and background merge swaps.
    let insert_points = points::uniform(&mut qrng, &usmap::FRAME, connections * per_conn);
    let mixed_scripts: Vec<Vec<Op>> = (0..connections)
        .map(|c| {
            (0..per_conn)
                .map(|i| {
                    if (c + i) % 4 == 3 {
                        Op::Insert(format!("load-{c}-{i}"), insert_points[c * per_conn + i])
                    } else {
                        Op::Query(query_text(c, i))
                    }
                })
                .collect()
        })
        .collect();

    let read_config = ServerConfig {
        workers,
        queue_capacity: (connections * 4).max(64),
        ..ServerConfig::default()
    };
    let wal_path = std::env::temp_dir().join(format!(
        "server-load-mixed-{}-{seed}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal_path);
    let mixed_config = ServerConfig {
        workers,
        queue_capacity: (connections * 4).max(64),
        wal_path: Some(wal_path.clone()),
        merge_threshold: 64,
        merge_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };

    let read_phase = run_phase(read_scripts, read_config);
    let mixed_phase = run_phase(mixed_scripts, mixed_config);
    let _ = std::fs::remove_file(&wal_path);

    let storm_connections = env_usize("SERVER_LOAD_STORM_CONNECTIONS", 10_000);
    let storm_waves = env_usize("SERVER_LOAD_STORM_WAVES", 3) as u64;
    let storm = if storm_connections > 0 {
        println!(
            "storm: {storm_connections} simultaneous connections x {storm_waves} request waves"
        );
        Some(run_storm(storm_connections, storm_waves, workers))
    } else {
        None
    };

    let mut ro_reads = read_phase.reads;
    let ro = percentiles(&mut ro_reads);
    let ro_total = ro_reads.len();
    let ro_throughput = ro_total as f64 / read_phase.wall.as_secs_f64();

    let mut mx_reads = mixed_phase.reads;
    let mut mx_writes = mixed_phase.writes;
    let mx = percentiles(&mut mx_reads);
    let mw = percentiles(&mut mx_writes);
    let mx_total = mx_reads.len() + mx_writes.len();
    let mx_throughput = mx_total as f64 / mixed_phase.wall.as_secs_f64();
    let p99_ratio = if ro.p99 > 0.0 { mx.p99 / ro.p99 } else { 0.0 };

    let mut table = Table::new(["metric", "read-only", "mixed r/w"]);
    table.row([
        "operations".into(),
        ro_total.to_string(),
        format!("{} reads + {} inserts", mx_reads.len(), mx_writes.len()),
    ]);
    table.row([
        "wall ms".into(),
        f(read_phase.wall.as_secs_f64() * 1000.0, 1),
        f(mixed_phase.wall.as_secs_f64() * 1000.0, 1),
    ]);
    table.row([
        "throughput op/s".into(),
        f(ro_throughput, 0),
        f(mx_throughput, 0),
    ]);
    table.row(["read mean µs".into(), f(ro.mean, 0), f(mx.mean, 0)]);
    table.row(["read p50 µs".into(), f(ro.p50, 0), f(mx.p50, 0)]);
    table.row(["read p90 µs".into(), f(ro.p90, 0), f(mx.p90, 0)]);
    table.row(["read p99 µs".into(), f(ro.p99, 0), f(mx.p99, 0)]);
    table.row(["insert p50 µs".into(), "-".into(), f(mw.p50, 0)]);
    table.row(["insert p99 µs".into(), "-".into(), f(mw.p99, 0)]);
    table.row([
        "overload retries".into(),
        read_phase.retries.to_string(),
        mixed_phase.retries.to_string(),
    ]);
    println!("{}", table.render());
    println!("mixed read p99 = {:.2}x the read-only read p99", p99_ratio);
    println!("read-only server stats: {}", read_phase.server_stats);
    println!("mixed server stats: {}\n", mixed_phase.server_stats);

    let storm_json = match &storm {
        Some(storm) => {
            let mut lat = storm.latencies.clone();
            let sp = percentiles(&mut lat);
            let total = lat.len();
            let throughput = total as f64 / storm.wall.as_secs_f64();
            let mut st = Table::new(["storm metric", "value"]);
            st.row(["connections".into(), storm.connections.to_string()]);
            st.row(["waves".into(), storm.waves.to_string()]);
            st.row(["requests answered".into(), total.to_string()]);
            st.row(["wall ms".into(), f(storm.wall.as_secs_f64() * 1000.0, 1)]);
            st.row(["throughput req/s".into(), f(throughput, 0)]);
            st.row(["latency p50 µs".into(), f(sp.p50, 0)]);
            st.row(["latency p90 µs".into(), f(sp.p90, 0)]);
            st.row(["latency p99 µs".into(), f(sp.p99, 0)]);
            st.row(["overloaded answers".into(), storm.overloads.to_string()]);
            println!("{}", st.render());
            println!("storm: every one of the {total} responses correlated to its request id\n");
            format!(
                ",\n  \"storm\": {{\n    \"connections\": {conns},\n    \
                 \"waves\": {waves},\n    \"requests\": {total},\n    \
                 \"wall_ms\": {wall:.1},\n    \"throughput_rps\": {throughput:.1},\n    \
                 \"latency_us\": {{\"mean\": {mean:.0}, \"p50\": {p50:.0}, \
                 \"p90\": {p90:.0}, \"p99\": {p99:.0}}},\n    \
                 \"overloaded_answers\": {overloads},\n    \
                 \"all_responses_correlated\": true,\n    \
                 \"server_stats\": {stats}\n  }}",
                conns = storm.connections,
                waves = storm.waves,
                wall = storm.wall.as_secs_f64() * 1000.0,
                mean = sp.mean,
                p50 = sp.p50,
                p90 = sp.p90,
                p99 = sp.p99,
                overloads = storm.overloads,
                stats = storm.server_stats,
            )
        }
        None => String::new(),
    };

    let json = format!(
        "{{\n  \"experiment\": \"server_load\",\n  \"seed\": {seed},\n  \
         \"connections\": {connections},\n  \"queries_per_connection\": {per_conn},\n  \
         \"workers\": {workers},\n  \"total_queries\": {ro_total},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \"throughput_qps\": {ro_throughput:.1},\n  \
         \"latency_us\": {{\"mean\": {mean:.0}, \"p50\": {p50:.0}, \"p90\": {p90:.0}, \
         \"p99\": {p99:.0}}},\n  \"overload_retries\": {ro_retries},\n  \
         \"mixed\": {{\n    \"reads\": {mx_r},\n    \"inserts\": {mx_w},\n    \
         \"wall_ms\": {mx_wall:.1},\n    \"throughput_ops\": {mx_throughput:.1},\n    \
         \"read_latency_us\": {{\"mean\": {mxm:.0}, \"p50\": {mx50:.0}, \"p90\": {mx90:.0}, \
         \"p99\": {mx99:.0}}},\n    \"insert_latency_us\": {{\"p50\": {mw50:.0}, \
         \"p99\": {mw99:.0}}},\n    \"read_p99_vs_read_only\": {p99_ratio:.3},\n    \
         \"overload_retries\": {mx_retries},\n    \"server_stats\": {mx_stats}\n  }}{storm_json},\n  \
         \"server_stats\": {ro_stats}\n}}\n",
        wall_ms = read_phase.wall.as_secs_f64() * 1000.0,
        mean = ro.mean,
        p50 = ro.p50,
        p90 = ro.p90,
        p99 = ro.p99,
        ro_retries = read_phase.retries,
        mx_r = mx_reads.len(),
        mx_w = mx_writes.len(),
        mx_wall = mixed_phase.wall.as_secs_f64() * 1000.0,
        mxm = mx.mean,
        mx50 = mx.p50,
        mx90 = mx.p90,
        mx99 = mx.p99,
        mw50 = mw.p50,
        mw99 = mw.p99,
        mx_retries = mixed_phase.retries,
        mx_stats = mixed_phase.server_stats,
        ro_stats = read_phase.server_stats,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}
