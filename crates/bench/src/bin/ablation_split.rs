//! **EXT-1**: split-policy ablation for Guttman's INSERT.
//!
//! The 1985 paper just says "Guttman's INSERT"; Guttman 1984 described
//! three node-split algorithms. This sweep shows how much the choice
//! matters — and that PACK beats all of them on structure at scale.
//!
//! Run with: `cargo run --release -p rtree-bench --bin ablation_split`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, build_pack, measure, SeededWorkload};
use rtree_index::{RTreeConfig, SplitPolicy};

fn main() {
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    println!("EXT-1 — INSERT split-policy ablation (M=4, 1000 point queries, seed {seed})\n");

    for j in [300usize, 900] {
        let items = workload.uniform_items(j);
        let query_points = workload.point_queries(1000);

        let mut table = Table::new(["builder", "C", "O", "D", "N", "A"]);
        for split in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::Exhaustive,
        ] {
            let tree = build_insert(&items, split, RTreeConfig::PAPER);
            let row = measure(&tree, &query_points);
            table.row([
                format!("INSERT {split:?}"),
                f(row.coverage, 0),
                f(row.overlap, 0),
                row.depth.to_string(),
                row.nodes.to_string(),
                f(row.avg_visited, 3),
            ]);
        }
        let packed = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
        let row = measure(&packed, &query_points);
        table.row([
            "PACK".to_string(),
            f(row.coverage, 0),
            f(row.overlap, 0),
            row.depth.to_string(),
            row.nodes.to_string(),
            f(row.avg_visited, 3),
        ]);
        println!("J = {j}:\n{}", table.render());
    }
    println!("Better splits (quadratic, exhaustive) close part of the gap, at");
    println!("ever-higher insertion cost — but none reach PACK's node count or");
    println!("full occupancy, because requirement (2) of §3.2 still binds them.");
}
