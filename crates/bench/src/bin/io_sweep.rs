//! **EXT-5**: disk behaviour — page I/O and buffer hit rates for packed
//! vs dynamic trees across buffer-pool sizes ("R-trees … are better in
//! dealing with paging and disk I/O buffering", §1).
//!
//! Run with: `cargo run --release -p rtree-bench --bin io_sweep`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, build_pack, SeededWorkload};
use rtree_index::{RTreeConfig, SearchStats, SplitPolicy};
use rtree_storage::{BufferPool, DiskRTree, Pager};

fn main() -> std::io::Result<()> {
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    let j = 20_000;
    println!("EXT-5 — disk I/O: packed vs dynamic, 4 KiB pages, M=64, J={j} (seed {seed})\n");

    let items = workload.uniform_items(j);
    let config = RTreeConfig::with_branching(64);

    let packed = build_pack(&items, PackStrategy::NearestNeighbor, config);
    let dynamic = build_insert(&items, SplitPolicy::Quadratic, config);

    let pager_p = Pager::temp()?;
    let disk_p = DiskRTree::store(&packed, &pager_p)?;
    let pager_d = Pager::temp()?;
    let disk_d = DiskRTree::store(&dynamic, &pager_d)?;
    println!(
        "space: PACK {} pages vs INSERT {} pages\n",
        disk_p.pages(),
        disk_d.pages()
    );

    let windows = workload.window_queries(500, 0.005);

    let mut table = Table::new([
        "pool frames",
        "tree",
        "page requests",
        "disk reads",
        "hit %",
        "reads/query",
    ]);
    for frames in [8usize, 32, 128, 512] {
        for (name, disk, pager) in [("PACK", &disk_p, &pager_p), ("INSERT", &disk_d, &pager_d)] {
            let pool = BufferPool::new(pager, frames);
            let mut stats = SearchStats::default();
            for w in &windows {
                disk.search_within(&pool, w, &mut stats)?;
            }
            let b = pool.stats();
            table.row([
                frames.to_string(),
                name.to_string(),
                (b.hits + b.misses).to_string(),
                b.misses.to_string(),
                f(b.hit_ratio() * 100.0, 1),
                f(b.misses as f64 / windows.len() as f64, 2),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Fewer, fuller nodes mean fewer page requests per query AND a");
    println!("smaller working set, so the packed tree wins twice: fewer logical");
    println!("requests and a higher hit ratio at every pool size.");
    Ok(())
}
