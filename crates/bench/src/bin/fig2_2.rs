//! **Figure 2.2**: juxtaposition — synthesizing information from two
//! pictures of the same geographic area, with the join-cost comparison
//! that motivates simultaneous R-tree search.
//!
//! Run with: `cargo run -p rtree-bench --bin fig2_2`

use psql::database::PictorialDatabase;
use psql::exec::query;
use psql::join::{nested_loop_join, rtree_join, JoinStats};
use psql::render::render;
use psql::SpatialOp;
use rtree_bench::report::Table;

fn main() {
    let db = PictorialDatabase::with_us_map();
    let text = "select city, zone from cities, time-zones \
                on us-map, time-zone-map \
                at cities.loc covered-by time-zones.loc";
    println!("Figure 2.2 — cities juxtaposed with time zones\n");
    println!("PSQL> {text}\n");
    let result = query(&db, text).expect("valid query");
    println!("Figure 2.2c — juxtaposed output:\n{result}");

    println!("Figure 2.2a/b — the two input pictures:");
    println!(
        "{}",
        render(db.picture("us-map").expect("exists"), &[], 80, 20)
    );
    println!(
        "{}",
        render(db.picture("time-zone-map").expect("exists"), &[], 80, 20)
    );

    // Join cost: simultaneous descent vs nested loop.
    let a = db.picture("us-map").expect("exists").tree();
    let b = db.picture("time-zone-map").expect("exists").tree();
    let mut table = Table::new(["method", "node pairs", "candidates"]);
    let mut fast = JoinStats::default();
    rtree_join(a, b, SpatialOp::CoveredBy, &mut fast);
    table.row([
        "simultaneous R-tree search".to_string(),
        fast.node_pairs_visited.to_string(),
        fast.candidates.to_string(),
    ]);
    let mut slow = JoinStats::default();
    nested_loop_join(a, b, SpatialOp::CoveredBy, &mut slow);
    table.row([
        "nested loop".to_string(),
        slow.node_pairs_visited.to_string(),
        slow.candidates.to_string(),
    ]);
    println!("join cost:\n{}", table.render());
}
