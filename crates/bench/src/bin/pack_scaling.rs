//! **EXT-8**: construction-cost scaling — the literal O(n²) PACK of the
//! paper's pseudocode vs the grid-accelerated nearest-neighbour search,
//! vs the sort-based packers and dynamic INSERT.
//!
//! The paper notes selecting all `M` group members simultaneously "could
//! be combinatorially explosive"; even its one-at-a-time NN is quadratic
//! when implemented naively. This sweep shows where the naive variant
//! stops being viable and that the grid makes PACK's build cost
//! comparable to a sort.
//!
//! Run with: `cargo run --release -p rtree-bench --bin pack_scaling`

use packed_rtree_core::{pack_with, PackStrategy};
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, experiment_seed};
use rtree_index::{RTreeConfig, SplitPolicy};
use rtree_workload::{points, rng, PAPER_UNIVERSE};
use std::time::Instant;

fn main() {
    let seed = experiment_seed();
    println!("EXT-8 — build-cost scaling, M=4 (seed {seed}); times in ms\n");

    let mut table = Table::new([
        "n", "pack-nn(grid)", "pack-nn-naive", "pack-str", "pack-hilbert", "insert-quad",
    ]);
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let mut data_rng = rng(seed);
        let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
        let items = points::as_items(&pts);

        let time = |f: &dyn Fn() -> usize| -> f64 {
            let start = Instant::now();
            let len = f();
            assert_eq!(len, n);
            start.elapsed().as_secs_f64() * 1000.0
        };

        let grid = time(&|| pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::NearestNeighbor).len());
        // The naive O(n²) scan becomes painful quickly; cap it.
        let naive = if n <= 16_000 {
            f(
                time(&|| {
                    pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::NearestNeighborNaive)
                        .len()
                }),
                1,
            )
        } else {
            "(skipped)".to_string()
        };
        let str_t = time(&|| pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::SortTileRecursive).len());
        let hil = time(&|| pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::Hilbert).len());
        let ins = time(&|| build_insert(&items, SplitPolicy::Quadratic, RTreeConfig::PAPER).len());

        table.row([
            n.to_string(),
            f(grid, 1),
            naive,
            f(str_t, 1),
            f(hil, 1),
            f(ins, 1),
        ]);
    }
    println!("{}", table.render());
    println!("The grid NN keeps the paper's algorithm near sort cost (O(n log n)-ish);");
    println!("the pseudocode's literal NN scan grows quadratically and falls behind");
    println!("dynamic insertion well before 100k objects.");
}
