//! **EXT-8**: construction-cost scaling — the literal O(n²) PACK of the
//! paper's pseudocode vs the grid-accelerated nearest-neighbour search,
//! vs the sort-based packers and dynamic INSERT — plus the thread sweep
//! of the parallel PACK pipeline and the query hot-path comparison.
//!
//! The paper notes selecting all `M` group members simultaneously "could
//! be combinatorially explosive"; even its one-at-a-time NN is quadratic
//! when implemented naively. This sweep shows where the naive variant
//! stops being viable and that the grid makes PACK's build cost
//! comparable to a sort.
//!
//! The second half measures `pack_parallel` at 1M points across thread
//! counts (output is bit-identical at every count, so only wall-clock
//! differs) and steady-state window-query cost through the stats path
//! vs the allocation-free `SearchScratch` path. Results are written to
//! `BENCH_pack.json` at the repo root as the machine-readable baseline.
//!
//! Run with: `cargo run --release -p rtree-bench --bin pack_scaling`

use packed_rtree_core::{
    default_threads, effective_threads, pack_parallel_with, pack_with, PackStrategy,
};
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, experiment_seed};
use rtree_index::{RTreeConfig, SearchScratch, SearchStats, SplitPolicy};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::time::Instant;

fn main() {
    let seed = experiment_seed();
    println!("EXT-8 — build-cost scaling, M=4 (seed {seed}); times in ms\n");

    let mut table = Table::new([
        "n",
        "pack-nn(grid)",
        "pack-nn-naive",
        "pack-str",
        "pack-hilbert",
        "insert-quad",
    ]);
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let mut data_rng = rng(seed);
        let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
        let items = points::as_items(&pts);

        let time = |f: &dyn Fn() -> usize| -> f64 {
            let start = Instant::now();
            let len = f();
            assert_eq!(len, n);
            start.elapsed().as_secs_f64() * 1000.0
        };

        let grid = time(&|| {
            pack_with(
                items.clone(),
                RTreeConfig::PAPER,
                PackStrategy::NearestNeighbor,
            )
            .len()
        });
        // The naive O(n²) scan becomes painful quickly; cap it.
        let naive = if n <= 16_000 {
            f(
                time(&|| {
                    pack_with(
                        items.clone(),
                        RTreeConfig::PAPER,
                        PackStrategy::NearestNeighborNaive,
                    )
                    .len()
                }),
                1,
            )
        } else {
            "(skipped)".to_string()
        };
        let str_t = time(&|| {
            pack_with(
                items.clone(),
                RTreeConfig::PAPER,
                PackStrategy::SortTileRecursive,
            )
            .len()
        });
        let hil =
            time(&|| pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::Hilbert).len());
        let ins = time(&|| build_insert(&items, SplitPolicy::Quadratic, RTreeConfig::PAPER).len());

        table.row([
            n.to_string(),
            f(grid, 1),
            naive,
            f(str_t, 1),
            f(hil, 1),
            f(ins, 1),
        ]);
    }
    println!("{}", table.render());
    println!("The grid NN keeps the paper's algorithm near sort cost (O(n log n)-ish);");
    println!("the pseudocode's literal NN scan grows quadratically and falls behind");
    println!("dynamic insertion well before 100k objects.\n");

    parallel_sweep(seed);
}

/// The parallel-pipeline baseline: build throughput across thread counts
/// at 1M points, and query ns/op through both search paths.
fn parallel_sweep(seed: u64) {
    let hw = default_threads();
    let n = 1_000_000usize;
    println!("Parallel PACK sweep — n = {n}, M=4, hardware threads = {hw}\n");

    let mut data_rng = rng(seed ^ 0x9e3779b97f4a7c15);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
    let items = points::as_items(&pts);

    // Untimed warm-up build: the first 1M-item pack pays one-off page
    // faults and allocator growth that would otherwise be booked against
    // whichever thread count runs first.
    std::hint::black_box(pack_parallel_with(
        items.clone(),
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
        1,
    ));

    let mut table = Table::new(["threads", "effective", "build ms", "items/s", "speedup"]);
    let mut build_rows = Vec::new();
    let mut seq_ms = 0.0f64;
    let mut reference = None;
    for threads in [1usize, 2, 4, 8] {
        // Best of three runs per count: one measurement at 1M items is
        // noisy enough to fake super-linear speedups on loaded hosts.
        let mut ms = f64::INFINITY;
        let mut tree = None;
        for _ in 0..3 {
            let start = Instant::now();
            let t = pack_parallel_with(
                items.clone(),
                RTreeConfig::PAPER,
                PackStrategy::NearestNeighbor,
                threads,
            );
            ms = ms.min(start.elapsed().as_secs_f64() * 1000.0);
            tree = Some(t);
        }
        let tree = tree.expect("two runs above");
        assert_eq!(tree.len(), n);
        // Determinism spot-check rides along with the measurement.
        match &reference {
            None => {
                seq_ms = ms;
                reference = Some(tree);
            }
            Some(seq) => assert_eq!(&tree, seq, "parallel output diverged at {threads} threads"),
        }
        let rate = n as f64 / (ms / 1000.0);
        let eff = effective_threads(threads, n);
        table.row([
            threads.to_string(),
            eff.to_string(),
            f(ms, 1),
            f(rate, 0),
            f(seq_ms / ms, 2),
        ]);
        build_rows.push((threads, eff, ms, rate, seq_ms / ms));
    }
    println!("{}", table.render());

    // Query hot path: steady-state window queries, stats path vs the
    // reusable-scratch path. Same queries, same tree, same results.
    let tree = reference.expect("built above");
    let mut q_rng = rng(seed ^ 0x5851f42d4c957f2d);
    let windows = queries::window_queries(&mut q_rng, &PAPER_UNIVERSE, 2_000, 0.0001);

    let mut stats = SearchStats::default();
    // Warm-up (page in the tree), then measure.
    for w in windows.iter().take(200) {
        std::hint::black_box(tree.search_within(w, &mut stats));
    }
    let mut stats = SearchStats::default();
    let start = Instant::now();
    for w in &windows {
        std::hint::black_box(tree.search_within(w, &mut stats));
    }
    let stats_ns = start.elapsed().as_nanos() as f64 / windows.len() as f64;

    let mut scratch = SearchScratch::new();
    // Full warm-up pass: after seeing the whole workload once the scratch
    // buffers have reached their high-water marks and must never grow again.
    for w in &windows {
        std::hint::black_box(tree.search_within_into(w, &mut scratch));
    }
    let warm = scratch.capacities();
    let start = Instant::now();
    for w in &windows {
        std::hint::black_box(tree.search_within_into(w, &mut scratch));
    }
    let scratch_ns = start.elapsed().as_nanos() as f64 / windows.len() as f64;
    assert_eq!(scratch.capacities(), warm, "steady state reallocated");

    let mut qt = Table::new(["query path", "ns/op", "avg nodes visited"]);
    qt.row([
        "stats (alloc per query)".into(),
        f(stats_ns, 0),
        f(stats.avg_nodes_visited(), 2),
    ]);
    qt.row([
        "scratch (alloc-free)".into(),
        f(scratch_ns, 0),
        "same traversal".into(),
    ]);
    println!("{}", qt.render());

    let json = format!(
        "{{\n  \"experiment\": \"pack_parallel_baseline\",\n  \"seed\": {seed},\n  \
         \"n\": {n},\n  \"branching\": 4,\n  \"hardware_threads\": {hw},\n  \
         \"build\": [\n{}\n  ],\n  \
         \"window_query\": {{\n    \"queries\": {qn},\n    \"selectivity\": 0.0001,\n    \
         \"stats_path_ns_per_op\": {stats_ns:.0},\n    \"scratch_path_ns_per_op\": {scratch_ns:.0},\n    \
         \"avg_nodes_visited\": {anv:.3}\n  }}\n}}\n",
        build_rows
            .iter()
            .map(|(t, eff, ms, rate, speedup)| format!(
                "    {{\"threads\": {t}, \"effective_threads\": {eff}, \"ms\": {ms:.1}, \"items_per_s\": {rate:.0}, \"speedup\": {speedup:.3}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        qn = windows.len(),
        anv = stats.avg_nodes_visited(),
    );
    match std::fs::write("BENCH_pack.json", &json) {
        Ok(()) => println!("wrote BENCH_pack.json"),
        Err(e) => println!("could not write BENCH_pack.json: {e}"),
    }
    if hw == 1 {
        println!("note: this host exposes a single hardware thread; requested counts are");
        println!("clamped to 1 effective worker, so speedups ≈ 1.0 are expected here —");
        println!("the sweep still verifies bit-identical output per requested count.");
    }
}
