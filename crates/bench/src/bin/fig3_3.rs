//! **Figure 3.3**: the overlap phenomenon — a window that intersects
//! every root entry defeats R-tree pruning.
//!
//! Builds a dynamically grown tree over uniform points (dynamic trees
//! have overlapping internal MBRs) and compares windows of identical
//! size placed where they intersect many vs few top-level entries,
//! reporting how pruning degrades with root-entry overlap.
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_3`

use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, experiment_seed};
use rtree_geom::Rect;
use rtree_index::{Child, RTreeConfig, SearchStats, SplitPolicy};
use rtree_workload::{points, rng, PAPER_UNIVERSE};

fn main() {
    println!("Figure 3.3 — window position vs pruning effectiveness\n");
    let mut rng = rng(experiment_seed());
    let pts = points::uniform(&mut rng, &PAPER_UNIVERSE, 800);
    let tree = build_insert(
        &points::as_items(&pts),
        SplitPolicy::Linear,
        RTreeConfig::PAPER,
    );
    println!(
        "dynamic tree: {} points, {} nodes, depth {}",
        tree.len(),
        tree.node_count(),
        tree.depth()
    );
    let root = tree.node(tree.root());
    println!("root entries and their MBRs:");
    for e in &root.entries {
        if let Child::Node(_) = e.child {
            println!("  {}", e.mbr);
        }
    }

    // Sweep a fixed-size window over a grid of positions; for each,
    // record how many root entries it intersects and the search cost.
    let side = 120.0;
    let mut table = Table::new([
        "root entries hit",
        "windows",
        "avg nodes visited",
        "avg hits",
    ]);
    let mut by_root_hits: std::collections::BTreeMap<usize, (usize, u64, u64)> =
        std::collections::BTreeMap::new();
    for i in 0..9 {
        for j in 0..9 {
            let cx = 100.0 + i as f64 * 100.0;
            let cy = 100.0 + j as f64 * 100.0;
            let w = Rect::new(
                cx - side / 2.0,
                cy - side / 2.0,
                cx + side / 2.0,
                cy + side / 2.0,
            );
            let root_hits = root.entries.iter().filter(|e| e.mbr.intersects(&w)).count();
            let mut stats = SearchStats::default();
            let found = tree.search_within(&w, &mut stats);
            let entry = by_root_hits.entry(root_hits).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += stats.nodes_visited;
            entry.2 += found.len() as u64;
        }
    }
    for (root_hits, (count, visited, hits)) in by_root_hits {
        table.row([
            root_hits.to_string(),
            count.to_string(),
            f(visited as f64 / count as f64, 1),
            f(hits as f64 / count as f64, 1),
        ]);
    }
    println!("\n{}", table.render());
    println!("Windows intersecting every root entry cost several times windows");
    println!("of the same size that touch only one — \"region W intersects all");
    println!("the root entries and the search cannot yet be pruned\". If this");
    println!("overlap phenomenon occurs regularly, the R-tree advantage erodes;");
    println!("PACK minimizes it at construction time.");
}
