//! **EXT-8**: the crash/reopen matrix — scripted fault injection against
//! both page-resident trees, over every (or a sampled set of) physical
//! write positions, across several seeds.
//!
//! For each seed the harness commits a baseline image, snapshots the
//! file, then repeatedly replays a deterministic update workload with a
//! simulated crash at write *k* (torn or dropped write, then total I/O
//! failure), reopens the file cold, and classifies what recovery sees:
//!
//! * `DiskRTree::store_with_meta` (rebuild-and-swap) must roll back to
//!   the previous image at **every** crash point — same epoch, same
//!   query answers — or commit fully when no fault fires;
//! * `PagedRTree` (in-place updates) must reopen at a committed epoch
//!   and either present a clean pre-/post-commit tree or *report* the
//!   inconsistency (checksum or validation failure) — never panic,
//!   never silently serve a wrong-but-plausible tree.
//!
//! Any violation fails the run with a nonzero exit. Environment:
//! `CRASH_SEEDS` (comma-separated, default `7,42,1985`) and
//! `CRASH_POINTS` (crash points sampled per phase, `0` = every write,
//! the default).
//!
//! Run with: `cargo run --release -p rtree-bench --bin crash_matrix`

use rtree_bench::report::Table;
use rtree_geom::Rect;
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats};
use rtree_storage::fault::{FaultKind, FaultPager, FaultScript};
use rtree_storage::{BufferPool, DiskRTree, PageId, PagedRTree, Pager, StorageError};
use rtree_workload::{points, rng, PAPER_UNIVERSE};
use std::io;
use std::path::PathBuf;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("CRASH_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![7, 42, 1985])
}

/// Crash points to exercise: all of `1..=total`, or `budget` evenly
/// spaced ones (always including the first and last write).
fn crash_points(total: u64, budget: u64) -> Vec<u64> {
    if budget == 0 || budget >= total {
        return (1..=total).collect();
    }
    let mut ks: Vec<u64> = (0..budget)
        .map(|i| 1 + i * (total - 1) / (budget - 1).max(1))
        .collect();
    ks.dedup();
    ks
}

fn scratch(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "crash-matrix-{tag}-{seed}-{}.db",
        std::process::id()
    ))
}

fn tree_of(seed: u64, n: usize, branching: usize) -> RTree {
    let mut r = rng(seed);
    let mut tree = RTree::new(RTreeConfig::with_branching(branching));
    for (i, p) in points::uniform(&mut r, &PAPER_UNIVERSE, n)
        .into_iter()
        .enumerate()
    {
        tree.insert(Rect::from_point(p), ItemId(i as u64));
    }
    tree
}

/// One alternating fault kind per crash point, so the matrix covers both
/// torn and dropped writes.
fn kind_for(k: u64) -> FaultKind {
    if k % 2 == 1 {
        FaultKind::TornWrite
    } else {
        FaultKind::FailWrite
    }
}

struct DiskOutcome {
    trials: u64,
    rollbacks: u64,
    violations: u64,
}

fn disk_matrix(seed: u64, budget: u64) -> io::Result<DiskOutcome> {
    let path = scratch("disk", seed);
    let tree_a = tree_of(seed, 150, 8);
    let tree_b = tree_of(seed ^ 0xb00b5, 260, 8);
    let window = {
        let (w, h) = (PAPER_UNIVERSE.width() * 0.4, PAPER_UNIVERSE.height() * 0.4);
        Rect::new(
            PAPER_UNIVERSE.min_x,
            PAPER_UNIVERSE.min_y,
            PAPER_UNIVERSE.min_x + w,
            PAPER_UNIVERSE.min_y + h,
        )
    };
    let answers = |pager: &Pager, disk: &DiskRTree| -> io::Result<Vec<ItemId>> {
        let pool = BufferPool::new(pager, 64);
        let mut stats = SearchStats::default();
        let mut v = disk.search_within(&pool, &window, &mut stats)?;
        v.sort();
        Ok(v)
    };

    {
        let pager = Pager::create(&path)?;
        DiskRTree::store_with_meta(&tree_a, &pager)?;
    }
    let snapshot = std::fs::read(&path)?;
    let expect_a = {
        let pager = Pager::open(&path)?;
        let disk = DiskRTree::open_default(&pager)?;
        answers(&pager, &disk)?
    };

    let total_writes = {
        let pager = Pager::open(&path)?;
        let faulty = FaultPager::new(&pager, FaultScript::new());
        DiskRTree::store_with_meta(&tree_b, &faulty)?;
        faulty.writes_seen()
    };

    let mut out = DiskOutcome {
        trials: 0,
        rollbacks: 0,
        violations: 0,
    };
    for k in crash_points(total_writes, budget) {
        out.trials += 1;
        std::fs::write(&path, &snapshot)?;
        {
            let pager = Pager::open(&path)?;
            let script = FaultScript::new().on_write(k, kind_for(k), true);
            let faulty = FaultPager::new(&pager, script);
            if DiskRTree::store_with_meta(&tree_b, &faulty).is_ok() {
                eprintln!("seed {seed} disk k={k}: store survived its own crash");
                out.violations += 1;
                continue;
            }
        }
        let pager = Pager::open(&path)?;
        match DiskRTree::open_default(&pager) {
            Ok(disk) if disk.epoch() == 1 && disk.len() == tree_a.len() => {
                match answers(&pager, &disk) {
                    Ok(hits) if hits == expect_a => out.rollbacks += 1,
                    Ok(_) => {
                        eprintln!("seed {seed} disk k={k}: rolled-back image answers wrong");
                        out.violations += 1;
                    }
                    Err(e) => {
                        eprintln!("seed {seed} disk k={k}: rolled-back image unreadable: {e}");
                        out.violations += 1;
                    }
                }
            }
            Ok(disk) => {
                eprintln!(
                    "seed {seed} disk k={k}: unexpected epoch {} / len {}",
                    disk.epoch(),
                    disk.len()
                );
                out.violations += 1;
            }
            Err(e) => {
                eprintln!("seed {seed} disk k={k}: reopen failed: {e}");
                out.violations += 1;
            }
        }
    }

    // Control: with no fault the replacement must commit as epoch 2.
    std::fs::write(&path, &snapshot)?;
    {
        let pager = Pager::open(&path)?;
        DiskRTree::store_with_meta(&tree_b, &pager)?;
        let disk = DiskRTree::open_default(&pager)?;
        if disk.epoch() != 2 || disk.len() != tree_b.len() {
            eprintln!("seed {seed} disk control: commit did not land");
            out.violations += 1;
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(out)
}

struct PagedOutcome {
    trials: u64,
    clean_pre: u64,
    clean_post: u64,
    detected: u64,
    violations: u64,
}

fn paged_matrix(seed: u64, budget: u64) -> io::Result<PagedOutcome> {
    let path = scratch("paged", seed);
    let mut r = rng(seed ^ 0xdead);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 120);
    let items: Vec<(Rect, ItemId)> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (Rect::from_point(p), ItemId(i as u64)))
        .collect();
    let (pre_len, post_len) = (70usize, 70 + 50 - 15);

    {
        let pager = Pager::create(&path)?;
        let mut tree = PagedRTree::create(&pager, RTreeConfig::with_branching(8), 16)?;
        for &(mbr, id) in &items[..70] {
            tree.insert(mbr, id)?;
        }
        tree.close()?;
    }
    let snapshot = std::fs::read(&path)?;

    let apply = |store: &dyn rtree_storage::PageStore| -> rtree_storage::StorageResult<()> {
        let mut tree = PagedRTree::open(store, PageId(0), 16)?;
        for &(mbr, id) in &items[70..120] {
            tree.insert(mbr, id)?;
        }
        for &(mbr, id) in &items[..15] {
            tree.remove(mbr, id)?;
        }
        tree.commit()
    };

    let total_writes = {
        let pager = Pager::open(&path)?;
        let faulty = FaultPager::new(&pager, FaultScript::new());
        apply(&faulty).map_err(io::Error::from)?;
        faulty.writes_seen()
    };

    let mut out = PagedOutcome {
        trials: 0,
        clean_pre: 0,
        clean_post: 0,
        detected: 0,
        violations: 0,
    };
    for k in crash_points(total_writes, budget) {
        out.trials += 1;
        std::fs::write(&path, &snapshot)?;
        {
            let pager = Pager::open(&path)?;
            let script = FaultScript::new().on_write(k, kind_for(k), true);
            let faulty = FaultPager::new(&pager, script);
            if apply(&faulty).is_ok() {
                eprintln!("seed {seed} paged k={k}: workload survived its own crash");
                out.violations += 1;
                continue;
            }
        }
        let pager = Pager::open(&path)?;
        let tree = match PagedRTree::open(&pager, PageId(0), 16) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("seed {seed} paged k={k}: reopen failed: {e}");
                out.violations += 1;
                continue;
            }
        };
        match tree.validate_with(false) {
            Ok(Ok(())) if tree.len() == pre_len => out.clean_pre += 1,
            Ok(Ok(())) if tree.len() == post_len => out.clean_post += 1,
            Ok(Ok(())) => {
                eprintln!(
                    "seed {seed} paged k={k}: clean tree with impossible len {}",
                    tree.len()
                );
                out.violations += 1;
            }
            Ok(Err(_)) | Err(StorageError::Corrupt { .. }) => out.detected += 1,
            Err(e) => {
                eprintln!("seed {seed} paged k={k}: validation I/O error: {e}");
                out.violations += 1;
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(out)
}

struct ExtOutcome {
    trials: u64,
    preserved: u64,
    committed: u64,
    violations: u64,
}

/// Crash matrix for the out-of-core external packer: tree A is committed
/// in the destination file, then an external pack of tree B is crashed
/// at every destination write (torn/dropped, then total I/O failure) and
/// at sampled spill-file writes. Reopen must see tree A bit-for-bit —
/// or, only when the crash hit inside the final meta flip, a complete
/// tree B. A spill fault must never disturb the destination at all.
fn extpack_matrix(seed: u64, budget: u64) -> io::Result<ExtOutcome> {
    use rtree_extpack::{pack_external_into, ExtPackConfig};

    let path = scratch("extpack", seed);
    let mut r = rng(seed ^ 0xec7);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 900);
    let items: Vec<(Rect, ItemId)> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (Rect::from_point(p), ItemId(i as u64)))
        .collect();
    let (items_a, items_b) = (&items[..300], &items[..900]);
    let cfg = ExtPackConfig::new(8 * 1024); // tight: forces spilling
    let window = Rect::new(
        PAPER_UNIVERSE.min_x,
        PAPER_UNIVERSE.min_y,
        PAPER_UNIVERSE.min_x + PAPER_UNIVERSE.width() * 0.4,
        PAPER_UNIVERSE.min_y + PAPER_UNIVERSE.height() * 0.4,
    );
    let answers = |pager: &Pager, disk: &DiskRTree| -> io::Result<Vec<ItemId>> {
        let pool = BufferPool::new(pager, 64);
        let mut stats = SearchStats::default();
        let mut v = disk.search_within(&pool, &window, &mut stats)?;
        v.sort();
        Ok(v)
    };

    // Commit tree A, snapshot the file.
    {
        let pager = Pager::create(&path)?;
        let spill = Pager::temp()?;
        pack_external_into(items_a.iter().copied(), &cfg, &pager, &spill)
            .map_err(|e| io::Error::other(e.to_string()))?;
    }
    let snapshot = std::fs::read(&path)?;
    let (epoch_a, expect_a) = {
        let pager = Pager::open(&path)?;
        let disk = DiskRTree::open_default(&pager)?;
        (disk.epoch(), answers(&pager, &disk)?)
    };

    // Count the physical writes of a clean B pack on each store.
    let (dest_writes, spill_writes) = {
        let pager = Pager::open(&path)?;
        let dest = FaultPager::new(&pager, FaultScript::new());
        let spill_pager = Pager::temp()?;
        let spill = FaultPager::new(&spill_pager, FaultScript::new());
        pack_external_into(items_b.iter().copied(), &cfg, &dest, &spill)
            .map_err(|e| io::Error::other(e.to_string()))?;
        (dest.writes_seen(), spill.writes_seen())
    };

    let mut out = ExtOutcome {
        trials: 0,
        preserved: 0,
        committed: 0,
        violations: 0,
    };

    // Phase 1: crash the destination at every (sampled) write.
    for k in crash_points(dest_writes, budget) {
        out.trials += 1;
        std::fs::write(&path, &snapshot)?;
        {
            let pager = Pager::open(&path)?;
            let faulty = FaultPager::new(&pager, FaultScript::new().on_write(k, kind_for(k), true));
            let spill = Pager::temp()?;
            if pack_external_into(items_b.iter().copied(), &cfg, &faulty, &spill).is_ok() {
                eprintln!("seed {seed} extpack dest k={k}: pack survived its own crash");
                out.violations += 1;
                continue;
            }
        }
        let pager = Pager::open(&path)?;
        match DiskRTree::open_default(&pager) {
            Ok(disk) if disk.epoch() == epoch_a && disk.len() == 300 => {
                match answers(&pager, &disk) {
                    Ok(hits) if hits == expect_a => out.preserved += 1,
                    _ => {
                        eprintln!("seed {seed} extpack dest k={k}: tree A answers wrong");
                        out.violations += 1;
                    }
                }
            }
            Ok(disk) if disk.len() == 900 => out.committed += 1, // crash inside meta flip
            Ok(disk) => {
                eprintln!(
                    "seed {seed} extpack dest k={k}: unexpected epoch {} / len {}",
                    disk.epoch(),
                    disk.len()
                );
                out.violations += 1;
            }
            Err(e) => {
                eprintln!("seed {seed} extpack dest k={k}: reopen failed: {e}");
                out.violations += 1;
            }
        }
    }

    // Phase 2: fail spill-file writes — the destination must be
    // untouched (still exactly tree A).
    for k in crash_points(spill_writes, budget) {
        out.trials += 1;
        std::fs::write(&path, &snapshot)?;
        {
            let pager = Pager::open(&path)?;
            let spill_pager = Pager::temp()?;
            let spill = FaultPager::new(
                &spill_pager,
                FaultScript::new().on_write(k, kind_for(k), true),
            );
            if pack_external_into(items_b.iter().copied(), &cfg, &pager, &spill).is_ok() {
                eprintln!("seed {seed} extpack spill k={k}: pack survived its own crash");
                out.violations += 1;
                continue;
            }
        }
        let pager = Pager::open(&path)?;
        match DiskRTree::open_default(&pager) {
            Ok(disk) if disk.epoch() == epoch_a && disk.len() == 300 => {
                match answers(&pager, &disk) {
                    Ok(hits) if hits == expect_a => out.preserved += 1,
                    _ => {
                        eprintln!("seed {seed} extpack spill k={k}: tree A answers wrong");
                        out.violations += 1;
                    }
                }
            }
            _ => {
                eprintln!("seed {seed} extpack spill k={k}: spill fault disturbed the dest");
                out.violations += 1;
            }
        }
    }

    let _ = std::fs::remove_file(&path);
    Ok(out)
}

fn main() -> io::Result<()> {
    let seeds = env_seeds();
    let budget = env_u64("CRASH_POINTS", 0);
    println!(
        "EXT-8 — crash/reopen matrix (seeds {seeds:?}, points/phase: {})",
        {
            if budget == 0 {
                "all".to_string()
            } else {
                budget.to_string()
            }
        }
    );
    println!();

    let mut table = Table::new([
        "seed",
        "disk trials",
        "rollbacks",
        "paged trials",
        "clean pre",
        "clean post",
        "detected",
        "ext trials",
        "preserved",
        "committed",
        "violations",
    ]);
    let mut violations = 0u64;
    for &seed in &seeds {
        let d = disk_matrix(seed, budget)?;
        let p = paged_matrix(seed, budget)?;
        let e = extpack_matrix(seed, budget)?;
        violations += d.violations + p.violations + e.violations;
        table.row([
            seed.to_string(),
            d.trials.to_string(),
            d.rollbacks.to_string(),
            p.trials.to_string(),
            p.clean_pre.to_string(),
            p.clean_post.to_string(),
            p.detected.to_string(),
            e.trials.to_string(),
            e.preserved.to_string(),
            e.committed.to_string(),
            (d.violations + p.violations + e.violations).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("disk = rebuild-and-swap commit: every crash point must roll back");
    println!("bit-for-bit; paged = in-place updates: reopen must be a clean");
    println!("pre/post-commit tree or a *reported* inconsistency (DESIGN.md §9);");
    println!("ext = out-of-core external pack: a crash anywhere in the pipeline");
    println!("preserves the previous tree (or commits fully inside the meta flip),");
    println!("and spill-file faults never disturb the destination (DESIGN.md §15).");
    if violations > 0 {
        return Err(io::Error::other(format!(
            "{violations} crash-safety violations"
        )));
    }
    println!("\nPASS — no crash-safety violations.");
    Ok(())
}
