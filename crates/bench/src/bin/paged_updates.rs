//! **EXT-7**: the write path — dynamic updates against the page-resident
//! R-tree, measuring physical page I/O per operation and confirming the
//! packed image stays serviceable under churn (§3.4 on real pages).
//!
//! Run with: `cargo run --release -p rtree-bench --bin paged_updates`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_pack, experiment_seed};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig, SearchStats};
use rtree_storage::{PagedRTree, Pager};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};

fn main() -> std::io::Result<()> {
    let seed = experiment_seed();
    let j = 10_000;
    println!("EXT-7 — page-resident dynamic R-tree: update and query I/O");
    println!("J={j}, M=64, 4 KiB pages, 64-frame pool (seed {seed})\n");

    let mut data_rng = rng(seed);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let items = points::as_items(&pts);
    let packed = build_pack(
        &items,
        PackStrategy::NearestNeighbor,
        RTreeConfig::with_branching(64),
    );

    let pager = Pager::temp()?;
    let mut tree = PagedRTree::from_tree(&packed, &pager, 64)?;
    tree.flush()?;
    let base_writes = pager.stats().writes();
    println!(
        "packed image: {} pages written sequentially, depth {}\n",
        base_writes,
        tree.depth()
    );

    let mut query_rng = rng(seed ^ 0x5eed_cafe);
    let windows = queries::window_queries(&mut query_rng, &PAPER_UNIVERSE, 300, 0.002);
    let query_cost = |tree: &PagedRTree<'_>| -> std::io::Result<f64> {
        let mut stats = SearchStats::default();
        for w in &windows {
            tree.search_within(w, &mut stats)?;
        }
        Ok(stats.avg_nodes_visited())
    };

    let mut table = Table::new(["churn (ops)", "pages/op (write)", "A (pages/query)", "len"]);
    table.row([
        "0".to_string(),
        "-".to_string(),
        f(query_cost(&tree)?, 2),
        tree.len().to_string(),
    ]);

    let mut next_id = 1_000_000u64;
    let mut live = items.clone();
    let mut total_ops = 0u64;
    for _round in 0..4 {
        let before_writes = pager.stats().writes();
        let batch = 1000;
        for (mbr, id) in live.drain(..batch / 2) {
            assert!(tree.remove(mbr, id)?);
        }
        for p in points::uniform(&mut data_rng, &PAPER_UNIVERSE, batch / 2) {
            let mbr = Rect::from_point(p);
            let id = ItemId(next_id);
            next_id += 1;
            tree.insert(mbr, id)?;
            live.push((mbr, id));
        }
        tree.flush()?;
        total_ops += batch as u64;
        let writes = pager.stats().writes() - before_writes;
        table.row([
            total_ops.to_string(),
            f(writes as f64 / batch as f64, 2),
            f(query_cost(&tree)?, 2),
            tree.len().to_string(),
        ]);
    }
    tree.close()?;
    println!("{}", table.render());
    println!("Updates cost a handful of page writes each (leaf + ancestor");
    println!("MBR adjustments + occasional splits); query cost degrades only");
    println!("mildly from the packed baseline — the paper's INSERT/DELETE-");
    println!("after-PACK maintenance story, demonstrated on actual pages.");
    Ok(())
}
