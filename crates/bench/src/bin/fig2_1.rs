//! **Figure 2.1**: the paper's flagship direct-spatial-search query, with
//! its plan, alphanumeric output, and pictorial output.
//!
//! Run with: `cargo run -p rtree-bench --bin fig2_1`

use psql::database::PictorialDatabase;
use psql::exec::execute;
use psql::parser::parse_query;
use psql::plan::plan;
use psql::render::render;

fn main() {
    let db = PictorialDatabase::with_us_map();
    let text = "select city, state, population, loc \
                from cities on us-map \
                at loc covered-by {82.5 +- 17.5, 25 +- 20} \
                where population > 450000";
    println!("Figure 2.1 — \"find all cities in the Eastern US with population > 450,000\"\n");
    println!("PSQL> {text}\n");

    let query = parse_query(text).expect("valid syntax");
    let query_plan = plan(&db, &query).expect("valid semantics");
    println!("plan:\n{}", query_plan.explain());

    let result = execute(&db, &query).expect("executes");
    println!("Figure 2.1a — alphanumeric output:\n{result}");
    println!("Figure 2.1b — pictorial output:");
    println!(
        "{}",
        render(
            db.picture("us-map").expect("exists"),
            &result.highlights,
            110,
            28
        )
    );
}
