//! **Figure 3.4**: the dead-space pathology that motivates PACK.
//!
//! Eight points forming two tight clusters of four. The ideal grouping
//! (3.4b) is the two clusters; inserting via Guttman's INSERT (3.4c) can
//! leave three leaves "with much useless space in the middle".
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_4`

use packed_rtree_core::pack;
use rtree_bench::report::{f, Table};
use rtree_geom::{rectset, Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SplitPolicy, TreeMetrics};

/// The figure's eight points: two 1×1 clusters 10 apart, listed in the
/// interleaved order a dynamic database would receive them.
fn figure_points() -> Vec<(Rect, ItemId)> {
    let pts = [
        (0.0, 0.0),
        (10.0, 10.0),
        (1.0, 0.0),
        (11.0, 10.0),
        (0.0, 1.0),
        (10.0, 11.0),
        (1.0, 1.0),
        (11.0, 11.0),
    ];
    pts.iter()
        .enumerate()
        .map(|(i, &(x, y))| (Rect::from_point(Point::new(x, y)), ItemId(i as u64)))
        .collect()
}

fn leaf_report(name: &str, tree: &RTree, table: &mut Table) {
    let leaves = tree.leaf_mbrs();
    let m = TreeMetrics::measure(tree);
    table.row([
        name.to_string(),
        leaves.len().to_string(),
        f(m.coverage, 2),
        f(rectset::overlap_area(&leaves), 2),
    ]);
}

fn main() {
    let items = figure_points();
    println!("Figure 3.4 — eight points in two clusters of four (M=4, m=2)\n");

    let packed = pack(items.clone(), RTreeConfig::PAPER);

    let mut table = Table::new(["builder", "leaves", "coverage", "overlap"]);
    leaf_report("PACK (fig 3.4b)", &packed, &mut table);
    for split in [
        SplitPolicy::Linear,
        SplitPolicy::Quadratic,
        SplitPolicy::Exhaustive,
    ] {
        let mut tree = RTree::new(RTreeConfig::PAPER.with_split(split));
        for &(mbr, id) in &items {
            tree.insert(mbr, id);
        }
        leaf_report(&format!("INSERT {split:?}"), &tree, &mut table);
    }
    println!("{}", table.render());

    println!("PACK leaf MBRs:");
    for leaf in packed.leaf_mbrs() {
        println!("  {leaf}  (area {:.2})", leaf.area());
    }
    println!("\nPACK recovers exactly the two 1x1 clusters (coverage 2.0,");
    println!("overlap 0); the INSERT variants may split the interleaved");
    println!("arrival order into more leaves with cross-cluster dead space.");
}
