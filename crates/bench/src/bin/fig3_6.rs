//! **Figure 3.6 / Theorem 3.3**: the pinwheel counterexample — disjoint
//! regions that no grouping can pack with zero overlap.
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_6`

use packed_rtree_core::counterexample::{pinwheel, zero_overlap_grouping};

fn main() {
    println!("Figure 3.6 / Theorem 3.3 — the skewed-rectangle pinwheel\n");
    let regions = pinwheel();
    for (i, r) in regions.iter().enumerate() {
        println!("R{i}: {r}");
    }

    // Every MBR containing R0 plus one neighbour swallows an outsider.
    println!("\nproof step — MBR(R0, Rk) always swallows part of another region:");
    for k in 1..regions.len() {
        let mbr = regions[0].union(&regions[k]);
        let swallowed: Vec<String> = (1..regions.len())
            .filter(|&j| j != k && mbr.intersection_area(&regions[j]) > 0.0)
            .map(|j| format!("R{j}"))
            .collect();
        println!("  MBR(R0,R{k}) = {mbr} swallows {}", swallowed.join(", "));
    }

    match zero_overlap_grouping(&regions, 4) {
        None => println!("\nexhaustive search over all groupings of size 2..4: NO zero-overlap grouping exists — Theorem 3.3 confirmed."),
        Some(witness) => println!("\nUNEXPECTED witness found: {witness:?} (Theorem 3.3 violated!)"),
    }

    // Control: a configuration that *is* packable with zero overlap.
    let friendly = vec![
        rtree_geom::Rect::new(0.0, 0.0, 1.0, 1.0),
        rtree_geom::Rect::new(2.0, 0.0, 3.0, 1.0),
        rtree_geom::Rect::new(10.0, 10.0, 11.0, 11.0),
        rtree_geom::Rect::new(12.0, 10.0, 13.0, 11.0),
    ];
    match zero_overlap_grouping(&friendly, 4) {
        Some(witness) => {
            println!("control (two separated pairs): zero-overlap grouping {witness:?}")
        }
        None => println!("control failed unexpectedly"),
    }
}
