//! **Lemma 3.1 / Theorem 3.2 / Figure 3.5**: rotation-based zero-overlap
//! packing of points.
//!
//! For increasingly adversarial point sets (uniform, vertical line,
//! grid), finds the Lemma 3.1 rotation angle, packs runs of 4 in rotated
//! x-order, and verifies the resulting MBRs are pairwise disjoint.
//!
//! Run with: `cargo run -p rtree-bench --bin thm3_2`

use packed_rtree_core::zero_overlap::zero_overlap_partition;
use rtree_bench::report::{f, Table};
use rtree_geom::transform;
use rtree_geom::Point;
use rtree_workload::{points, rng, PAPER_UNIVERSE};

fn main() {
    println!("Lemma 3.1 + Theorem 3.2 — zero-overlap packing via rotation\n");
    let mut rng = rng(rtree_bench::experiment_seed());

    let cases: Vec<(&str, Vec<Point>)> = vec![
        (
            "uniform-100",
            points::uniform(&mut rng, &PAPER_UNIVERSE, 100),
        ),
        (
            "vertical-line-48",
            (0..48)
                .map(|i| Point::new(500.0, i as f64 * 10.0))
                .collect(),
        ),
        ("grid-10x10", points::grid(&PAPER_UNIVERSE, 10, 10)),
        (
            "two-columns-40",
            (0..40)
                .map(|i| {
                    Point::new(
                        if i % 2 == 0 { 100.0 } else { 900.0 },
                        (i / 2) as f64 * 20.0,
                    )
                })
                .collect(),
        ),
    ];

    let mut table = Table::new([
        "case",
        "points",
        "F(S) before",
        "angle (rad)",
        "groups",
        "disjoint",
    ]);
    for (name, pts) in cases {
        let before = transform::distinct_x_count(&pts);
        let witness = zero_overlap_partition(&pts, 4).expect("distinct points");
        table.row([
            name.to_string(),
            pts.len().to_string(),
            before.to_string(),
            f(witness.angle, 4),
            witness.groups.len().to_string(),
            witness.is_disjoint().to_string(),
        ]);
        assert!(witness.is_disjoint(), "{name}: theorem violated");
        assert_eq!(witness.groups.len(), pts.len().div_ceil(4));
    }
    println!("{}", table.render());
    println!("F(S) is the number of distinct x-coordinates; after rotating by");
    println!("the reported angle it equals |S| (Lemma 3.1), so consecutive runs");
    println!("of 4 in x-order have pairwise-disjoint MBRs (Theorem 3.2).");
}
