//! **EXT-10**: pointer tree vs frozen arena on the query hot path.
//!
//! A/B's the same packed tree in its two physical forms — the pointer
//! arena built by PACK and the contiguous breadth-first SoA layout of
//! [`FrozenRTree`] — on the Table-1 point-query workload and on the
//! 1M-point mix (window, point, k-NN, juxtaposition join) that
//! `pack_scaling` uses for its baseline. Both forms must return
//! bit-identical results with identical traversal counters: the frozen
//! layout is a memory-layout change, not an algorithm change, so any
//! divergence here is a bug, not noise.
//!
//! Results are written to `BENCH_layout.json` at the repo root. The
//! acceptance bar is a ≥25% ns/op reduction on the 1M-point
//! window-query scratch path relative to the pointer tree measured in
//! the same run (the committed `BENCH_pack.json` scratch baseline is
//! printed alongside for cross-run context).
//!
//! Run with: `cargo run --release -p rtree-bench --bin layout_bench`

use packed_rtree_core::{default_threads, pack_parallel_with, PackStrategy};
use psql::join::{frozen_join, rtree_join, JoinStats};
use rtree_bench::report::{f, Table};
use rtree_bench::{build_pack, experiment_seed};
use rtree_index::{BatchScratch, FrozenRTree, ItemId, RTreeConfig, SearchScratch, SearchStats};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::time::Instant;

use psql::SpatialOp;
use rtree_geom::Rect;

fn main() {
    let seed = experiment_seed();
    println!("EXT-10 — frozen SoA arena vs pointer tree (seed {seed}); M=4\n");

    let table1 = table1_ab(seed);
    million_point_ab(seed, table1);
}

/// ns/op of `run` over `n` operations: one untimed full pass (warm-up),
/// then the best of three timed passes — the same methodology as
/// `bench_guard`, so committed numbers and CI guard measurements are
/// comparable and shared-box noise inflates neither side of a ratio.
fn ns_per_op<T>(n: usize, mut run: impl FnMut() -> T) -> f64 {
    std::hint::black_box(run());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(run());
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// The paper's Table-1 shape: J=900 uniform points, 1000 random
/// point-containment queries. Returns `(pointer ns/op, frozen ns/op,
/// avg nodes visited)` for the JSON report.
fn table1_ab(seed: u64) -> (f64, f64, f64) {
    let j = 900usize;
    let mut data_rng = rng(seed);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let items = points::as_items(&pts);
    let tree = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let frozen = FrozenRTree::freeze(&tree);

    let mut q_rng = rng(seed ^ rtree_bench::QUERY_SEED_SALT);
    let probes = queries::point_queries(&mut q_rng, &PAPER_UNIVERSE, 1000);

    let mut scratch = SearchScratch::new();
    let pointer_ns = ns_per_op(probes.len(), || {
        for &p in &probes {
            std::hint::black_box(tree.point_query_into(p, &mut scratch));
        }
    });
    let frozen_ns = ns_per_op(probes.len(), || {
        for &p in &probes {
            std::hint::black_box(frozen.point_query_into(p, &mut scratch));
        }
    });

    // Identity: results and counters.
    let mut ps = SearchStats::default();
    let mut fs = SearchStats::default();
    for &p in &probes {
        assert_eq!(
            tree.point_query(p, &mut ps),
            frozen.point_query(p, &mut fs),
            "table-1 point query diverged at {p:?}"
        );
    }
    assert_eq!(ps, fs, "table-1 traversal counters diverged");

    let mut t = Table::new(["table-1 (J=900, 1000 pt queries)", "ns/op", "A"]);
    t.row([
        "pointer".into(),
        f(pointer_ns, 0),
        f(ps.avg_nodes_visited(), 3),
    ]);
    t.row([
        "frozen".into(),
        f(frozen_ns, 0),
        f(fs.avg_nodes_visited(), 3),
    ]);
    println!("{}", t.render());
    (pointer_ns, frozen_ns, ps.avg_nodes_visited())
}

/// The 1M-point mix, RNG-compatible with `pack_scaling`'s baseline.
fn million_point_ab(seed: u64, table1: (f64, f64, f64)) {
    let n = 1_000_000usize;
    let mut data_rng = rng(seed ^ 0x9e3779b97f4a7c15);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
    let items = points::as_items(&pts);
    let tree = pack_parallel_with(
        items.clone(),
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
        default_threads(),
    );
    let frozen = FrozenRTree::freeze(&tree);

    let mut q_rng = rng(seed ^ 0x5851f42d4c957f2d);
    let windows = queries::window_queries(&mut q_rng, &PAPER_UNIVERSE, 2_000, 0.0001);
    let probes = queries::point_queries(&mut q_rng, &PAPER_UNIVERSE, 2_000);
    let knn_points = queries::point_queries(&mut q_rng, &PAPER_UNIVERSE, 500);
    let k = 10usize;

    // --- window queries ---------------------------------------------
    let mut scratch = SearchScratch::new();
    let ptr_scratch_ns = ns_per_op(windows.len(), || {
        for w in &windows {
            std::hint::black_box(tree.search_within_into(w, &mut scratch));
        }
    });
    let frz_scratch_ns = ns_per_op(windows.len(), || {
        for w in &windows {
            std::hint::black_box(frozen.search_within_into(w, &mut scratch));
        }
    });
    let warm = scratch.capacities();
    for w in &windows {
        std::hint::black_box(frozen.search_within_into(w, &mut scratch));
    }
    assert_eq!(
        scratch.capacities(),
        warm,
        "frozen steady state reallocated"
    );

    let mut ptr_stats = SearchStats::default();
    let ptr_stats_ns = ns_per_op(windows.len(), || {
        ptr_stats = SearchStats::default();
        for w in &windows {
            std::hint::black_box(tree.search_within(w, &mut ptr_stats));
        }
    });
    let mut frz_stats = SearchStats::default();
    let frz_stats_ns = ns_per_op(windows.len(), || {
        frz_stats = SearchStats::default();
        for w in &windows {
            std::hint::black_box(frozen.search_within(w, &mut frz_stats));
        }
    });
    assert_eq!(ptr_stats, frz_stats, "window-query counters diverged");
    for w in &windows {
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        assert_eq!(
            tree.search_within(w, &mut s1),
            frozen.search_within(w, &mut s2),
            "window result sets diverged at {w:?}"
        );
    }

    // --- point queries ----------------------------------------------
    let ptr_point_ns = ns_per_op(probes.len(), || {
        for &p in &probes {
            std::hint::black_box(tree.point_query_into(p, &mut scratch));
        }
    });
    let frz_point_ns = ns_per_op(probes.len(), || {
        for &p in &probes {
            std::hint::black_box(frozen.point_query_into(p, &mut scratch));
        }
    });
    for &p in &probes {
        assert_eq!(
            tree.point_query_into(p, &mut scratch).to_vec(),
            frozen.point_query_into(p, &mut scratch),
            "point query diverged at {p:?}"
        );
    }

    // --- k-NN --------------------------------------------------------
    let ptr_knn_ns = ns_per_op(knn_points.len(), || {
        for &p in &knn_points {
            std::hint::black_box(tree.nearest_neighbors_into(p, k, scratch.knn()));
        }
    });
    let frz_knn_ns = ns_per_op(knn_points.len(), || {
        for &p in &knn_points {
            std::hint::black_box(frozen.nearest_neighbors_into(p, k, scratch.knn()));
        }
    });
    for &p in &knn_points {
        assert_eq!(
            tree.nearest_neighbors_into(p, k, scratch.knn()).to_vec(),
            frozen.nearest_neighbors_into(p, k, scratch.knn()),
            "k-NN diverged at {p:?}"
        );
    }

    // --- batched windows sweep --------------------------------------
    // The same 2000-window workload pushed through the batch API in
    // packs of 1/8/64/512: Z-order grouping + the shared wavefront
    // traversal fetch each node once per pack and keep the frontier a
    // prefetch lookahead ahead of the pruning point, so bigger packs
    // amortize more of the memory-latency bill.
    let mut batch = BatchScratch::new();
    let mut batched_ns = Vec::new();
    for &bs in &[1usize, 8, 64, 512] {
        let ns = ns_per_op(windows.len(), || {
            for chunk in windows.chunks(bs) {
                std::hint::black_box(frozen.batch_windows(chunk, true, &mut batch));
            }
        });
        batched_ns.push((bs, ns));
    }
    // Identity: every batched slice equals the one-at-a-time answer.
    for chunk in windows.chunks(64) {
        let batched = frozen.batch_windows(chunk, true, &mut batch);
        for (i, w) in chunk.iter().enumerate() {
            assert_eq!(
                batched.get(i),
                frozen.search_within_into(w, &mut scratch),
                "batched window diverged at {w:?}"
            );
        }
    }

    // --- juxtaposition join -----------------------------------------
    let join_n = 100_000usize;
    let a_items: Vec<(Rect, ItemId)> = items.iter().copied().take(2 * join_n).step_by(2).collect();
    let b_items: Vec<(Rect, ItemId)> = items
        .iter()
        .copied()
        .take(2 * join_n)
        .skip(1)
        .step_by(2)
        .collect();
    let tree_a = build_pack(&a_items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let tree_b = build_pack(&b_items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let frozen_a = FrozenRTree::freeze(&tree_a);
    let frozen_b = FrozenRTree::freeze(&tree_b);
    let mut ptr_js = JoinStats::default();
    let ptr_join_ms = ns_per_op(1, || {
        ptr_js = JoinStats::default();
        std::hint::black_box(rtree_join(
            &tree_a,
            &tree_b,
            SpatialOp::Overlapping,
            &mut ptr_js,
        ))
    }) / 1e6;
    let mut frz_js = JoinStats::default();
    let frz_join_ms = ns_per_op(1, || {
        frz_js = JoinStats::default();
        std::hint::black_box(frozen_join(
            &frozen_a,
            &frozen_b,
            SpatialOp::Overlapping,
            &mut frz_js,
        ))
    }) / 1e6;
    assert_eq!(ptr_js, frz_js, "join counters diverged");
    {
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        assert_eq!(
            rtree_join(&tree_a, &tree_b, SpatialOp::Overlapping, &mut s1),
            frozen_join(&frozen_a, &frozen_b, SpatialOp::Overlapping, &mut s2),
            "join pair lists diverged"
        );
    }

    // --- report ------------------------------------------------------
    let reduction = 100.0 * (ptr_scratch_ns - frz_scratch_ns) / ptr_scratch_ns;
    let mut t = Table::new(["1M-point path", "pointer ns/op", "frozen ns/op", "delta"]);
    let delta = |p: f64, q: f64| format!("{:+.1}%", 100.0 * (q - p) / p);
    t.row([
        "window (scratch)".into(),
        f(ptr_scratch_ns, 0),
        f(frz_scratch_ns, 0),
        delta(ptr_scratch_ns, frz_scratch_ns),
    ]);
    t.row([
        "window (stats)".into(),
        f(ptr_stats_ns, 0),
        f(frz_stats_ns, 0),
        delta(ptr_stats_ns, frz_stats_ns),
    ]);
    t.row([
        "point".into(),
        f(ptr_point_ns, 0),
        f(frz_point_ns, 0),
        delta(ptr_point_ns, frz_point_ns),
    ]);
    t.row([
        format!("k-NN (k={k})"),
        f(ptr_knn_ns, 0),
        f(frz_knn_ns, 0),
        delta(ptr_knn_ns, frz_knn_ns),
    ]);
    t.row([
        "join (100k x 100k, ms)".into(),
        f(ptr_join_ms, 1),
        f(frz_join_ms, 1),
        delta(ptr_join_ms, frz_join_ms),
    ]);
    println!("{}", t.render());
    println!(
        "window scratch path: {reduction:.1}% reduction (acceptance >= 25%); \
         avg nodes visited {:.3} on both layouts",
        frz_stats.avg_nodes_visited()
    );
    println!("committed BENCH_pack.json scratch baseline for context: 15911 ns/op\n");

    let mut bt = Table::new(["batched windows", "ns/op", "vs single frozen"]);
    for &(bs, ns) in &batched_ns {
        bt.row([
            format!("batch={bs}"),
            f(ns, 0),
            format!("{:.2}x", frz_scratch_ns / ns),
        ]);
    }
    println!("{}", bt.render());

    let (t1_ptr, t1_frz, t1_a) = table1;
    let json = format!(
        "{{\n  \"experiment\": \"frozen_layout_ab\",\n  \"seed\": {seed},\n  \"n\": {n},\n  \
         \"branching\": 4,\n  \"hardware_threads\": {hw},\n  \
         \"table1\": {{\n    \"j\": 900,\n    \"point_queries\": 1000,\n    \
         \"pointer_ns_per_op\": {t1_ptr:.0},\n    \"frozen_ns_per_op\": {t1_frz:.0},\n    \
         \"avg_nodes_visited\": {t1_a:.3}\n  }},\n  \
         \"window_query\": {{\n    \"queries\": {wn},\n    \"selectivity\": 0.0001,\n    \
         \"pointer_scratch_ns_per_op\": {ptr_scratch_ns:.0},\n    \
         \"frozen_scratch_ns_per_op\": {frz_scratch_ns:.0},\n    \
         \"pointer_stats_ns_per_op\": {ptr_stats_ns:.0},\n    \
         \"frozen_stats_ns_per_op\": {frz_stats_ns:.0},\n    \
         \"avg_nodes_visited\": {anv:.3},\n    \
         \"scratch_reduction_percent\": {reduction:.1}\n  }},\n  \
         \"point_query\": {{\"queries\": {pn}, \"pointer_ns_per_op\": {ptr_point_ns:.0}, \
         \"frozen_ns_per_op\": {frz_point_ns:.0}}},\n  \
         \"knn\": {{\"queries\": {kn}, \"k\": {k}, \"pointer_ns_per_op\": {ptr_knn_ns:.0}, \
         \"frozen_ns_per_op\": {frz_knn_ns:.0}}},\n  \
         \"batched_window\": {{\"queries\": {wn}, \
         \"batch_1_ns_per_op\": {b1:.0}, \"batch_8_ns_per_op\": {b8:.0}, \
         \"batch_64_ns_per_op\": {b64:.0}, \"batch_512_ns_per_op\": {b512:.0}, \
         \"speedup_vs_single_at_64\": {sp64:.2}, \
         \"speedup_vs_single_at_512\": {sp512:.2}}},\n  \
         \"join\": {{\"n_per_side\": {join_n}, \"op\": \"overlapping\", \
         \"pointer_ms\": {ptr_join_ms:.1}, \"frozen_ms\": {frz_join_ms:.1}, \
         \"node_pairs_visited\": {npv}}}\n}}\n",
        hw = default_threads(),
        wn = windows.len(),
        anv = frz_stats.avg_nodes_visited(),
        pn = probes.len(),
        kn = knn_points.len(),
        b1 = batched_ns[0].1,
        b8 = batched_ns[1].1,
        b64 = batched_ns[2].1,
        b512 = batched_ns[3].1,
        sp64 = frz_scratch_ns / batched_ns[2].1,
        sp512 = frz_scratch_ns / batched_ns[3].1,
        npv = frz_js.node_pairs_visited,
    );
    match std::fs::write("BENCH_layout.json", &json) {
        Ok(()) => println!("wrote BENCH_layout.json"),
        Err(e) => println!("could not write BENCH_layout.json: {e}"),
    }
}
