//! **Figure 3.8**: PACK level by level on the US cities map.
//!
//! 3.8a: the cities as points; 3.8b: the nearest-neighbour leaf groups;
//! 3.8c: the next level's MBRs — "working ever backwards, until the root
//! is finally reached".
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_8`

use packed_rtree_core::pack;
use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTreeConfig};
use rtree_workload::usmap;

const W: usize = 100;
const H: usize = 26;

fn canvas() -> Vec<Vec<char>> {
    vec![vec![' '; W]; H]
}

fn cell(frame: &Rect, p: Point) -> (usize, usize) {
    let cx = ((p.x - frame.min_x) / frame.width() * (W - 1) as f64).round() as usize;
    let cy = ((1.0 - (p.y - frame.min_y) / frame.height()) * (H - 1) as f64).round() as usize;
    (cx.min(W - 1), cy.min(H - 1))
}

fn draw_rect(grid: &mut [Vec<char>], frame: &Rect, r: &Rect, ch: char) {
    let (x0, y1) = cell(frame, Point::new(r.min_x, r.min_y));
    let (x1, y0) = cell(frame, Point::new(r.max_x, r.max_y));
    for c in grid[y0][x0..=x1].iter_mut() {
        *c = ch;
    }
    for c in grid[y1][x0..=x1].iter_mut() {
        *c = ch;
    }
    for row in grid.iter_mut().take(y1 + 1).skip(y0) {
        row[x0] = ch;
        row[x1] = ch;
    }
}

fn show(grid: &[Vec<char>]) {
    println!("+{}+", "-".repeat(W));
    for row in grid {
        println!("|{}|", row.iter().collect::<String>());
    }
    println!("+{}+", "-".repeat(W));
}

fn main() {
    let frame = usmap::FRAME;
    let cities = usmap::cities();
    let items: Vec<(Rect, ItemId)> = cities
        .iter()
        .enumerate()
        .map(|(i, c)| (Rect::from_point(c.location), ItemId(i as u64)))
        .collect();
    let tree = pack(items, RTreeConfig::PAPER);

    println!("Figure 3.8a — the {} cities as points:\n", cities.len());
    let mut grid = canvas();
    for c in &cities {
        let (x, y) = cell(&frame, c.location);
        grid[y][x] = '*';
    }
    show(&grid);

    for level in 0..tree.depth() {
        let mbrs = tree.mbrs_at_level(level);
        println!(
            "\nFigure 3.8{} — level-{level} MBRs ({} nodes):\n",
            (b'b' + level as u8) as char,
            mbrs.len()
        );
        let mut grid = canvas();
        for c in &cities {
            let (x, y) = cell(&frame, c.location);
            grid[y][x] = '*';
        }
        for r in &mbrs {
            draw_rect(&mut grid, &frame, r, if level == 0 { ':' } else { '#' });
        }
        show(&grid);
    }

    println!(
        "\npacked tree: {} cities, {} nodes, depth {}",
        tree.len(),
        tree.node_count(),
        tree.depth()
    );
}
