//! **EXT-4**: the update problem (§3.4) — how fast a packed tree decays
//! under Guttman INSERT/DELETE churn, and what periodic re-packing (§4's
//! proposed "dynamic invocation of PACK") recovers.
//!
//! Run with: `cargo run --release -p rtree-bench --bin update_degradation`

use packed_rtree_core::{pack, repack, PackStrategy};
use rtree_bench::experiment_seed;
use rtree_bench::report::{f, Table};
use rtree_geom::Rect;
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats, TreeMetrics};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};

fn query_cost(tree: &RTree, qs: &[rtree_geom::Point]) -> f64 {
    let mut stats = SearchStats::default();
    for &q in qs {
        tree.point_query(q, &mut stats);
    }
    stats.avg_nodes_visited()
}

fn main() {
    let seed = experiment_seed();
    let j = 1000;
    println!("EXT-4 — packed-tree degradation under churn and recovery by repack");
    println!("J={j}, churn rounds of 10% delete + 10% insert (seed {seed})\n");

    let mut data_rng = rng(seed);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, j);
    let mut live = points::as_items(&pts);
    let mut query_rng = rng(seed ^ 0x5eed_cafe);
    let qs = queries::point_queries(&mut query_rng, &PAPER_UNIVERSE, 1000);

    let mut tree = pack(live.clone(), RTreeConfig::PAPER);
    let fresh = query_cost(&tree, &qs);

    let mut table = Table::new([
        "churn (% of J)",
        "A (degraded)",
        "N",
        "A (repacked)",
        "N (repacked)",
    ]);
    let mut next_id = 100_000u64;
    let mut churned = 0usize;
    for round in 1..=10 {
        // Delete the 10% oldest, insert 10% fresh.
        let batch = j / 10;
        for (mbr, id) in live.drain(..batch) {
            assert!(tree.remove(mbr, id));
        }
        for p in points::uniform(&mut data_rng, &PAPER_UNIVERSE, batch) {
            let mbr = Rect::from_point(p);
            let id = ItemId(next_id);
            next_id += 1;
            tree.insert(mbr, id);
            live.push((mbr, id));
        }
        churned += 2 * batch;

        let degraded_a = query_cost(&tree, &qs);
        let degraded_n = TreeMetrics::measure(&tree).nodes;
        let repacked = repack::repack(&tree, PackStrategy::NearestNeighbor);
        let repacked_a = query_cost(&repacked, &qs);
        let repacked_n = TreeMetrics::measure(&repacked).nodes;
        table.row([
            format!("{}", churned * 100 / j),
            f(degraded_a, 3),
            degraded_n.to_string(),
            f(repacked_a, 3),
            repacked_n.to_string(),
        ]);
        let _ = round;
    }
    println!("freshly packed: A = {:.3}\n", fresh);
    println!("{}", table.render());
    println!("The first insertions after packing must split (nodes are full), so");
    println!("decay is immediate but gradual; a repack restores fresh-pack cost.");
    println!("\"INSERT (and analogously DELETE) and PACK can complement each");
    println!("other … in the creation and maintenance of dynamic R-trees.\"");
}
