//! **EXT-2**: packing-strategy ablation — the paper's NN-PACK against its
//! own sort criterion alone (x-sort) and its descendants (STR, Hilbert),
//! on uniform, clustered and skewed data.
//!
//! Run with: `cargo run --release -p rtree-bench --bin ablation_pack`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_pack, measure, SeededWorkload};
use rtree_geom::Point;
use rtree_index::RTreeConfig;
use rtree_workload::{points, PAPER_UNIVERSE};

fn main() {
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    let j = 900;
    println!("EXT-2 — packing strategies at J={j}, M=4 (seed {seed})\n");

    // One sequential data stream across all four distributions (the
    // clustered/skewed/diagonal sets continue where uniform left off).
    let mut data_rng = workload.data_rng();
    let workloads: Vec<(&str, Vec<Point>)> = vec![
        (
            "uniform",
            points::uniform(&mut data_rng, &PAPER_UNIVERSE, j),
        ),
        (
            "clustered",
            points::clustered(&mut data_rng, &PAPER_UNIVERSE, j, 8, 40.0),
        ),
        (
            "skewed",
            points::skewed(&mut data_rng, &PAPER_UNIVERSE, j, 3.0),
        ),
        (
            "diagonal",
            points::diagonal(&mut data_rng, &PAPER_UNIVERSE, j, 60.0),
        ),
    ];
    let query_points = workload.point_queries(1000);

    for (name, pts) in workloads {
        let items = points::as_items(&pts);
        let mut table = Table::new(["strategy", "C", "O", "D", "N", "A"]);
        for strategy in [
            PackStrategy::NearestNeighbor,
            PackStrategy::XSort,
            PackStrategy::SortTileRecursive,
            PackStrategy::Hilbert,
        ] {
            let tree = build_pack(&items, strategy, RTreeConfig::PAPER);
            let row = measure(&tree, &query_points);
            table.row([
                strategy.name().to_string(),
                f(row.coverage, 0),
                f(row.overlap, 0),
                row.depth.to_string(),
                row.nodes.to_string(),
                f(row.avg_visited, 3),
            ]);
        }
        println!("{name}:\n{}", table.render());
    }
    println!("x-sort alone builds full nodes but its leaf strips span the whole");
    println!("y range — the NN refinement (and its STR/Hilbert descendants) is");
    println!("what actually delivers low coverage and overlap.");
}
