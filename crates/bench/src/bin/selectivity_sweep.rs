//! **EXT-6**: window-query selectivity sweep — how the PACK advantage
//! varies with query size, from point-like windows to 25% of the space.
//!
//! Run with: `cargo run --release -p rtree-bench --bin selectivity_sweep`

use packed_rtree_core::PackStrategy;
use rtree_bench::report::{f, Table};
use rtree_bench::{build_insert, build_pack, SeededWorkload};
use rtree_index::{RTreeConfig, SearchStats, SplitPolicy};

fn main() {
    let workload = SeededWorkload::from_env();
    let seed = workload.seed;
    let j = 2000;
    println!("EXT-6 — window selectivity sweep, J={j}, M=4 (seed {seed})\n");

    let items = workload.uniform_items(j);
    let packed = build_pack(&items, PackStrategy::NearestNeighbor, RTreeConfig::PAPER);
    let dynamic = build_insert(&items, SplitPolicy::Linear, RTreeConfig::PAPER);

    let mut table = Table::new([
        "selectivity",
        "avg hits",
        "A (pack)",
        "A (insert)",
        "insert/pack",
    ]);
    for selectivity in [0.0001, 0.001, 0.01, 0.05, 0.1, 0.25] {
        let windows = workload.window_queries(300, selectivity);
        let mut sp = SearchStats::default();
        let mut sd = SearchStats::default();
        let mut hits = 0usize;
        for w in &windows {
            hits += packed.search_within(w, &mut sp).len();
            dynamic.search_within(w, &mut sd);
        }
        table.row([
            format!("{selectivity}"),
            f(hits as f64 / windows.len() as f64, 1),
            f(sp.avg_nodes_visited(), 2),
            f(sd.avg_nodes_visited(), 2),
            f(sd.avg_nodes_visited() / sp.avg_nodes_visited(), 2),
        ]);
    }
    println!("{}", table.render());
    println!("The structural advantage persists across selectivities; at very");
    println!("large windows both trees must visit most nodes, so the ratio");
    println!("approaches the node-count ratio (~1.5x from full occupancy).");
}
