//! Performance regression guard for the window-query hot paths.
//!
//! Re-measures the 1M-point window-query profile of `pack_scaling`
//! (same seeds, same tree, same 2000 windows) on three paths —
//!
//! 1. the pointer-tree scratch path, against the committed
//!    `BENCH_pack.json` (`scratch_path_ns_per_op`);
//! 2. the frozen-arena scratch path, against the committed
//!    `BENCH_layout.json` (`frozen_scratch_ns_per_op`);
//! 3. the batched window path in packs of 64, against the committed
//!    `BENCH_layout.json` (`batch_64_ns_per_op`);
//! 4. the `Picture` read path with a **nonempty delta** (buffered
//!    dynamic writes awaiting the background merge), against the same
//!    picture freshly packed — measured in-process, so this guard is
//!    immune to machine variance. Before the write-path fix a single
//!    dynamic insert silently dropped the frozen arena and roughly
//!    doubled query latency; this is the tripwire against that class
//!    of regression.
//!
//! — and fails (exit code 1) if any measured ns/op exceeds its
//! baseline by more than the allowed factor. The factor defaults to
//! 2.0: CI runners are slower and noisier than the machine that wrote
//! the baselines, so the guard only trips on gross regressions (an
//! accidentally quadratic traversal, a reintroduced per-query
//! allocation storm, a batch engine that stopped sharing fetches),
//! never on scheduler jitter.
//!
//! Environment knobs:
//! - `BENCH_GUARD_FACTOR`  — allowed slowdown factor (default `2.0`)
//! - `BENCH_GUARD_N`       — dataset size (default `1000000`)
//! - `BENCH_GUARD_BASELINE` — path to the pointer baseline JSON
//!   (default `BENCH_pack.json`)
//! - `BENCH_GUARD_LAYOUT_BASELINE` — path to the frozen/batched
//!   baseline JSON (default `BENCH_layout.json`)
//!
//! Run with: `cargo run --release -p rtree-bench --bin bench_guard`

use packed_rtree_core::{default_threads, pack_parallel_with, PackStrategy};
use rtree_bench::experiment_seed;
use rtree_geom::SpatialObject;
use rtree_index::{BatchScratch, FrozenRTree, RTreeConfig, SearchScratch};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::time::Instant;

fn main() {
    let baseline_path =
        std::env::var("BENCH_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_pack.json".to_string());
    let layout_path = std::env::var("BENCH_GUARD_LAYOUT_BASELINE")
        .unwrap_or_else(|_| "BENCH_layout.json".to_string());
    let factor: f64 = std::env::var("BENCH_GUARD_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let n: usize = std::env::var("BENCH_GUARD_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let pointer_baseline = read_baseline(&baseline_path, "scratch_path_ns_per_op");
    let frozen_baseline = read_baseline(&layout_path, "frozen_scratch_ns_per_op");
    let batch_baseline = read_baseline(&layout_path, "batch_64_ns_per_op");

    let seed = experiment_seed();
    let mut data_rng = rng(seed ^ 0x9e3779b97f4a7c15);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
    let items = points::as_items(&pts);
    let tree = pack_parallel_with(
        items,
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
        default_threads(),
    );
    let frozen = FrozenRTree::freeze(&tree);
    let mut q_rng = rng(seed ^ 0x5851f42d4c957f2d);
    let windows = queries::window_queries(&mut q_rng, &PAPER_UNIVERSE, 2_000, 0.0001);

    let mut scratch = SearchScratch::new();
    let pointer_ns = best_of_three(windows.len(), || {
        for w in &windows {
            std::hint::black_box(tree.search_within_into(w, &mut scratch));
        }
    });
    let frozen_ns = best_of_three(windows.len(), || {
        for w in &windows {
            std::hint::black_box(frozen.search_within_into(w, &mut scratch));
        }
    });
    let mut batch = BatchScratch::new();
    let batch_ns = best_of_three(windows.len(), || {
        for chunk in windows.chunks(64) {
            std::hint::black_box(frozen.batch_windows(chunk, true, &mut batch));
        }
    });

    // The delta read guard: a packed picture with buffered dynamic
    // writes must answer windows at packed-picture speed (the delta
    // tree is tiny; the frozen main tree keeps serving). 300k objects
    // puts the frozen arena comfortably past the size gate.
    let delta_n = (n / 4).clamp(250_000.min(n), 400_000);
    let mut picture = psql::picture::Picture::new("guard", PAPER_UNIVERSE, RTreeConfig::PAPER);
    for (i, p) in pts.iter().take(delta_n).enumerate() {
        picture.add(SpatialObject::Point(*p), &format!("g{i}"));
    }
    picture.pack();
    let packed_picture_ns = best_of_three(windows.len(), || {
        for w in &windows {
            std::hint::black_box(picture.search_window_fast(
                psql::SpatialOp::CoveredBy,
                w,
                &mut scratch,
            ));
        }
    });
    let delta_pts = points::uniform(&mut q_rng, &PAPER_UNIVERSE, 1_024);
    for (i, p) in delta_pts.iter().enumerate() {
        picture.add(SpatialObject::Point(*p), &format!("d{i}"));
    }
    assert!(picture.delta_len() > 0, "delta must be nonempty");
    assert!(
        picture.serves_frozen_queries(),
        "picture fell off the frozen path"
    );
    let delta_picture_ns = best_of_three(windows.len(), || {
        for w in &windows {
            std::hint::black_box(picture.search_window_fast(
                psql::SpatialOp::CoveredBy,
                w,
                &mut scratch,
            ));
        }
    });

    let mut failed = false;
    for (name, measured, baseline) in [
        ("pointer scratch", pointer_ns, pointer_baseline),
        ("frozen scratch", frozen_ns, frozen_baseline),
        ("batched (64)", batch_ns, batch_baseline),
        ("nonempty delta", delta_picture_ns, packed_picture_ns),
    ] {
        let limit = baseline * factor;
        println!(
            "bench_guard: {name} window path {measured:.0} ns/op \
             (baseline {baseline:.0}, limit {limit:.0} = {factor}x, n = {n})"
        );
        if measured > limit {
            eprintln!(
                "bench_guard: FAIL — {name} at {measured:.0} ns/op exceeds {factor}x \
                 the committed baseline; the query hot path has regressed"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}

/// Reads `key` from the baseline JSON at `path`, failing loudly if the
/// file or key is missing — a guard that silently skips is no guard.
fn read_baseline(path: &str, key: &str) -> f64 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match json_number(&text, key) {
        Some(v) => v,
        None => {
            eprintln!("bench_guard: no {key} in {path}");
            std::process::exit(1);
        }
    }
}

/// Best-of-three ns/op over `n` operations after one untimed warm-up
/// pass (a single pass on a shared CI box can be unlucky; three rarely
/// all are).
fn best_of_three(n: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// Extracts `"key": <number>` from a JSON document by string scan — the
/// workspace deliberately has no JSON dependency, and the baseline file
/// is machine-written with this exact shape.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
