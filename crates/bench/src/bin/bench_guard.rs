//! Performance regression guard for the window-query hot path.
//!
//! Re-measures the 1M-point scratch-path window-query profile of
//! `pack_scaling` (same seeds, same tree, same 2000 windows) and fails
//! — exit code 1 — if the measured ns/op exceeds the committed
//! `BENCH_pack.json` baseline by more than the allowed factor. The
//! factor defaults to 2.0: CI runners are slower and noisier than the
//! machine that wrote the baseline, so the guard only trips on gross
//! regressions (an accidentally quadratic traversal, a reintroduced
//! per-query allocation storm), never on scheduler jitter.
//!
//! Environment knobs:
//! - `BENCH_GUARD_FACTOR`  — allowed slowdown factor (default `2.0`)
//! - `BENCH_GUARD_N`       — dataset size (default `1000000`)
//! - `BENCH_GUARD_BASELINE` — path to the baseline JSON (default
//!   `BENCH_pack.json`)
//!
//! Run with: `cargo run --release -p rtree-bench --bin bench_guard`

use packed_rtree_core::{default_threads, pack_parallel_with, PackStrategy};
use rtree_bench::experiment_seed;
use rtree_index::{RTreeConfig, SearchScratch};
use rtree_workload::{points, queries, rng, PAPER_UNIVERSE};
use std::time::Instant;

fn main() {
    let baseline_path =
        std::env::var("BENCH_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_pack.json".to_string());
    let factor: f64 = std::env::var("BENCH_GUARD_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let n: usize = std::env::var("BENCH_GUARD_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_guard: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline_ns = match json_number(&text, "scratch_path_ns_per_op") {
        Some(v) => v,
        None => {
            eprintln!("bench_guard: no scratch_path_ns_per_op in {baseline_path}");
            std::process::exit(1);
        }
    };

    let seed = experiment_seed();
    let mut data_rng = rng(seed ^ 0x9e3779b97f4a7c15);
    let pts = points::uniform(&mut data_rng, &PAPER_UNIVERSE, n);
    let items = points::as_items(&pts);
    let tree = pack_parallel_with(
        items,
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
        default_threads(),
    );
    let mut q_rng = rng(seed ^ 0x5851f42d4c957f2d);
    let windows = queries::window_queries(&mut q_rng, &PAPER_UNIVERSE, 2_000, 0.0001);

    let mut scratch = SearchScratch::new();
    // Warm-up pass, then best-of-three timed passes (a single pass on a
    // shared CI box can be unlucky; three rarely all are).
    for w in &windows {
        std::hint::black_box(tree.search_within_into(w, &mut scratch));
    }
    let mut measured_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for w in &windows {
            std::hint::black_box(tree.search_within_into(w, &mut scratch));
        }
        measured_ns = measured_ns.min(start.elapsed().as_nanos() as f64 / windows.len() as f64);
    }

    let limit = baseline_ns * factor;
    println!(
        "bench_guard: window-query scratch path {measured_ns:.0} ns/op \
         (baseline {baseline_ns:.0}, limit {limit:.0} = {factor}x, n = {n})"
    );
    if measured_ns > limit {
        eprintln!(
            "bench_guard: FAIL — {measured_ns:.0} ns/op exceeds {factor}x the \
             committed baseline; the query hot path has regressed"
        );
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}

/// Extracts `"key": <number>` from a JSON document by string scan — the
/// workspace deliberately has no JSON dependency, and the baseline file
/// is machine-written with this exact shape.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
