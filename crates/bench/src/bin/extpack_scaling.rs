//! **EXT-13 / EXT-15**: out-of-core external PACK scaling — wall time,
//! spill traffic, merge shape, and the pipelined packer's per-phase
//! breakdown across dataset sizes, memory budgets, and pipeline thread
//! counts, with the in-memory packer as the baseline.
//!
//! The external packer must produce the *same tree* the in-memory packer
//! does (that is its contract, checked by the differential suite); this
//! sweep measures what the streaming spill/merge pipeline costs to get
//! there when the run buffer is squeezed. Per configuration it reports:
//!
//! * build wall time, external vs in-memory, at 1 and 4 pipeline
//!   threads (the trees are bit-identical; only wall time may differ);
//! * the per-phase split (produce / sort / spill / merge / emit) that
//!   shows where each budget spends its time (EXT-15);
//! * spill bytes written and the initial/merged run counts (the merge
//!   fan-in shows how many passes the budget forced);
//! * peak accounted memory against the budget (the accounting hook);
//! * quality of the result: coverage `C`, overlap `O` (computed on the
//!   in-memory twin — identical by construction) and the Table 1 `A`
//!   (avg nodes visited per point query) measured on *both* trees, which
//!   must agree exactly.
//!
//! Default sweep is 200k and 1M items at three budgets. Set
//! `EXTPACK_BENCH_LARGE=1` to add a 10M-item run (several minutes).
//! Results land in `BENCH_extpack.json`.
//!
//! Run with: `cargo run --release -p rtree-bench --bin extpack_scaling`

use rtree_bench::report::{f, Table};
use rtree_bench::{tiled_overlap_area, SeededWorkload};
use rtree_extpack::{pack_external, ExtPackConfig};
use rtree_geom::rectset;
use rtree_index::{RTreeConfig, SearchStats};
use rtree_storage::{BufferPool, Pager};
use std::time::Instant;

fn main() {
    let workload = SeededWorkload::from_env();
    println!(
        "EXT-13 — out-of-core external PACK scaling, M=4 (seed {})\n",
        workload.seed
    );

    let mut sizes = vec![200_000usize, 1_000_000];
    if std::env::var("EXTPACK_BENCH_LARGE").is_ok_and(|v| v == "1") {
        sizes.push(10_000_000);
    }
    // 256KiB caps the merge fan-in hard enough to force intermediate
    // merge passes; the larger budgets stream every run in one pass.
    let budgets: &[(u64, &str)] = &[
        (256 << 10, "256KiB"),
        (4 << 20, "4MiB"),
        (64 << 20, "64MiB"),
    ];

    let mut table = Table::new([
        "n",
        "budget",
        "thr",
        "ext ms",
        "inmem ms",
        "spill MiB",
        "runs",
        "parts",
        "fan-in",
        "merges",
        "merge ms",
        "emit ms",
        "peak MiB",
        "A ext",
        "A mem",
    ]);
    let mut rows = Vec::new();

    for &n in &sizes {
        let items = workload.uniform_items(n);
        let query_points = workload.point_queries(1000);

        // In-memory baseline, built once per size: wall time plus the
        // quality metrics the external tree must reproduce exactly.
        let start = Instant::now();
        let mem_tree = rtree_bench::build_pack(
            &items,
            packed_rtree_core::PackStrategy::NearestNeighbor,
            RTreeConfig::PAPER,
        );
        let inmem_ms = start.elapsed().as_secs_f64() * 1000.0;
        // Table 1's C and O, computed tiled: the dense-grid overlap of
        // `TreeMetrics` is quadratic in leaf count and unusable at this
        // scale.
        let leaf_mbrs = mem_tree.leaf_mbrs();
        let coverage = rectset::total_area(&leaf_mbrs);
        let overlap = tiled_overlap_area(&leaf_mbrs, 64);
        let mut mem_stats = SearchStats::default();
        for &q in &query_points {
            mem_tree.point_query(q, &mut mem_stats);
        }
        let a_mem = mem_stats.avg_nodes_visited();

        for &(budget, label) in budgets {
            // The 10M run is a capstone, not a sweep: one mid budget.
            if n >= 10_000_000 && budget != 4 << 20 {
                continue;
            }
            for threads in [1usize, 4] {
                let dest = Pager::temp().expect("dest pager");
                let cfg = ExtPackConfig {
                    threads,
                    ..ExtPackConfig::new(budget)
                };
                let start = Instant::now();
                let (disk, stats) =
                    pack_external(items.iter().copied(), &cfg, &dest).expect("external pack");
                let ext_ms = start.elapsed().as_secs_f64() * 1000.0;
                assert_eq!(disk.len(), n);
                assert!(
                    stats.peak_budget_bytes <= budget,
                    "peak {} exceeded budget {budget}",
                    stats.peak_budget_bytes
                );

                // `A` on the disk image: identical traversal counts prove
                // the external tree is the same tree, from cold pages.
                let pool = BufferPool::new(&dest, 4096);
                let mut disk_stats = SearchStats::default();
                for &q in &query_points {
                    disk.point_query(&pool, q, &mut disk_stats)
                        .expect("disk point query");
                }
                let a_ext = disk_stats.avg_nodes_visited();
                assert_eq!(
                    a_ext.to_bits(),
                    a_mem.to_bits(),
                    "external tree diverged at n={n} budget={label} threads={threads}"
                );

                table.row([
                    n.to_string(),
                    label.to_string(),
                    threads.to_string(),
                    f(ext_ms, 1),
                    f(inmem_ms, 1),
                    f(stats.spill_bytes as f64 / (1 << 20) as f64, 1),
                    format!("{}", stats.initial_runs),
                    format!("{}", stats.merge_partitions),
                    format!("{}", stats.max_fan_in),
                    format!("{}", stats.intermediate_merges),
                    f(stats.merge_us as f64 / 1000.0, 0),
                    f(stats.emit_us as f64 / 1000.0, 0),
                    f(stats.peak_budget_bytes as f64 / (1 << 20) as f64, 2),
                    f(a_ext, 2),
                    f(a_mem, 2),
                ]);
                rows.push(format!(
                    "    {{\"n\": {n}, \"budget_bytes\": {budget}, \"threads\": {threads}, \
                     \"ext_ms\": {ext_ms:.1}, \
                     \"inmem_ms\": {inmem_ms:.1}, \"spill_bytes\": {sb}, \"initial_runs\": {ir}, \
                     \"merge_partitions\": {mp}, \
                     \"max_fan_in\": {fi}, \"intermediate_merges\": {im}, \"peak_bytes\": {pk}, \
                     \"produce_ms\": {pr:.1}, \"sort_ms\": {so:.1}, \"spill_ms\": {sp:.1}, \
                     \"merge_ms\": {me:.1}, \"emit_ms\": {em:.1}, \
                     \"coverage\": {cov:.1}, \"overlap\": {ov:.1}, \"avg_visited_ext\": {a_ext:.3}, \
                     \"avg_visited_mem\": {a_mem:.3}}}",
                    sb = stats.spill_bytes,
                    ir = stats.initial_runs,
                    mp = stats.merge_partitions,
                    fi = stats.max_fan_in,
                    im = stats.intermediate_merges,
                    pk = stats.peak_budget_bytes,
                    pr = stats.produce_us as f64 / 1000.0,
                    so = stats.sort_us as f64 / 1000.0,
                    sp = stats.spill_us as f64 / 1000.0,
                    me = stats.merge_us as f64 / 1000.0,
                    em = stats.emit_us as f64 / 1000.0,
                    cov = coverage,
                    ov = overlap,
                ));
            }
        }
    }
    println!("{}", table.render());
    println!("A ext == A mem on every row: the budget changes how the tree is built,");
    println!("never what is built. Tighter budgets trade spill traffic + merge passes");
    println!("for bounded resident memory.\n");

    let json = format!(
        "{{\n  \"experiment\": \"extpack_scaling\",\n  \"seed\": {},\n  \
         \"branching\": 4,\n  \"strategy\": \"pack-nn\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        workload.seed,
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_extpack.json", &json) {
        Ok(()) => println!("wrote BENCH_extpack.json"),
        Err(e) => println!("could not write BENCH_extpack.json: {e}"),
    }
}
