//! **Figures 3.1 and 3.2**: R-trees over point objects (cities) and
//! region objects (states), shown as indented structure dumps.
//!
//! Run with: `cargo run -p rtree-bench --bin fig3_1`

use packed_rtree_core::pack;
use rtree_geom::Rect;
use rtree_index::{ItemId, RTreeConfig};
use rtree_workload::usmap;

fn main() {
    // Figure 3.1: cities as points.
    let cities = usmap::cities();
    let city_items: Vec<(Rect, ItemId)> = cities
        .iter()
        .enumerate()
        .map(|(i, c)| (Rect::from_point(c.location), ItemId(i as u64)))
        .collect();
    let city_tree = pack(city_items, RTreeConfig::PAPER);
    println!("Figure 3.1 — packed R-tree of the cities relation (points):\n");
    println!("{}", city_tree.dump());
    println!(
        "legend: #k is the tuple-identifier of {:?} etc.\n",
        cities[0].name
    );

    // Figure 3.2: states as regions. Note regions can overlap across
    // nodes — zero overlap is not always attainable (Theorem 3.3).
    let states = usmap::states();
    let state_items: Vec<(Rect, ItemId)> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s.region.mbr(), ItemId(i as u64)))
        .collect();
    let state_tree = pack(state_items, RTreeConfig::PAPER);
    println!("Figure 3.2 — packed R-tree of the states relation (regions):\n");
    println!("{}", state_tree.dump());
    let m = state_tree.metrics();
    println!(
        "states tree: coverage {:.1}, overlap {:.1}, depth {}, nodes {}",
        m.coverage, m.overlap, m.depth, m.nodes
    );
    println!("\n\"Points and regions may be freely intermixed within any R-tree\":");
    println!("both trees share one node layout; leaves hold tuple pointers only.");
}
