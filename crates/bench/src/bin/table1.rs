//! **Table 1**: Guttman's INSERT vs PACK over J = 10…900 uniform points.
//!
//! Regenerates the paper's central experiment: for each `J`, the same
//! uniformly random point set is indexed by both algorithms (branching
//! factor 4) and both trees answer the same 1000 random point-containment
//! queries. Columns: coverage `C`, overlap `O`, depth `D`, node count
//! `N`, average nodes visited `A`.
//!
//! Run with: `cargo run --release -p rtree-bench --bin table1`

use rtree_bench::report::{f, Table};
use rtree_bench::{experiment_seed, table1_experiment};
use rtree_workload::PAPER_J_VALUES;

fn main() {
    let seed = experiment_seed();
    println!("Table 1 — Guttman's INSERT (linear split) vs PACK");
    println!("uniform points in [0,1000]^2, M=4, m=2, 1000 random point queries, seed {seed}\n");

    let mut table = Table::new([
        "J", "C(ins)", "O(ins)", "D", "N", "A", "C(pack)", "O(pack)", "D", "N", "A",
    ]);
    for &j in &PAPER_J_VALUES {
        let (insert, pack) = table1_experiment(j, seed);
        table.row([
            j.to_string(),
            f(insert.coverage, 0),
            f(insert.overlap, 0),
            insert.depth.to_string(),
            insert.nodes.to_string(),
            f(insert.avg_visited, 3),
            f(pack.coverage, 0),
            f(pack.overlap, 0),
            pack.depth.to_string(),
            pack.nodes.to_string(),
            f(pack.avg_visited, 3),
        ]);
    }
    println!("{}", table.render());
    println!("Paper (J=900):  INSERT  C=87640 O=1164809 D=6 N=573 A=63.595");
    println!("                PACK    C=38808 O=1512    D=4 N=302 A=6.071");
    println!("\nShape to check: PACK wins every column; its D/N match the paper");
    println!("exactly (302 nodes, depth 4 at J=900); absolute C/O differ because");
    println!("the paper's area units are unstated (see EXPERIMENTS.md).");
}
