//! End-to-end fault-injection tests: corruption detection and
//! crash/reopen behaviour for both page-resident trees.
//!
//! The unit tests in `src/` cover each mechanism in isolation; these
//! tests drive whole trees through [`FaultPager`] and assert the
//! crash-safety contract of DESIGN.md §9:
//!
//! * damage is *detected* — bit flips and torn writes surface as
//!   [`StorageError::Corrupt`], never as a garbage decode or a panic;
//! * the [`DiskRTree`] rebuild-and-swap commit is *atomic* — a crash at
//!   any write during `store_with_meta` leaves the previous image
//!   readable and correct;
//! * a [`PagedRTree`] reopened after a crash either presents a
//!   consistent pre-/post-commit tree or reports the inconsistency.

use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats};
use rtree_storage::fault::{FaultKind, FaultPager, FaultScript};
use rtree_storage::{BufferPool, DiskRTree, PageId, PagedRTree, Pager, StorageError};

fn sample_tree(n: u64, stride: u64) -> RTree {
    let mut t = RTree::new(RTreeConfig::PAPER);
    for i in 0..n {
        let x = (i * stride % 1009) as f64;
        let y = (i * 91 % 997) as f64;
        t.insert(Rect::from_point(Point::new(x, y)), ItemId(i));
    }
    t
}

fn sorted_hits(disk: &DiskRTree, pager: &Pager, window: &Rect) -> Vec<ItemId> {
    let pool = BufferPool::new(pager, 64);
    let mut stats = SearchStats::default();
    let mut v = disk.search_within(&pool, window, &mut stats).unwrap();
    v.sort();
    v
}

#[test]
fn bit_flip_in_node_page_fails_search_as_corrupt() {
    let tree = sample_tree(300, 37);
    let pager = Pager::temp().unwrap();
    let disk = DiskRTree::store_with_meta(&tree, &pager).unwrap();

    // Flip one bit in the root page behind the pager's back.
    let mut raw = pager.read_page_raw(disk.root()).unwrap();
    raw.bytes_mut()[40] ^= 0x04;
    pager.write_page_raw(disk.root(), &raw).unwrap();

    let pool = BufferPool::new(&pager, 16);
    let mut stats = SearchStats::default();
    let err = disk
        .search_within(&pool, &Rect::new(0.0, 0.0, 2000.0, 2000.0), &mut stats)
        .unwrap_err();
    match err {
        StorageError::Corrupt { page, ref reason } => {
            assert_eq!(page, disk.root());
            assert!(reason.contains("checksum"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn crash_at_every_write_during_restore_rolls_back() {
    // Store image A, snapshot the file, then for EVERY physical write k
    // of a replacement store of image B: restore the snapshot, crash at
    // write k (torn), reopen cold, and demand image A — bit-for-bit the
    // same query answers. The final trial (k past the end) commits B.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("fault-restore-matrix-{}.db", std::process::id()));
    let tree_a = sample_tree(120, 37);
    let tree_b = sample_tree(240, 53);
    let window = Rect::new(50.0, 50.0, 800.0, 800.0);

    {
        let pager = Pager::create(&path).unwrap();
        DiskRTree::store_with_meta(&tree_a, &pager).unwrap();
    }
    let snapshot = std::fs::read(&path).unwrap();
    let expect_a = {
        let pager = Pager::open(&path).unwrap();
        let disk = DiskRTree::open_default(&pager).unwrap();
        sorted_hits(&disk, &pager, &window)
    };

    // Dry run to count B's writes (node pages + 1 meta slot).
    let total_writes = {
        let pager = Pager::open(&path).unwrap();
        let faulty = FaultPager::new(&pager, FaultScript::new());
        DiskRTree::store_with_meta(&tree_b, &faulty).unwrap();
        faulty.writes_seen()
    };
    assert!(total_writes > 3, "matrix needs several crash points");

    for k in 1..=total_writes + 1 {
        std::fs::write(&path, &snapshot).unwrap();
        let crashed = {
            let pager = Pager::open(&path).unwrap();
            let script = FaultScript::new().on_write(k, FaultKind::TornWrite, true);
            let faulty = FaultPager::new(&pager, script);
            DiskRTree::store_with_meta(&tree_b, &faulty).is_err()
        };
        assert_eq!(crashed, k <= total_writes, "crash point {k}");

        let pager = Pager::open(&path).unwrap();
        let disk = DiskRTree::open_default(&pager)
            .unwrap_or_else(|e| panic!("crash point {k}: open failed: {e}"));
        if crashed {
            assert_eq!(disk.epoch(), 1, "crash point {k}: must roll back to A");
            assert_eq!(disk.len(), tree_a.len(), "crash point {k}");
            assert_eq!(
                sorted_hits(&disk, &pager, &window),
                expect_a,
                "crash point {k}: rolled-back image must answer as A"
            );
        } else {
            assert_eq!(disk.epoch(), 2, "no fault fired: B committed");
            assert_eq!(disk.len(), tree_b.len());
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_write_without_crash_is_reported_and_file_still_opens() {
    let path = std::env::temp_dir().join(format!("fault-failwrite-{}.db", std::process::id()));
    let tree_a = sample_tree(80, 37);
    {
        let pager = Pager::create(&path).unwrap();
        DiskRTree::store_with_meta(&tree_a, &pager).unwrap();
    }
    {
        let pager = Pager::open(&path).unwrap();
        let script = FaultScript::new().on_write(3, FaultKind::FailWrite, false);
        let faulty = FaultPager::new(&pager, script);
        let err = DiskRTree::store_with_meta(&sample_tree(160, 53), &faulty).unwrap_err();
        assert!(!err.is_corrupt(), "plain write failure is I/O: {err:?}");
    }
    let pager = Pager::open(&path).unwrap();
    let disk = DiskRTree::open_default(&pager).unwrap();
    assert_eq!(disk.len(), tree_a.len(), "aborted store left A committed");
}

#[test]
fn transient_read_fails_once_then_search_succeeds() {
    let tree = sample_tree(200, 37);
    let pager = Pager::temp().unwrap();
    let disk = DiskRTree::store_with_meta(&tree, &pager).unwrap();

    let script = FaultScript::new().on_read(1, FaultKind::TransientRead, false);
    let faulty = FaultPager::new(&pager, script);
    let pool = BufferPool::new(&faulty, 32);
    let window = Rect::new(0.0, 0.0, 500.0, 500.0);
    let mut stats = SearchStats::default();
    let err = disk.search_within(&pool, &window, &mut stats).unwrap_err();
    assert!(
        !err.is_corrupt(),
        "transient EIO is not corruption: {err:?}"
    );
    // Nothing was cached from the failed read; the retry re-faults.
    let got = disk.search_within(&pool, &window, &mut stats).unwrap();
    let mut expect = {
        let mut s = SearchStats::default();
        tree.search_within(&window, &mut s)
    };
    expect.sort();
    let mut got = got;
    got.sort();
    assert_eq!(got, expect);
}

#[test]
fn paged_tree_crash_matrix_detected_or_consistent() {
    // PagedRTree updates node pages IN PLACE, so its contract after a
    // mid-commit crash is weaker than DiskRTree's (DESIGN.md §9): reopen
    // must never panic, and the tree it presents must either validate
    // cleanly with the pre- or post-commit item count, or the damage must
    // be *reported* (checksum Corrupt or a structural validation error)
    // — never a silently wrong tree that claims to be fine.
    let path = std::env::temp_dir().join(format!("fault-paged-matrix-{}.db", std::process::id()));
    let items: Vec<(Rect, ItemId)> = (0..90)
        .map(|i| {
            let x = (i * 37 % 211) as f64;
            let y = (i * 53 % 197) as f64;
            (Rect::from_point(Point::new(x, y)), ItemId(i))
        })
        .collect();

    {
        let pager = Pager::create(&path).unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 16).unwrap();
        for &(mbr, id) in &items[..60] {
            tree.insert(mbr, id).unwrap();
        }
        tree.close().unwrap();
    }
    let snapshot = std::fs::read(&path).unwrap();
    let pre_len = 60;
    let post_len = 60 + 30 - 10;

    // Deterministic update batch: 30 inserts, 10 deletes, one commit.
    let apply = |store: &dyn rtree_storage::PageStore| -> rtree_storage::StorageResult<()> {
        let mut tree = PagedRTree::open(store, PageId(0), 16)?;
        for &(mbr, id) in &items[60..90] {
            tree.insert(mbr, id)?;
        }
        for &(mbr, id) in &items[..10] {
            tree.remove(mbr, id)?;
        }
        tree.commit()
    };

    let total_writes = {
        let pager = Pager::open(&path).unwrap();
        let faulty = FaultPager::new(&pager, FaultScript::new());
        apply(&faulty).unwrap();
        faulty.writes_seen()
    };
    assert!(total_writes > 3);

    let mut clean = 0u32;
    let mut reported = 0u32;
    for k in 1..=total_writes {
        std::fs::write(&path, &snapshot).unwrap();
        {
            let pager = Pager::open(&path).unwrap();
            let script = FaultScript::new().on_write(k, FaultKind::TornWrite, true);
            let faulty = FaultPager::new(&pager, script);
            assert!(apply(&faulty).is_err(), "crash point {k} must abort");
        }
        let pager = Pager::open(&path).unwrap();
        let tree = PagedRTree::open(&pager, PageId(0), 16)
            .unwrap_or_else(|e| panic!("crash point {k}: open failed: {e}"));
        match tree.validate_with(false) {
            Ok(Ok(())) => {
                assert!(
                    tree.len() == pre_len || tree.len() == post_len,
                    "crash point {k}: clean tree with impossible len {}",
                    tree.len()
                );
                clean += 1;
            }
            Ok(Err(_)) | Err(StorageError::Corrupt { .. }) => reported += 1,
            Err(e) => panic!("crash point {k}: unexpected I/O error {e}"),
        }
    }
    // The last write is the meta slot: crashing there must always leave
    // the epoch-1 tree clean (data was already synced). So `clean` is
    // non-zero, and every trial fell in one of the two sanctioned
    // buckets (the asserts above).
    assert!(clean >= 1, "meta-write crash must roll back cleanly");
    assert_eq!(clean + reported, total_writes as u32);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn paged_meta_crash_keeps_old_epoch_and_detects_drift() {
    // Crash exactly on the meta-slot write (the last physical write of a
    // commit). The meta flip itself is atomic — reopen lands on the
    // previous epoch — but the node flush that preceded it already
    // rewrote pages in place, so the old meta now describes drifted
    // contents. The contract (DESIGN.md §9): the old epoch is what
    // reopens, and the drift is *reported* by validation (the recorded
    // item count no longer matches the leaves), never silently accepted.
    let path = std::env::temp_dir().join(format!("fault-paged-meta-{}.db", std::process::id()));
    {
        let pager = Pager::create(&path).unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 16).unwrap();
        for i in 0..40u64 {
            let p = Point::new((i * 7 % 101) as f64, (i * 13 % 103) as f64);
            tree.insert(Rect::from_point(p), ItemId(i)).unwrap();
        }
        tree.close().unwrap();
    }
    let base_epoch = {
        let pager = Pager::open(&path).unwrap();
        let epoch = PagedRTree::open(&pager, PageId(0), 16).unwrap().epoch();
        epoch
    };

    let total_writes = {
        let snapshot = std::fs::read(&path).unwrap();
        let pager = Pager::open(&path).unwrap();
        let faulty = FaultPager::new(&pager, FaultScript::new());
        let mut tree = PagedRTree::open(&faulty, PageId(0), 16).unwrap();
        tree.insert(Rect::from_point(Point::new(999.0, 999.0)), ItemId(999))
            .unwrap();
        tree.commit().unwrap();
        drop(tree);
        let n = faulty.writes_seen();
        std::fs::write(&path, &snapshot).unwrap();
        n
    };

    {
        let pager = Pager::open(&path).unwrap();
        let script = FaultScript::new().on_write(total_writes, FaultKind::TornWrite, true);
        let faulty = FaultPager::new(&pager, script);
        let mut tree = PagedRTree::open(&faulty, PageId(0), 16).unwrap();
        tree.insert(Rect::from_point(Point::new(999.0, 999.0)), ItemId(999))
            .unwrap();
        assert!(tree.commit().is_err(), "meta write must crash");
        assert_eq!(
            faulty.injected().last().unwrap().page,
            PageId((base_epoch as u32 & 1) ^ 1),
            "the torn write hit the alternate meta slot"
        );
    }

    let pager = Pager::open(&path).unwrap();
    let tree = PagedRTree::open(&pager, PageId(0), 16).unwrap();
    assert_eq!(tree.epoch(), base_epoch, "must reopen at the old epoch");
    assert_eq!(tree.len(), 40, "the old meta record is what reopens");
    let drift = tree
        .validate_with(false)
        .expect("validation reads must succeed")
        .expect_err("in-place flush before the meta crash drifted the contents");
    assert!(drift.contains("items != len"), "{drift}");

    // A no-op commit, by contrast, flushes no node pages: crashing on
    // its meta write rolls back with zero drift.
    {
        let script = FaultScript::new().on_write(1, FaultKind::TornWrite, true);
        let faulty = FaultPager::new(&pager, script);
        let mut t = PagedRTree::open(&faulty, PageId(0), 16).unwrap();
        assert!(t.commit().is_err(), "meta write must crash");
    }
    let pager = Pager::open(&path).unwrap();
    let tree = PagedRTree::open(&pager, PageId(0), 16).unwrap();
    assert_eq!(tree.epoch(), base_epoch);
    let mut stats = SearchStats::default();
    tree.point_query(Point::new(0.0, 0.0), &mut stats).unwrap();
    let _ = std::fs::remove_file(&path);
}
