//! The in-crate `paged_condense_orphan_stress_randomized` scenario
//! re-run as an integration test with the external deep validator from
//! `crates/oracle` after every removal: page-level CondenseTree (orphan
//! re-insertion, page freeing, root shortening) cross-examined by an
//! independently written invariant checker and a linear-scan search
//! differential against the live item set.

use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTreeConfig, SearchStats, SplitPolicy};
use rtree_oracle::{reference, validate_deep, DeepChecks, TreeImage};
use rtree_storage::{PagedRTree, Pager};

fn pt(x: f64, y: f64) -> Rect {
    Rect::from_point(Point::new(x, y))
}

#[test]
fn paged_condense_stress_validates_deep() {
    for &seed in &[5u64, 23] {
        let pager = Pager::temp().expect("temp pager");
        let config = RTreeConfig::new(4, 2, SplitPolicy::Quadratic);
        let mut tree = PagedRTree::create(&pager, config, 16).expect("create");
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut live: Vec<(Rect, ItemId)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..300 {
            let insert_pct = if step < 120 { 65 } else { 25 };
            if live.is_empty() || next() % 100 < insert_pct {
                let rect = if !live.is_empty() && next() % 4 == 0 {
                    live[next() as usize % live.len()].0
                } else {
                    pt((next() % 500) as f64, (next() % 500) as f64)
                };
                let id = ItemId(next_id);
                next_id += 1;
                tree.insert(rect, id).expect("insert");
                live.push((rect, id));
            } else {
                let (rect, id) = live.swap_remove(next() as usize % live.len());
                assert!(
                    tree.remove(rect, id).expect("remove io"),
                    "seed {seed}: step {step}: {id:?} missing"
                );
                let img = TreeImage::of_paged_tree(&tree).expect("image dump");
                validate_deep(&img, DeepChecks::dynamic())
                    .unwrap_or_else(|e| panic!("seed {seed}: step {step}: {e}"));
            }
            if step % 75 == 74 {
                let w = Rect::new(50.0, 50.0, 350.0, 350.0);
                let mut stats = SearchStats::default();
                let mut got = tree.search_within(&w, &mut stats).expect("search");
                got.sort_unstable_by_key(|&ItemId(i)| i);
                let mut expect = reference::window_items(&live, &w, true);
                expect.sort_unstable_by_key(|&ItemId(i)| i);
                assert_eq!(got, expect, "seed {seed}: step {step}: search diverges");
            }
        }
        while let Some((rect, id)) = live.pop() {
            assert!(
                tree.remove(rect, id).expect("remove io"),
                "seed {seed}: drain {id:?}"
            );
            let img = TreeImage::of_paged_tree(&tree).expect("image dump");
            validate_deep(&img, DeepChecks::dynamic())
                .unwrap_or_else(|e| panic!("seed {seed}: drain: {e}"));
        }
        assert!(tree.is_empty(), "seed {seed}");
        tree.close().expect("close");
    }
}
