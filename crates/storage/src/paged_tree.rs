//! A fully dynamic page-resident R-tree: Guttman INSERT/DELETE/SEARCH
//! operating directly on disk pages through the buffer pool.
//!
//! [`DiskRTree`](crate::DiskRTree) is a read-only image; `PagedRTree` is
//! the read-write sibling a database would actually run: one node per
//! 4 KiB page, ChooseLeaf/AdjustTree walking pages, node splits via the
//! same Guttman algorithms as the in-memory tree
//! ([`rtree_index::split::split_rect_entries`]), CondenseTree with orphan
//! re-insertion, and a two-slot meta pair making the whole index
//! reopenable.
//!
//! This realizes the paper's deployment story end to end: PACK the
//! static picture once ([`PagedRTree::from_tree`] writes the packed tree
//! sequentially), then serve direct spatial search *and* occasional
//! updates from disk (§3.4).
//!
//! # Crash safety
//!
//! Updates buffer in the pool and in the in-memory header;
//! [`commit`](PagedRTree::commit) (also reachable as
//! [`flush`](PagedRTree::flush)) makes them durable: dirty node pages
//! are flushed, synced, and then the meta pair (see [`meta`](crate::meta))
//! flips to a new epoch. Operations since the last commit are lost on a
//! crash. Because node pages are updated **in place**, a crash while
//! dirty pages are being flushed can tear pages the previous commit
//! still references — such damage is *detected* (checksums surface it as
//! [`StorageError::Corrupt`]) but not rolled back; see DESIGN.md §9 for
//! the full contract. Finish with [`close`](PagedRTree::close) to
//! observe any final write error instead of relying on drop.

use crate::buffer::BufferPool;
use crate::codec::{self, DiskEntry, DiskNode, MAX_ENTRIES_PER_PAGE};
use crate::error::{StorageError, StorageResult};
use crate::meta;
use crate::page::{PageId, PageType};
use crate::pager::PageStore;
use rtree_geom::{Point, Rect};
use rtree_index::split::split_rect_entries;
use rtree_index::{Child, ItemId, NodeId, RTree, RTreeConfig, SearchStats};
use std::io;

/// Magic for `PagedRTree` meta slots (distinct from the read-only
/// image's).
const META_MAGIC: u64 = u64::from_le_bytes(*b"PRTDYN85");

/// A mutable, page-resident R-tree over a [`PageStore`] + [`BufferPool`].
pub struct PagedRTree<'a> {
    pool: BufferPool<'a>,
    meta: PageId,
    root: PageId,
    depth: u32,
    len: usize,
    config: RTreeConfig,
    epoch: u64,
}

impl<'a> PagedRTree<'a> {
    /// Creates an empty paged tree: reserves the meta pair, allocates an
    /// empty leaf root, and commits epoch 1.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if `config.max_entries` exceeds
    /// [`MAX_ENTRIES_PER_PAGE`].
    pub fn create(
        store: &'a dyn PageStore,
        config: RTreeConfig,
        pool_frames: usize,
    ) -> StorageResult<Self> {
        check_config(&config)?;
        let meta = store.allocate();
        store.allocate(); // second meta slot
        let root = store.allocate();
        let pool = BufferPool::new(store, pool_frames);
        let mut tree = PagedRTree {
            pool,
            meta,
            root,
            depth: 0,
            len: 0,
            config,
            epoch: 0,
        };
        tree.write_node(
            root,
            &DiskNode {
                level: 0,
                entries: Vec::new(),
            },
        )?;
        tree.commit()?;
        Ok(tree)
    }

    /// Converts an in-memory tree (typically freshly PACKed) into a paged
    /// tree, writing nodes children-first and committing epoch 1.
    pub fn from_tree(
        tree: &RTree,
        store: &'a dyn PageStore,
        pool_frames: usize,
    ) -> StorageResult<Self> {
        check_config(&tree.config())?;
        let meta = store.allocate();
        store.allocate(); // second meta slot
        let pool = BufferPool::new(store, pool_frames);
        let mut paged = PagedRTree {
            pool,
            meta,
            root: PageId(0), // fixed up below
            depth: tree.depth(),
            len: tree.len(),
            config: tree.config(),
            epoch: 0,
        };
        paged.root = paged.copy_node(tree, tree.root())?;
        paged.commit()?;
        Ok(paged)
    }

    fn copy_node(&mut self, tree: &RTree, id: NodeId) -> StorageResult<PageId> {
        let node = tree.node(id);
        let mut entries = Vec::with_capacity(node.len());
        for e in &node.entries {
            let child = match e.child {
                Child::Item(item) => item.0,
                Child::Node(c) => self.copy_node(tree, c)?.0 as u64,
            };
            entries.push(DiskEntry { mbr: e.mbr, child });
        }
        let page_id = self.store().allocate();
        self.write_node(
            page_id,
            &DiskNode {
                level: node.level,
                entries,
            },
        )?;
        Ok(page_id)
    }

    /// Reopens a paged tree from its meta pair (first slot at `meta`),
    /// picking the newest slot that verifies.
    pub fn open(store: &'a dyn PageStore, meta: PageId, pool_frames: usize) -> StorageResult<Self> {
        let Some((page, epoch)) = meta::load_newest(store, meta, META_MAGIC)? else {
            return Err(StorageError::corrupt(
                meta,
                "no valid PagedRTree meta slot (wrong magic or torn write)",
            ));
        };
        let b = &page.bytes()[meta::META_FIELDS..];
        let root = PageId(u32::from_le_bytes(b[0..4].try_into().expect("4")));
        let depth = u32::from_le_bytes(b[4..8].try_into().expect("4"));
        let len = u64::from_le_bytes(b[8..16].try_into().expect("8")) as usize;
        let max_entries = u32::from_le_bytes(b[16..20].try_into().expect("4")) as usize;
        let min_entries = u32::from_le_bytes(b[20..24].try_into().expect("4")) as usize;
        let split = match b[24] {
            0 => rtree_index::SplitPolicy::Linear,
            2 => rtree_index::SplitPolicy::Exhaustive,
            _ => rtree_index::SplitPolicy::Quadratic,
        };
        let config = RTreeConfig::new(max_entries, min_entries, split);
        Ok(PagedRTree {
            pool: BufferPool::new(store, pool_frames),
            meta,
            root,
            depth,
            len,
            config,
            epoch,
        })
    }

    /// Commits the current state: flushes dirty node pages, syncs, and
    /// flips the meta pair to a new epoch (sync-write-sync). On return,
    /// a reopen observes exactly this tree.
    pub fn commit(&mut self) -> StorageResult<()> {
        self.pool.flush()?;
        let epoch = self.epoch + 1;
        let (root, depth, len, config) = (self.root, self.depth, self.len, self.config);
        meta::commit(
            self.store(),
            self.meta,
            META_MAGIC,
            epoch,
            PageType::DynMeta,
            |b| {
                b[0..4].copy_from_slice(&root.0.to_le_bytes());
                b[4..8].copy_from_slice(&depth.to_le_bytes());
                b[8..16].copy_from_slice(&(len as u64).to_le_bytes());
                b[16..20].copy_from_slice(&(config.max_entries as u32).to_le_bytes());
                b[20..24].copy_from_slice(&(config.min_entries as u32).to_le_bytes());
                b[24] = match config.split {
                    rtree_index::SplitPolicy::Linear => 0,
                    rtree_index::SplitPolicy::Quadratic => 1,
                    rtree_index::SplitPolicy::Exhaustive => 2,
                };
            },
        )?;
        self.epoch = epoch;
        Ok(())
    }

    /// Alias for [`commit`](PagedRTree::commit), kept for callers that
    /// think in flush terms.
    pub fn flush(&mut self) -> StorageResult<()> {
        self.commit()
    }

    /// Commits and tears the tree down, reporting any write failure —
    /// the durability-correct way to finish (dropping instead leaves
    /// only the buffer pool's best-effort backstop, which cannot report
    /// errors and does not advance the commit epoch).
    pub fn close(mut self) -> StorageResult<()> {
        self.commit()?;
        let PagedRTree { pool, .. } = self;
        pool.close()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root level (Table 1's `D`).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The tree's configuration.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Commit epoch of the last successful [`commit`](PagedRTree::commit)
    /// (or the one this tree was opened at).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Buffer-pool statistics for the tree's page traffic.
    pub fn pool_stats(&self) -> crate::buffer::BufferStats {
        self.pool.stats()
    }

    fn read_node(&self, id: PageId) -> StorageResult<DiskNode> {
        self.pool
            .with_page(id, codec::decode)?
            .map_err(|reason| StorageError::corrupt(id, reason))
    }

    fn write_node(&self, id: PageId, node: &DiskNode) -> StorageResult<()> {
        self.pool.with_page_mut(id, |p| codec::encode(node, p))
    }

    /// Decodes every reachable node, breadth-first from the root.
    ///
    /// External structure checkers (the differential oracle's
    /// `validate_deep`) use this to rebuild the tree graph — including
    /// after a crash/reopen — without access to the private pool.
    pub fn dump_nodes(&self) -> StorageResult<Vec<(PageId, DiskNode)>> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(pid) = queue.pop_front() {
            let node = self.read_node(pid)?;
            if !node.is_leaf() {
                for i in 0..node.entries.len() {
                    queue.push_back(node.child_page(i));
                }
            }
            out.push((pid, node));
        }
        Ok(out)
    }

    /// Materializes the current tree as an in-memory
    /// [`rtree_index::FrozenRTree`] — the cache-conscious SoA layout —
    /// reading every reachable page once. Works on any committed state,
    /// including one freshly reopened after a crash.
    pub fn freeze(&self) -> StorageResult<rtree_index::FrozenRTree> {
        crate::disk_tree::frozen_from_dump(
            self.dump_nodes()?,
            self.config,
            self.depth,
            self.len,
            self.root,
        )
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// The paper's `SEARCH` against pages.
    pub fn search_within(
        &self,
        window: &Rect,
        stats: &mut SearchStats,
    ) -> StorageResult<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.read_node(pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.covered_by(window) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.intersects(window) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// The Table 1 point query against pages.
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> StorageResult<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.read_node(pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Guttman INSERT on pages. Buffered: durable at the next
    /// [`commit`](PagedRTree::commit).
    pub fn insert(&mut self, mbr: Rect, item: ItemId) -> StorageResult<()> {
        self.insert_entry_at_level(DiskEntry { mbr, child: item.0 }, 0)?;
        self.len += 1;
        Ok(())
    }

    fn insert_entry_at_level(&mut self, entry: DiskEntry, level: u32) -> StorageResult<()> {
        debug_assert!(level <= self.depth);
        // ChooseLeaf, recording the descent path.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut current = self.root;
        let mut node = self.read_node(current)?;
        while node.level > level {
            let chosen = choose_subtree(&node, &entry.mbr);
            path.push((current, chosen));
            current = node.child_page(chosen);
            node = self.read_node(current)?;
        }

        node.entries.push(entry);
        let mut split_off = self.split_if_overflowing(&mut node)?;
        self.write_node(current, &node)?;

        // AdjustTree.
        for (parent_id, child_idx) in path.into_iter().rev() {
            let mut parent = self.read_node(parent_id)?;
            let child_id = parent.child_page(child_idx);
            let child = self.read_node(child_id)?;
            parent.entries[child_idx].mbr = node_mbr(&child).expect("child not empty");
            if let Some((new_mbr, new_page)) = split_off.take() {
                parent.entries.push(DiskEntry {
                    mbr: new_mbr,
                    child: new_page.0 as u64,
                });
                split_off = self.split_if_overflowing(&mut parent)?;
            }
            self.write_node(parent_id, &parent)?;
        }

        // Root split: grow upward.
        if let Some((new_mbr, new_page)) = split_off {
            let old_root = self.root;
            let old = self.read_node(old_root)?;
            let new_root = DiskNode {
                level: old.level + 1,
                entries: vec![
                    DiskEntry {
                        mbr: node_mbr(&old).expect("root not empty"),
                        child: old_root.0 as u64,
                    },
                    DiskEntry {
                        mbr: new_mbr,
                        child: new_page.0 as u64,
                    },
                ],
            };
            let new_root_id = self.store().allocate();
            self.write_node(new_root_id, &new_root)?;
            self.root = new_root_id;
            self.depth = old.level + 1;
        }
        Ok(())
    }

    /// Splits `node` (already containing the overflow entry) if needed;
    /// returns the new sibling's MBR and page.
    fn split_if_overflowing(
        &mut self,
        node: &mut DiskNode,
    ) -> StorageResult<Option<(Rect, PageId)>> {
        if node.entries.len() <= self.config.max_entries {
            return Ok(None);
        }
        let entries = std::mem::take(&mut node.entries);
        let (a, b) = split_rect_entries(&self.config, entries, |e: &DiskEntry| e.mbr);
        node.entries = a;
        let sibling = DiskNode {
            level: node.level,
            entries: b,
        };
        let sibling_mbr = node_mbr(&sibling).expect("non-empty");
        let sibling_id = self.store().allocate();
        self.write_node(sibling_id, &sibling)?;
        Ok(Some((sibling_mbr, sibling_id)))
    }

    fn store(&self) -> &'a dyn PageStore {
        self.pool.store()
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Guttman DELETE on pages: FindLeaf + CondenseTree with orphan
    /// re-insertion. Returns whether the entry existed. Buffered:
    /// durable at the next [`commit`](PagedRTree::commit).
    pub fn remove(&mut self, mbr: Rect, item: ItemId) -> StorageResult<bool> {
        let Some(path) = self.find_leaf_path(&mbr, item)? else {
            return Ok(false);
        };
        let leaf_id = *path.last().expect("path has leaf");
        let mut leaf = self.read_node(leaf_id)?;
        let pos = leaf
            .entries
            .iter()
            .position(|e| e.mbr == mbr && e.child == item.0)
            .expect("find_leaf_path verified");
        leaf.entries.remove(pos);
        self.write_node(leaf_id, &leaf)?;
        self.len -= 1;

        self.condense(&path)?;
        Ok(true)
    }

    fn find_leaf_path(&self, mbr: &Rect, item: ItemId) -> StorageResult<Option<Vec<PageId>>> {
        let mut path = vec![self.root];
        if self.find_leaf_rec(self.root, mbr, item, &mut path)? {
            Ok(Some(path))
        } else {
            Ok(None)
        }
    }

    fn find_leaf_rec(
        &self,
        id: PageId,
        mbr: &Rect,
        item: ItemId,
        path: &mut Vec<PageId>,
    ) -> StorageResult<bool> {
        let node = self.read_node(id)?;
        if node.is_leaf() {
            return Ok(node
                .entries
                .iter()
                .any(|e| e.mbr == *mbr && e.child == item.0));
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.mbr.covers(mbr) {
                let child = node.child_page(i);
                path.push(child);
                if self.find_leaf_rec(child, mbr, item, path)? {
                    return Ok(true);
                }
                path.pop();
            }
        }
        Ok(false)
    }

    fn condense(&mut self, path: &[PageId]) -> StorageResult<()> {
        let mut eliminated: Vec<(u32, Vec<DiskEntry>)> = Vec::new();
        for window in (1..path.len()).rev() {
            let node_id = path[window];
            let parent_id = path[window - 1];
            let node = self.read_node(node_id)?;
            let mut parent = self.read_node(parent_id)?;
            let child_idx = parent
                .entries
                .iter()
                .position(|e| e.child == node_id.0 as u64)
                .expect("path link");
            if node.entries.len() < self.config.min_entries {
                parent.entries.remove(child_idx);
                self.store().free(node_id);
                if !node.entries.is_empty() {
                    eliminated.push((node.level, node.entries));
                }
            } else {
                parent.entries[child_idx].mbr = node_mbr(&node).expect("non-empty");
            }
            self.write_node(parent_id, &parent)?;
        }

        for (level, entries) in eliminated {
            for entry in entries {
                if level <= self.depth {
                    self.insert_entry_at_level(entry, level)?;
                } else {
                    self.reinsert_subtree_items(entry, level)?;
                }
            }
        }

        // Shorten a single-child non-leaf root.
        loop {
            let root = self.read_node(self.root)?;
            if root.is_leaf() || root.entries.len() != 1 {
                break;
            }
            let child = root.child_page(0);
            self.store().free(self.root);
            self.root = child;
            self.depth = self.read_node(child)?.level;
        }
        Ok(())
    }

    fn reinsert_subtree_items(&mut self, entry: DiskEntry, level: u32) -> StorageResult<()> {
        if level == 0 {
            return self.insert_entry_at_level(entry, 0);
        }
        let page = PageId(u32::try_from(entry.child).expect("page id"));
        let node = self.read_node(page)?;
        self.store().free(page);
        for e in node.entries {
            self.reinsert_subtree_items(e, node.level)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Validation (test support)
    // ------------------------------------------------------------------

    /// Structural validation mirroring [`RTree::validate`]; reads every
    /// page.
    pub fn validate(&self) -> StorageResult<Result<(), String>> {
        self.validate_with(true)
    }

    /// Like [`validate`](PagedRTree::validate) but with the minimum-fill
    /// check optional — packed images may carry one legitimately
    /// under-filled node per level (§3.3).
    pub fn validate_with(&self, check_min_fill: bool) -> StorageResult<Result<(), String>> {
        let mut leaf_items = 0usize;
        let mut stack = vec![(self.root, None::<Rect>, true)];
        while let Some((id, expected, is_root)) = stack.pop() {
            let node = self.read_node(id)?;
            if node.entries.len() > self.config.max_entries {
                return Ok(Err(format!("{id}: overflow")));
            }
            if !is_root && check_min_fill && node.entries.len() < self.config.min_entries {
                return Ok(Err(format!("{id}: underflow ({})", node.entries.len())));
            }
            if is_root && node.level != self.depth {
                return Ok(Err(format!(
                    "root level {} != recorded depth {}",
                    node.level, self.depth
                )));
            }
            if let Some(expect) = expected {
                match node_mbr(&node) {
                    Some(actual) if actual == expect => {}
                    other => return Ok(Err(format!("{id}: mbr mismatch {other:?} vs {expect}"))),
                }
            }
            if node.is_leaf() {
                leaf_items += node.entries.len();
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    stack.push((node.child_page(i), Some(e.mbr), false));
                }
            }
        }
        if leaf_items != self.len {
            return Ok(Err(format!("{leaf_items} items != len {}", self.len)));
        }
        Ok(Ok(()))
    }
}

fn check_config(config: &RTreeConfig) -> StorageResult<()> {
    if config.max_entries > MAX_ENTRIES_PER_PAGE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "branching factor {} exceeds page capacity {}",
                config.max_entries, MAX_ENTRIES_PER_PAGE
            ),
        )
        .into());
    }
    Ok(())
}

fn node_mbr(node: &DiskNode) -> Option<Rect> {
    Rect::mbr_of_rects(node.entries.iter().map(|e| e.mbr))
}

/// ChooseLeaf criterion: least enlargement, ties by least area.
fn choose_subtree(node: &DiskNode, mbr: &Rect) -> usize {
    debug_assert!(!node.entries.is_empty());
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let enlargement = e.mbr.enlargement(mbr);
        let area = e.mbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn scatter(n: u64) -> Vec<(Rect, ItemId)> {
        let mut s = 7u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1000) as f64;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1000) as f64;
                (pt(x, y), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn insert_and_search_on_pages() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 32).unwrap();
        let items = scatter(200);
        for &(mbr, id) in &items {
            tree.insert(mbr, id).unwrap();
        }
        tree.validate().unwrap().unwrap();
        assert_eq!(tree.len(), 200);
        assert!(tree.depth() >= 3);

        let window = Rect::new(200.0, 200.0, 700.0, 700.0);
        let mut stats = SearchStats::default();
        let mut got = tree.search_within(&window, &mut stats).unwrap();
        got.sort();
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.covered_by(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn paged_matches_memory_tree_exactly() {
        // Same inserts, same config: the paged tree and the in-memory
        // tree must agree on every query (they share the split code).
        let pager = Pager::temp().unwrap();
        let mut paged = PagedRTree::create(&pager, RTreeConfig::PAPER, 64).unwrap();
        let mut memory = RTree::new(RTreeConfig::PAPER);
        let items = scatter(300);
        for &(mbr, id) in &items {
            paged.insert(mbr, id).unwrap();
            memory.insert(mbr, id);
        }
        assert_eq!(paged.depth(), memory.depth());
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        for i in 0..50 {
            let q = Point::new((i * 37 % 1000) as f64, (i * 91 % 1000) as f64);
            let mut a = paged.point_query(q, &mut s1).unwrap();
            let mut b = memory.point_query(q, &mut s2);
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(s1.nodes_visited, s2.nodes_visited, "identical structure");
    }

    #[test]
    fn remove_all_on_pages() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 32).unwrap();
        let items = scatter(150);
        for &(mbr, id) in &items {
            tree.insert(mbr, id).unwrap();
        }
        for &(mbr, id) in &items {
            assert!(tree.remove(mbr, id).unwrap(), "missing {id}");
        }
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 0);
        tree.validate().unwrap().unwrap();
        assert!(!tree.remove(items[0].0, items[0].1).unwrap());
    }

    #[test]
    fn interleaved_updates_stay_valid() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 16).unwrap();
        let items = scatter(240);
        for chunk in items.chunks(40) {
            for &(mbr, id) in chunk {
                tree.insert(mbr, id).unwrap();
            }
            for &(mbr, id) in &chunk[..20] {
                assert!(tree.remove(mbr, id).unwrap());
            }
            tree.validate().unwrap().unwrap();
        }
        assert_eq!(tree.len(), 120);
    }

    /// The on-page mirror of `rtree-index`'s
    /// `condense_orphan_stress_randomized`: a delete-heavy randomized
    /// workload with the structural validator run after every removal,
    /// hitting CondenseTree's orphan re-insertion, page freeing, and
    /// root-shortening paths against real pages.
    #[test]
    fn paged_condense_orphan_stress_randomized() {
        for &seed in &[5u64, 23] {
            let pager = Pager::temp().unwrap();
            let config = RTreeConfig::new(4, 2, rtree_index::SplitPolicy::Quadratic);
            let mut tree = PagedRTree::create(&pager, config, 16).unwrap();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s >> 33
            };
            let mut live: Vec<(Rect, ItemId)> = Vec::new();
            let mut next_id = 0u64;
            for step in 0..300 {
                let insert_pct = if step < 120 { 65 } else { 25 };
                if live.is_empty() || next() % 100 < insert_pct {
                    let rect = if !live.is_empty() && next() % 4 == 0 {
                        live[next() as usize % live.len()].0
                    } else {
                        pt((next() % 500) as f64, (next() % 500) as f64)
                    };
                    let id = ItemId(next_id);
                    next_id += 1;
                    tree.insert(rect, id).unwrap();
                    live.push((rect, id));
                } else {
                    let (rect, id) = live.swap_remove(next() as usize % live.len());
                    assert!(
                        tree.remove(rect, id).unwrap(),
                        "seed {seed}: step {step}: {id:?} missing"
                    );
                    tree.validate().unwrap().unwrap();
                }
                assert_eq!(tree.len(), live.len(), "seed {seed}: step {step}");
            }
            while let Some((rect, id)) = live.pop() {
                assert!(tree.remove(rect, id).unwrap(), "seed {seed}: drain {id:?}");
                tree.validate().unwrap().unwrap();
            }
            assert!(tree.is_empty(), "seed {seed}");
            assert_eq!(tree.depth(), 0, "seed {seed}");
            tree.close().unwrap();
        }
    }

    #[test]
    fn from_packed_tree_and_reopen() {
        let path = std::env::temp_dir().join(format!("paged-rtree-{}.db", std::process::id()));
        let items = scatter(400);
        let packed = packed_tree(&items);
        {
            let pager = Pager::create(&path).unwrap();
            let mut paged = PagedRTree::from_tree(&packed, &pager, 32).unwrap();
            paged.validate_with(false).unwrap().unwrap();
            // A few dynamic updates on the packed image (§3.4).
            paged.insert(pt(1.5, 2.5), ItemId(9999)).unwrap();
            assert!(paged.remove(items[0].0, items[0].1).unwrap());
            paged.close().unwrap();
        }
        {
            let pager = Pager::open(&path).unwrap();
            let paged = PagedRTree::open(&pager, PageId(0), 32).unwrap();
            assert_eq!(paged.len(), 400);
            assert_eq!(
                paged.config(),
                RTreeConfig::PAPER,
                "config (incl. split policy) survives reopen"
            );
            assert!(paged.epoch() >= 2, "close() advanced the commit epoch");
            paged.validate_with(false).unwrap().unwrap();
            let mut stats = SearchStats::default();
            let hits = paged.point_query(Point::new(1.5, 2.5), &mut stats).unwrap();
            assert!(hits.contains(&ItemId(9999)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_ops_roll_back_on_reopen() {
        let path =
            std::env::temp_dir().join(format!("paged-rtree-rollback-{}.db", std::process::id()));
        {
            let pager = Pager::create(&path).unwrap();
            let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 32).unwrap();
            for &(mbr, id) in &scatter(50) {
                tree.insert(mbr, id).unwrap();
            }
            tree.commit().unwrap();
            // More inserts, never committed: the meta pair still points
            // at epoch 2's tree.
            for &(mbr, id) in &scatter(80)[50..] {
                tree.insert(mbr, id).unwrap();
            }
            drop(tree);
        }
        {
            let pager = Pager::open(&path).unwrap();
            let tree = PagedRTree::open(&pager, PageId(0), 32).unwrap();
            assert_eq!(tree.len(), 50, "uncommitted inserts must not be visible");
        }
        let _ = std::fs::remove_file(&path);
    }

    fn packed_tree(items: &[(Rect, ItemId)]) -> RTree {
        // Local bottom-up pack (avoids a dev-dependency cycle with
        // packed-rtree-core): plain x-sort runs.
        use rtree_index::builder::BottomUpBuilder;
        let mut sorted: Vec<(Rect, ItemId)> = items.to_vec();
        sorted.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let mut handles: Vec<(NodeId, Rect)> = sorted
            .chunks(4)
            .map(|chunk| b.add_leaf(chunk.to_vec()))
            .collect();
        let mut level = 1;
        while handles.len() > 1 {
            handles = handles
                .chunks(4)
                .map(|chunk| b.add_internal(level, chunk.to_vec()))
                .collect();
            level += 1;
        }
        b.finish(handles[0].0)
    }

    #[test]
    fn oversized_config_rejected() {
        let pager = Pager::temp().unwrap();
        assert!(PagedRTree::create(&pager, RTreeConfig::with_branching(500), 8).is_err());
    }
}
