//! A fully dynamic page-resident R-tree: Guttman INSERT/DELETE/SEARCH
//! operating directly on disk pages through the buffer pool.
//!
//! [`DiskRTree`](crate::DiskRTree) is a read-only image; `PagedRTree` is
//! the read-write sibling a database would actually run: one node per
//! 4 KiB page, ChooseLeaf/AdjustTree walking pages, node splits via the
//! same Guttman algorithms as the in-memory tree
//! ([`rtree_index::split::split_rect_entries`]), CondenseTree with orphan
//! re-insertion, and a meta page making the whole index reopenable.
//!
//! This realizes the paper's deployment story end to end: PACK the
//! static picture once ([`PagedRTree::from_tree`] writes the packed tree
//! sequentially), then serve direct spatial search *and* occasional
//! updates from disk (§3.4).

use crate::buffer::BufferPool;
use crate::codec::{self, DiskEntry, DiskNode, MAX_ENTRIES_PER_PAGE};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use rtree_geom::{Point, Rect};
use rtree_index::split::split_rect_entries;
use rtree_index::{Child, ItemId, NodeId, RTree, RTreeConfig, SearchStats};
use std::io;

/// Magic for `PagedRTree` meta pages (distinct from the read-only
/// image's).
const META_MAGIC: u64 = u64::from_le_bytes(*b"PRTDYN85");

/// A mutable, page-resident R-tree over a [`Pager`] + [`BufferPool`].
pub struct PagedRTree<'a> {
    pool: BufferPool<'a>,
    meta: PageId,
    root: PageId,
    depth: u32,
    len: usize,
    config: RTreeConfig,
}

impl<'a> PagedRTree<'a> {
    /// Creates an empty paged tree: allocates a meta page and an empty
    /// leaf root.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if `config.max_entries` exceeds
    /// [`MAX_ENTRIES_PER_PAGE`].
    pub fn create(pager: &'a Pager, config: RTreeConfig, pool_frames: usize) -> io::Result<Self> {
        check_config(&config)?;
        let meta = pager.allocate();
        let root = pager.allocate();
        let pool = BufferPool::new(pager, pool_frames);
        let tree = PagedRTree {
            pool,
            meta,
            root,
            depth: 0,
            len: 0,
            config,
        };
        tree.write_node(
            root,
            &DiskNode {
                level: 0,
                entries: Vec::new(),
            },
        )?;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Converts an in-memory tree (typically freshly PACKed) into a paged
    /// tree, writing nodes children-first.
    pub fn from_tree(tree: &RTree, pager: &'a Pager, pool_frames: usize) -> io::Result<Self> {
        check_config(&tree.config())?;
        let meta = pager.allocate();
        let pool = BufferPool::new(pager, pool_frames);
        let mut paged = PagedRTree {
            pool,
            meta,
            root: PageId(0), // fixed up below
            depth: tree.depth(),
            len: tree.len(),
            config: tree.config(),
        };
        paged.root = paged.copy_node(tree, tree.root(), pager)?;
        paged.write_meta()?;
        Ok(paged)
    }

    fn copy_node(&mut self, tree: &RTree, id: NodeId, pager: &Pager) -> io::Result<PageId> {
        let node = tree.node(id);
        let mut entries = Vec::with_capacity(node.len());
        for e in &node.entries {
            let child = match e.child {
                Child::Item(item) => item.0,
                Child::Node(c) => self.copy_node(tree, c, pager)?.0 as u64,
            };
            entries.push(DiskEntry { mbr: e.mbr, child });
        }
        let page_id = pager.allocate();
        self.write_node(
            page_id,
            &DiskNode {
                level: node.level,
                entries,
            },
        )?;
        Ok(page_id)
    }

    /// Reopens a paged tree from its meta page.
    pub fn open(pager: &'a Pager, meta: PageId, pool_frames: usize) -> io::Result<Self> {
        let page = pager.read_page(meta)?;
        let b = page.bytes();
        let magic = u64::from_le_bytes(b[0..8].try_into().expect("8"));
        if magic != META_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a PagedRTree meta page",
            ));
        }
        let root = PageId(u32::from_le_bytes(b[8..12].try_into().expect("4")));
        let depth = u32::from_le_bytes(b[12..16].try_into().expect("4"));
        let len = u64::from_le_bytes(b[16..24].try_into().expect("8")) as usize;
        let max_entries = u32::from_le_bytes(b[24..28].try_into().expect("4")) as usize;
        let min_entries = u32::from_le_bytes(b[28..32].try_into().expect("4")) as usize;
        let split = match b[32] {
            0 => rtree_index::SplitPolicy::Linear,
            2 => rtree_index::SplitPolicy::Exhaustive,
            _ => rtree_index::SplitPolicy::Quadratic,
        };
        let config = RTreeConfig::new(max_entries, min_entries, split);
        Ok(PagedRTree {
            pool: BufferPool::new(pager, pool_frames),
            meta,
            root,
            depth,
            len,
            config,
        })
    }

    /// Flushes dirty pages and the meta page to the pager.
    pub fn flush(&mut self) -> io::Result<()> {
        self.write_meta()?;
        self.pool.flush()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root level (Table 1's `D`).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The tree's configuration.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Buffer-pool statistics for the tree's page traffic.
    pub fn pool_stats(&self) -> crate::buffer::BufferStats {
        self.pool.stats()
    }

    fn write_meta(&self) -> io::Result<()> {
        let mut page = Page::zeroed();
        let b = page.bytes_mut();
        b[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&self.root.0.to_le_bytes());
        b[12..16].copy_from_slice(&self.depth.to_le_bytes());
        b[16..24].copy_from_slice(&(self.len as u64).to_le_bytes());
        b[24..28].copy_from_slice(&(self.config.max_entries as u32).to_le_bytes());
        b[28..32].copy_from_slice(&(self.config.min_entries as u32).to_le_bytes());
        b[32] = match self.config.split {
            rtree_index::SplitPolicy::Linear => 0,
            rtree_index::SplitPolicy::Quadratic => 1,
            rtree_index::SplitPolicy::Exhaustive => 2,
        };
        self.pool.with_page_mut(self.meta, |p| *p = page)?;
        Ok(())
    }

    fn read_node(&self, id: PageId) -> io::Result<DiskNode> {
        self.pool.with_page(id, codec::decode)
    }

    fn write_node(&self, id: PageId, node: &DiskNode) -> io::Result<()> {
        self.pool.with_page_mut(id, |p| codec::encode(node, p))
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// The paper's `SEARCH` against pages.
    pub fn search_within(&self, window: &Rect, stats: &mut SearchStats) -> io::Result<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.read_node(pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.covered_by(window) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.intersects(window) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// The Table 1 point query against pages.
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> io::Result<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.read_node(pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Guttman INSERT on pages.
    pub fn insert(&mut self, mbr: Rect, item: ItemId) -> io::Result<()> {
        self.insert_entry_at_level(DiskEntry { mbr, child: item.0 }, 0)?;
        self.len += 1;
        self.write_meta()
    }

    fn insert_entry_at_level(&mut self, entry: DiskEntry, level: u32) -> io::Result<()> {
        debug_assert!(level <= self.depth);
        // ChooseLeaf, recording the descent path.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut current = self.root;
        let mut node = self.read_node(current)?;
        while node.level > level {
            let chosen = choose_subtree(&node, &entry.mbr);
            path.push((current, chosen));
            current = node.child_page(chosen);
            node = self.read_node(current)?;
        }

        node.entries.push(entry);
        let mut split_off = self.split_if_overflowing(current, &mut node)?;
        self.write_node(current, &node)?;

        // AdjustTree.
        for (parent_id, child_idx) in path.into_iter().rev() {
            let mut parent = self.read_node(parent_id)?;
            let child_id = parent.child_page(child_idx);
            let child = self.read_node(child_id)?;
            parent.entries[child_idx].mbr = node_mbr(&child).expect("child not empty");
            if let Some((new_mbr, new_page)) = split_off.take() {
                parent.entries.push(DiskEntry {
                    mbr: new_mbr,
                    child: new_page.0 as u64,
                });
                split_off = self.split_if_overflowing(parent_id, &mut parent)?;
            }
            self.write_node(parent_id, &parent)?;
        }

        // Root split: grow upward.
        if let Some((new_mbr, new_page)) = split_off {
            let old_root = self.root;
            let old = self.read_node(old_root)?;
            let new_root = DiskNode {
                level: old.level + 1,
                entries: vec![
                    DiskEntry {
                        mbr: node_mbr(&old).expect("root not empty"),
                        child: old_root.0 as u64,
                    },
                    DiskEntry {
                        mbr: new_mbr,
                        child: new_page.0 as u64,
                    },
                ],
            };
            let new_root_id = self.allocate_page()?;
            self.write_node(new_root_id, &new_root)?;
            self.root = new_root_id;
            self.depth = old.level + 1;
        }
        Ok(())
    }

    /// Splits `node` (already containing the overflow entry) if needed;
    /// returns the new sibling's MBR and page.
    fn split_if_overflowing(
        &mut self,
        _id: PageId,
        node: &mut DiskNode,
    ) -> io::Result<Option<(Rect, PageId)>> {
        if node.entries.len() <= self.config.max_entries {
            return Ok(None);
        }
        let entries = std::mem::take(&mut node.entries);
        let (a, b) = split_rect_entries(&self.config, entries, |e: &DiskEntry| e.mbr);
        node.entries = a;
        let sibling = DiskNode {
            level: node.level,
            entries: b,
        };
        let sibling_mbr = node_mbr(&sibling).expect("non-empty");
        let sibling_id = self.allocate_page()?;
        self.write_node(sibling_id, &sibling)?;
        Ok(Some((sibling_mbr, sibling_id)))
    }

    fn allocate_page(&self) -> io::Result<PageId> {
        Ok(self.pool_pager().allocate())
    }

    fn pool_pager(&self) -> &Pager {
        // BufferPool keeps the pager reference; expose through a helper.
        self.pool.pager()
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Guttman DELETE on pages: FindLeaf + CondenseTree with orphan
    /// re-insertion. Returns whether the entry existed.
    pub fn remove(&mut self, mbr: Rect, item: ItemId) -> io::Result<bool> {
        let Some(path) = self.find_leaf_path(&mbr, item)? else {
            return Ok(false);
        };
        let leaf_id = *path.last().expect("path has leaf");
        let mut leaf = self.read_node(leaf_id)?;
        let pos = leaf
            .entries
            .iter()
            .position(|e| e.mbr == mbr && e.child == item.0)
            .expect("find_leaf_path verified");
        leaf.entries.remove(pos);
        self.write_node(leaf_id, &leaf)?;
        self.len -= 1;

        self.condense(&path)?;
        self.write_meta()?;
        Ok(true)
    }

    fn find_leaf_path(&self, mbr: &Rect, item: ItemId) -> io::Result<Option<Vec<PageId>>> {
        let mut path = vec![self.root];
        if self.find_leaf_rec(self.root, mbr, item, &mut path)? {
            Ok(Some(path))
        } else {
            Ok(None)
        }
    }

    fn find_leaf_rec(
        &self,
        id: PageId,
        mbr: &Rect,
        item: ItemId,
        path: &mut Vec<PageId>,
    ) -> io::Result<bool> {
        let node = self.read_node(id)?;
        if node.is_leaf() {
            return Ok(node
                .entries
                .iter()
                .any(|e| e.mbr == *mbr && e.child == item.0));
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.mbr.covers(mbr) {
                let child = node.child_page(i);
                path.push(child);
                if self.find_leaf_rec(child, mbr, item, path)? {
                    return Ok(true);
                }
                path.pop();
            }
        }
        Ok(false)
    }

    fn condense(&mut self, path: &[PageId]) -> io::Result<()> {
        let mut eliminated: Vec<(u32, Vec<DiskEntry>)> = Vec::new();
        for window in (1..path.len()).rev() {
            let node_id = path[window];
            let parent_id = path[window - 1];
            let node = self.read_node(node_id)?;
            let mut parent = self.read_node(parent_id)?;
            let child_idx = parent
                .entries
                .iter()
                .position(|e| e.child == node_id.0 as u64)
                .expect("path link");
            if node.entries.len() < self.config.min_entries {
                parent.entries.remove(child_idx);
                self.pool_pager().free(node_id);
                if !node.entries.is_empty() {
                    eliminated.push((node.level, node.entries));
                }
            } else {
                parent.entries[child_idx].mbr = node_mbr(&node).expect("non-empty");
            }
            self.write_node(parent_id, &parent)?;
        }

        for (level, entries) in eliminated {
            for entry in entries {
                if level <= self.depth {
                    self.insert_entry_at_level(entry, level)?;
                } else {
                    self.reinsert_subtree_items(entry, level)?;
                }
            }
        }

        // Shorten a single-child non-leaf root.
        loop {
            let root = self.read_node(self.root)?;
            if root.is_leaf() || root.entries.len() != 1 {
                break;
            }
            let child = root.child_page(0);
            self.pool_pager().free(self.root);
            self.root = child;
            self.depth = self.read_node(child)?.level;
        }
        Ok(())
    }

    fn reinsert_subtree_items(&mut self, entry: DiskEntry, level: u32) -> io::Result<()> {
        if level == 0 {
            return self.insert_entry_at_level(entry, 0);
        }
        let page = PageId(u32::try_from(entry.child).expect("page id"));
        let node = self.read_node(page)?;
        self.pool_pager().free(page);
        for e in node.entries {
            self.reinsert_subtree_items(e, node.level)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Validation (test support)
    // ------------------------------------------------------------------

    /// Structural validation mirroring [`RTree::validate`]; reads every
    /// page.
    pub fn validate(&self) -> io::Result<Result<(), String>> {
        self.validate_with(true)
    }

    /// Like [`validate`](PagedRTree::validate) but with the minimum-fill
    /// check optional — packed images may carry one legitimately
    /// under-filled node per level (§3.3).
    pub fn validate_with(&self, check_min_fill: bool) -> io::Result<Result<(), String>> {
        let mut leaf_items = 0usize;
        let mut stack = vec![(self.root, None::<Rect>, true)];
        while let Some((id, expected, is_root)) = stack.pop() {
            let node = self.read_node(id)?;
            if node.entries.len() > self.config.max_entries {
                return Ok(Err(format!("{id}: overflow")));
            }
            if !is_root && check_min_fill && node.entries.len() < self.config.min_entries {
                return Ok(Err(format!("{id}: underflow ({})", node.entries.len())));
            }
            if is_root && node.level != self.depth {
                return Ok(Err(format!(
                    "root level {} != recorded depth {}",
                    node.level, self.depth
                )));
            }
            if let Some(expect) = expected {
                match node_mbr(&node) {
                    Some(actual) if actual == expect => {}
                    other => return Ok(Err(format!("{id}: mbr mismatch {other:?} vs {expect}"))),
                }
            }
            if node.is_leaf() {
                leaf_items += node.entries.len();
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    stack.push((node.child_page(i), Some(e.mbr), false));
                }
            }
        }
        if leaf_items != self.len {
            return Ok(Err(format!("{leaf_items} items != len {}", self.len)));
        }
        Ok(Ok(()))
    }
}

fn check_config(config: &RTreeConfig) -> io::Result<()> {
    if config.max_entries > MAX_ENTRIES_PER_PAGE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "branching factor {} exceeds page capacity {}",
                config.max_entries, MAX_ENTRIES_PER_PAGE
            ),
        ));
    }
    Ok(())
}

fn node_mbr(node: &DiskNode) -> Option<Rect> {
    Rect::mbr_of_rects(node.entries.iter().map(|e| e.mbr))
}

/// ChooseLeaf criterion: least enlargement, ties by least area.
fn choose_subtree(node: &DiskNode, mbr: &Rect) -> usize {
    debug_assert!(!node.entries.is_empty());
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let enlargement = e.mbr.enlargement(mbr);
        let area = e.mbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn scatter(n: u64) -> Vec<(Rect, ItemId)> {
        let mut s = 7u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1000) as f64;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1000) as f64;
                (pt(x, y), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn insert_and_search_on_pages() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 32).unwrap();
        let items = scatter(200);
        for &(mbr, id) in &items {
            tree.insert(mbr, id).unwrap();
        }
        tree.validate().unwrap().unwrap();
        assert_eq!(tree.len(), 200);
        assert!(tree.depth() >= 3);

        let window = Rect::new(200.0, 200.0, 700.0, 700.0);
        let mut stats = SearchStats::default();
        let mut got = tree.search_within(&window, &mut stats).unwrap();
        got.sort();
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.covered_by(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn paged_matches_memory_tree_exactly() {
        // Same inserts, same config: the paged tree and the in-memory
        // tree must agree on every query (they share the split code).
        let pager = Pager::temp().unwrap();
        let mut paged = PagedRTree::create(&pager, RTreeConfig::PAPER, 64).unwrap();
        let mut memory = RTree::new(RTreeConfig::PAPER);
        let items = scatter(300);
        for &(mbr, id) in &items {
            paged.insert(mbr, id).unwrap();
            memory.insert(mbr, id);
        }
        assert_eq!(paged.depth(), memory.depth());
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        for i in 0..50 {
            let q = Point::new((i * 37 % 1000) as f64, (i * 91 % 1000) as f64);
            let mut a = paged.point_query(q, &mut s1).unwrap();
            let mut b = memory.point_query(q, &mut s2);
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(s1.nodes_visited, s2.nodes_visited, "identical structure");
    }

    #[test]
    fn remove_all_on_pages() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 32).unwrap();
        let items = scatter(150);
        for &(mbr, id) in &items {
            tree.insert(mbr, id).unwrap();
        }
        for &(mbr, id) in &items {
            assert!(tree.remove(mbr, id).unwrap(), "missing {id}");
        }
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 0);
        tree.validate().unwrap().unwrap();
        assert!(!tree.remove(items[0].0, items[0].1).unwrap());
    }

    #[test]
    fn interleaved_updates_stay_valid() {
        let pager = Pager::temp().unwrap();
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 16).unwrap();
        let items = scatter(240);
        for chunk in items.chunks(40) {
            for &(mbr, id) in chunk {
                tree.insert(mbr, id).unwrap();
            }
            for &(mbr, id) in &chunk[..20] {
                assert!(tree.remove(mbr, id).unwrap());
            }
            tree.validate().unwrap().unwrap();
        }
        assert_eq!(tree.len(), 120);
    }

    #[test]
    fn from_packed_tree_and_reopen() {
        let path = std::env::temp_dir().join(format!("paged-rtree-{}.db", std::process::id()));
        let items = scatter(400);
        let packed = packed_tree(&items);
        {
            let pager = Pager::create(&path).unwrap();
            let mut paged = PagedRTree::from_tree(&packed, &pager, 32).unwrap();
            paged.validate_with(false).unwrap().unwrap();
            // A few dynamic updates on the packed image (§3.4).
            paged.insert(pt(1.5, 2.5), ItemId(9999)).unwrap();
            assert!(paged.remove(items[0].0, items[0].1).unwrap());
            paged.flush().unwrap();
        }
        {
            let pager = Pager::open(&path).unwrap();
            let paged = PagedRTree::open(&pager, PageId(0), 32).unwrap();
            assert_eq!(paged.len(), 400);
            assert_eq!(
                paged.config(),
                RTreeConfig::PAPER,
                "config (incl. split policy) survives reopen"
            );
            paged.validate_with(false).unwrap().unwrap();
            let mut stats = SearchStats::default();
            let hits = paged.point_query(Point::new(1.5, 2.5), &mut stats).unwrap();
            assert!(hits.contains(&ItemId(9999)));
        }
        let _ = std::fs::remove_file(&path);
    }

    fn packed_tree(items: &[(Rect, ItemId)]) -> RTree {
        // Local bottom-up pack (avoids a dev-dependency cycle with
        // packed-rtree-core): plain x-sort runs.
        use rtree_index::builder::BottomUpBuilder;
        let mut sorted: Vec<(Rect, ItemId)> = items.to_vec();
        sorted.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let mut handles: Vec<(NodeId, Rect)> = sorted
            .chunks(4)
            .map(|chunk| b.add_leaf(chunk.to_vec()))
            .collect();
        let mut level = 1;
        while handles.len() > 1 {
            handles = handles
                .chunks(4)
                .map(|chunk| b.add_internal(level, chunk.to_vec()))
                .collect();
            level += 1;
        }
        b.finish(handles[0].0)
    }

    #[test]
    fn oversized_config_rejected() {
        let pager = Pager::temp().unwrap();
        assert!(PagedRTree::create(&pager, RTreeConfig::with_branching(500), 8).is_err());
    }
}
