//! Simulated disk substrate: page files, an LRU buffer pool, and
//! page-resident R-trees with I/O accounting.
//!
//! The paper motivates R-trees over quad-trees partly because "the storage
//! organization of R-trees is based on B-trees, \[so\] they are better in
//! dealing with paging and disk I/O buffering" (§1), and notes that
//! practical branching factors are those "that fill a logical disk block"
//! (§3). The authors ran on 1985 hardware we do not have; this crate
//! substitutes a **simulated disk**: real files accessed in fixed 4 KiB
//! pages through a pinning LRU buffer pool, with read/write/hit/miss
//! counters. Node-per-page layout means pages touched ≈ nodes visited, so
//! the Table 1 `A` metric translates directly into I/O — the `io_sweep`
//! experiment (EXT-5) measures exactly that.
//!
//! # Layers
//!
//! * [`page`] — fixed-size page type and ids, with a per-page CRC32
//!   checksum footer and page-type tag;
//! * [`crc`] — the CRC-32 implementation (no external crates);
//! * [`error`] — [`StorageError`], separating I/O failures from detected
//!   corruption;
//! * [`pager`] — a file of pages with allocation and a free list, behind
//!   the [`PageStore`] trait (checksums stamped on write, verified on
//!   read);
//! * [`fault`] — [`FaultPager`], a deterministic fault-injecting
//!   `PageStore` wrapper for crash/corruption testing;
//! * [`buffer`] — the LRU buffer pool;
//! * [`codec`] — R-tree node ⇄ page serialization (fixed little-endian
//!   layout, no external serialization crates);
//! * [`meta`] — two-slot shadow meta pages for atomic commits;
//! * [`disk_tree`] — a page-resident R-tree image supporting the paper's
//!   searches with I/O counted;
//! * [`wal`] — an append-only, CRC-framed write-ahead log that makes
//!   dynamic inserts durable between repacks (DESIGN.md §14).
//!
//! The crash-safety model — what the checksums, the meta pair, and the
//! fault harness each guarantee — is documented in `DESIGN.md` §9.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod codec;
pub mod crc;
pub mod disk_tree;
pub mod error;
pub mod fault;
pub mod meta;
pub mod page;
pub mod paged_tree;
pub mod pager;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use disk_tree::DiskRTree;
pub use error::{StorageError, StorageResult};
pub use fault::{FaultKind, FaultPager, FaultScript, InjectedFault};
pub use page::{Page, PageId, PageType, PAGE_SIZE, PAYLOAD_SIZE};
pub use paged_tree::PagedRTree;
pub use pager::{IoStats, PageStore, Pager};
pub use wal::{Wal, WAL_RECORD_MAX};
