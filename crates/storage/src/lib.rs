//! Simulated disk substrate: page files, an LRU buffer pool, and
//! page-resident R-trees with I/O accounting.
//!
//! The paper motivates R-trees over quad-trees partly because "the storage
//! organization of R-trees is based on B-trees, \[so\] they are better in
//! dealing with paging and disk I/O buffering" (§1), and notes that
//! practical branching factors are those "that fill a logical disk block"
//! (§3). The authors ran on 1985 hardware we do not have; this crate
//! substitutes a **simulated disk**: real files accessed in fixed 4 KiB
//! pages through a pinning LRU buffer pool, with read/write/hit/miss
//! counters. Node-per-page layout means pages touched ≈ nodes visited, so
//! the Table 1 `A` metric translates directly into I/O — the `io_sweep`
//! experiment (EXT-5) measures exactly that.
//!
//! # Layers
//!
//! * [`page`] — fixed-size page type and ids;
//! * [`pager`] — a file of pages with allocation and a free list;
//! * [`buffer`] — the LRU buffer pool;
//! * [`codec`] — R-tree node ⇄ page serialization (fixed little-endian
//!   layout, no external serialization crates);
//! * [`disk_tree`] — a page-resident R-tree image supporting the paper's
//!   searches with I/O counted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod codec;
pub mod disk_tree;
pub mod page;
pub mod paged_tree;
pub mod pager;

pub use buffer::{BufferPool, BufferStats};
pub use disk_tree::DiskRTree;
pub use page::{Page, PageId, PAGE_SIZE};
pub use paged_tree::PagedRTree;
pub use pager::{IoStats, Pager};
