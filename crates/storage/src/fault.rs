//! Deterministic fault injection for crash testing.
//!
//! [`FaultPager`] wraps a real [`Pager`] and implements [`PageStore`], so
//! the buffer pool and both page-resident trees run against it unchanged.
//! A [`FaultScript`] names, by 1-based physical-operation index within
//! each class (writes counted separately from reads), exactly which
//! operations misbehave and how ([`FaultKind`]):
//!
//! * **FailWrite** — the write returns `EIO`; nothing reaches the file.
//! * **TornWrite** — only the first half of the (sealed) page reaches the
//!   file, then `EIO`: the on-disk image now fails its checksum, exactly
//!   what a crash mid-`pwrite` leaves behind.
//! * **ShortRead** — the read returns with its tail half zeroed, as a
//!   truncated file or short `pread` would; checksum verification turns
//!   it into [`StorageError::Corrupt`].
//! * **TransientRead** — the read fails once with `EIO`; a retry (the
//!   next read of any page) proceeds normally.
//!
//! A fault may additionally be marked as a **crash point**: after it
//! fires, every subsequent read, write, and sync fails, simulating the
//! process dying at that instant. The test then reopens the *underlying
//! file* with a fresh [`Pager`] and checks what recovery sees — the
//! `crash_matrix` bench bin scripts exactly that loop over many seeds.
//!
//! Everything is deterministic: the same script against the same
//! workload injects the same faults, so failures reproduce from a seed.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::{PageStore, Pager};
use parking_lot::Mutex;
use std::io;

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Write returns `EIO`; the file is untouched.
    FailWrite,
    /// Half the page reaches the file, then `EIO` (torn write).
    TornWrite,
    /// Read returns a page with its tail half zeroed (short read).
    ShortRead,
    /// Read fails once with `EIO`; retries succeed.
    TransientRead,
}

impl FaultKind {
    fn is_write(self) -> bool {
        matches!(self, FaultKind::FailWrite | FaultKind::TornWrite)
    }
}

/// One fault that actually fired, for assertions and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What happened.
    pub kind: FaultKind,
    /// 1-based operation index within its class (write ops or read ops).
    pub op: u64,
    /// The page the operation targeted.
    pub page: PageId,
}

#[derive(Debug, Clone, Copy)]
struct Scripted {
    op: u64,
    kind: FaultKind,
    crash: bool,
}

/// A deterministic schedule of faults, by per-class operation index.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    writes: Vec<Scripted>,
    reads: Vec<Scripted>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Schedules a write-class fault on the `nth` (1-based) physical
    /// write. If `crash` is set, the pager refuses all further I/O after
    /// the fault fires.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a write-class fault.
    pub fn on_write(mut self, nth: u64, kind: FaultKind, crash: bool) -> Self {
        assert!(kind.is_write(), "{kind:?} is not a write fault");
        self.writes.push(Scripted {
            op: nth,
            kind,
            crash,
        });
        self
    }

    /// Schedules a read-class fault on the `nth` (1-based) physical read.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a write-class fault.
    pub fn on_read(mut self, nth: u64, kind: FaultKind, crash: bool) -> Self {
        assert!(!kind.is_write(), "{kind:?} is not a read fault");
        self.reads.push(Scripted {
            op: nth,
            kind,
            crash,
        });
        self
    }
}

struct FaultState {
    script: FaultScript,
    writes_seen: u64,
    reads_seen: u64,
    crashed: bool,
    injected: Vec<InjectedFault>,
}

/// A [`PageStore`] that injects scripted faults into a wrapped [`Pager`].
pub struct FaultPager<'a> {
    inner: &'a Pager,
    state: Mutex<FaultState>,
}

impl<'a> FaultPager<'a> {
    /// Wraps `inner`, injecting the faults `script` names.
    pub fn new(inner: &'a Pager, script: FaultScript) -> Self {
        FaultPager {
            inner,
            state: Mutex::new(FaultState {
                script,
                writes_seen: 0,
                reads_seen: 0,
                crashed: false,
                injected: Vec::new(),
            }),
        }
    }

    /// Faults that actually fired so far, in order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state.lock().injected.clone()
    }

    /// `true` once a crash-point fault has fired; all subsequent I/O
    /// fails until the file is reopened with a fresh pager.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Physical writes observed (including faulted ones).
    pub fn writes_seen(&self) -> u64 {
        self.state.lock().writes_seen
    }

    /// Physical reads observed (including faulted ones).
    pub fn reads_seen(&self) -> u64 {
        self.state.lock().reads_seen
    }

    fn eio(what: &str) -> StorageError {
        StorageError::Io(io::Error::other(format!("injected {what}")))
    }

    /// Advances the class counter, firing at most one scripted fault.
    fn next_fault(&self, write: bool, page: PageId) -> Option<FaultKind> {
        let mut st = self.state.lock();
        if st.crashed {
            return Some(FaultKind::FailWrite); // sentinel: everything fails
        }
        let op = if write {
            st.writes_seen += 1;
            st.writes_seen
        } else {
            st.reads_seen += 1;
            st.reads_seen
        };
        let list = if write {
            &st.script.writes
        } else {
            &st.script.reads
        };
        let hit = list.iter().find(|s| s.op == op).copied();
        if let Some(s) = hit {
            st.injected.push(InjectedFault {
                kind: s.kind,
                op,
                page,
            });
            if s.crash {
                st.crashed = true;
            }
            return Some(s.kind);
        }
        None
    }
}

impl PageStore for FaultPager<'_> {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn free(&self, id: PageId) {
        self.inner.free(id)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        if self.state.lock().crashed {
            return Err(Self::eio("post-crash read"));
        }
        match self.next_fault(false, id) {
            None => self.inner.read_page(id),
            Some(FaultKind::TransientRead) => Err(Self::eio("transient read error")),
            Some(FaultKind::ShortRead) => {
                let mut page = self.inner.read_page_raw(id)?;
                page.bytes_mut()[PAGE_SIZE / 2..].fill(0);
                page.verify()
                    .map_err(|reason| StorageError::corrupt(id, format!("short read: {reason}")))?;
                Ok(page)
            }
            Some(_) => Err(Self::eio("post-crash read")),
        }
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        if self.state.lock().crashed {
            return Err(Self::eio("post-crash write"));
        }
        match self.next_fault(true, id) {
            None => self.inner.write_page(id, page),
            Some(FaultKind::FailWrite) => Err(Self::eio("write failure")),
            Some(FaultKind::TornWrite) => {
                let mut sealed = page.clone();
                sealed.seal();
                self.inner.write_partial(id, &sealed, PAGE_SIZE / 2)?;
                Err(Self::eio("torn write"))
            }
            Some(_) => Err(Self::eio("post-crash write")),
        }
    }

    fn sync(&self) -> StorageResult<()> {
        if self.state.lock().crashed {
            return Err(Self::eio("post-crash sync"));
        }
        self.inner.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_script_is_transparent() {
        let pager = Pager::temp().unwrap();
        let faulty = FaultPager::new(&pager, FaultScript::new());
        let id = faulty.allocate();
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 11;
        faulty.write_page(id, &page).unwrap();
        assert_eq!(faulty.read_page(id).unwrap().bytes()[0], 11);
        assert!(faulty.injected().is_empty());
        assert!(!faulty.crashed());
    }

    #[test]
    fn nth_write_fails_exactly_once() {
        let pager = Pager::temp().unwrap();
        let script = FaultScript::new().on_write(2, FaultKind::FailWrite, false);
        let faulty = FaultPager::new(&pager, script);
        let a = faulty.allocate();
        let b = faulty.allocate();
        faulty.write_page(a, &Page::zeroed()).unwrap();
        let err = faulty.write_page(b, &Page::zeroed()).unwrap_err();
        assert!(!err.is_corrupt(), "write failures are I/O errors: {err:?}");
        // Retry succeeds (op counter moved past the scripted index).
        faulty.write_page(b, &Page::zeroed()).unwrap();
        assert_eq!(faulty.injected().len(), 1);
        assert_eq!(faulty.injected()[0].page, b);
    }

    #[test]
    fn torn_write_leaves_detectable_corruption() {
        let pager = Pager::temp().unwrap();
        let script = FaultScript::new().on_write(2, FaultKind::TornWrite, false);
        let faulty = FaultPager::new(&pager, script);
        let id = faulty.allocate();
        let mut page = Page::zeroed();
        page.bytes_mut()[100] = 0xAB;
        page.bytes_mut()[PAGE_SIZE - 100] = 0xCD;
        faulty.write_page(id, &page).unwrap(); // intact epoch
        let mut newer = page.clone();
        newer.bytes_mut()[100] = 0xFF;
        assert!(faulty.write_page(id, &newer).is_err()); // torn
                                                         // The page is now half-new, half-old: checksum must not verify.
        let err = pager.read_page(id).unwrap_err();
        assert!(err.is_corrupt(), "{err:?}");
    }

    #[test]
    fn short_read_reports_corrupt() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        // Data in both halves: the short read keeps the head but loses
        // the tail (and the checksum footer with it), so the surviving
        // half-page cannot be mistaken for a never-written zero page.
        let mut page = Page::zeroed();
        page.bytes_mut()[100] = 0x66;
        page.bytes_mut()[PAGE_SIZE - 20] = 0x77;
        pager.write_page(id, &page).unwrap();

        let script = FaultScript::new().on_read(1, FaultKind::ShortRead, false);
        let faulty = FaultPager::new(&pager, script);
        let err = faulty.read_page(id).unwrap_err();
        assert!(err.is_corrupt(), "{err:?}");
        // Second read is clean.
        assert_eq!(faulty.read_page(id).unwrap().bytes()[PAGE_SIZE - 20], 0x77);
    }

    #[test]
    fn transient_read_recovers_on_retry() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        pager.write_page(id, &Page::zeroed()).unwrap();
        let script = FaultScript::new().on_read(1, FaultKind::TransientRead, false);
        let faulty = FaultPager::new(&pager, script);
        let err = faulty.read_page(id).unwrap_err();
        assert!(!err.is_corrupt(), "transient errors are I/O: {err:?}");
        faulty.read_page(id).unwrap();
    }

    #[test]
    fn crash_point_kills_all_subsequent_io() {
        let pager = Pager::temp().unwrap();
        let script = FaultScript::new().on_write(1, FaultKind::TornWrite, true);
        let faulty = FaultPager::new(&pager, script);
        let id = faulty.allocate();
        assert!(faulty.write_page(id, &Page::zeroed()).is_err());
        assert!(faulty.crashed());
        assert!(faulty.write_page(id, &Page::zeroed()).is_err());
        assert!(faulty.read_page(id).is_err());
        assert!(faulty.sync().is_err());
        // The underlying file is still usable through a direct pager —
        // that is the "reopen after crash" path.
        let _ = pager.read_page_raw(id).unwrap();
    }
}
