//! The pager: a file of fixed-size pages with allocation, raw I/O
//! counting, and checksum enforcement — plus the [`PageStore`] trait
//! that lets fault-injecting wrappers stand in for the real file.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// The interface the buffer pool and the page-resident trees program
/// against: allocate/free page ids, read/write whole pages, and flush to
/// stable storage.
///
/// [`Pager`] is the real implementation;
/// [`FaultPager`](crate::FaultPager) wraps one to inject deterministic
/// faults for crash testing.
pub trait PageStore {
    /// Allocates a fresh (or recycled) page id.
    fn allocate(&self) -> PageId;
    /// Returns a page id to the free list.
    fn free(&self, id: PageId);
    /// Number of pages ever allocated (high-water mark).
    fn page_count(&self) -> u32;
    /// Reads page `id`, verifying its checksum.
    fn read_page(&self, id: PageId) -> StorageResult<Page>;
    /// Writes page `id`, stamping its checksum.
    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()>;
    /// Writes `pages.len()` consecutive pages starting at `first`,
    /// stamping each page's checksum. The default forwards to one
    /// [`write_page`](PageStore::write_page) per page, so fault-injecting
    /// wrappers keep observing (and faulting) every physical page write;
    /// [`Pager`] overrides it with a single positional write, which is
    /// what makes bulk emitters (the external packer's run spiller and
    /// node-page emitter) pay one syscall per batch instead of one per
    /// 4 KiB page.
    fn write_pages(&self, first: PageId, pages: &[Page]) -> StorageResult<()> {
        for (i, page) in pages.iter().enumerate() {
            self.write_page(PageId(first.0 + i as u32), page)?;
        }
        Ok(())
    }
    /// Flushes file contents to stable storage.
    fn sync(&self) -> StorageResult<()>;
}

/// A shared reference to any store is itself a store, so components that
/// own their store by value (e.g. [`Wal`](crate::wal::Wal)) can also
/// borrow one — the WAL crash matrix runs a `Wal<&FaultPager>` while the
/// test harness keeps inspecting the wrapper.
impl<S: PageStore + ?Sized> PageStore for &S {
    fn allocate(&self) -> PageId {
        (**self).allocate()
    }

    fn free(&self, id: PageId) {
        (**self).free(id)
    }

    fn page_count(&self) -> u32 {
        (**self).page_count()
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        (**self).read_page(id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        (**self).write_page(id, page)
    }

    fn write_pages(&self, first: PageId, pages: &[Page]) -> StorageResult<()> {
        (**self).write_pages(first, pages)
    }

    fn sync(&self) -> StorageResult<()> {
        (**self).sync()
    }
}

/// Raw disk traffic counters (physical page reads/writes issued to the
/// file, i.e. buffer-pool misses and flushes).
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Physical page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// A page file: allocate, read, write, free.
///
/// All I/O is positional (`pread`/`pwrite`); a [`Mutex`] guards the
/// allocation state while data-path reads/writes go straight to the file,
/// which is safe because the buffer pool never issues concurrent accesses
/// to the same page frame.
///
/// Every [`write_page`](Pager::write_page) seals the page (footer CRC);
/// every [`read_page`](Pager::read_page) verifies it, surfacing torn
/// writes and bit rot as [`StorageError::Corrupt`].
pub struct Pager {
    file: File,
    state: Mutex<AllocState>,
    stats: IoStats,
}

#[derive(Debug, Default)]
struct AllocState {
    next: u32,
    free: Vec<PageId>,
}

impl Pager {
    /// Creates (truncating) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            file,
            state: Mutex::new(AllocState::default()),
            stats: IoStats::default(),
        })
    }

    /// Opens an existing page file without truncating it; the allocation
    /// high-water mark resumes after the last full page on disk.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let next = u32::try_from(len.div_ceil(crate::page::PAGE_SIZE as u64))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large"))?;
        Ok(Pager {
            file,
            state: Mutex::new(AllocState {
                next,
                free: Vec::new(),
            }),
            stats: IoStats::default(),
        })
    }

    /// Creates a pager backed by an anonymous temporary file in
    /// `std::env::temp_dir()`, deleted on drop.
    pub fn temp() -> io::Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "packed-rtree-pager-{}-{:x}.db",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let pager = Self::create(&path)?;
        // Unlink immediately; the open fd keeps the file alive (unix).
        let _ = std::fs::remove_file(&path);
        Ok(pager)
    }

    /// Allocates a fresh (or recycled) page id.
    pub fn allocate(&self) -> PageId {
        let mut st = self.state.lock();
        if let Some(id) = st.free.pop() {
            id
        } else {
            let id = PageId(st.next);
            st.next += 1;
            id
        }
    }

    /// Returns a page id to the free list.
    pub fn free(&self, id: PageId) {
        self.state.lock().free.push(id);
    }

    /// Number of pages ever allocated (high-water mark).
    pub fn page_count(&self) -> u32 {
        self.state.lock().next
    }

    /// Reads page `id` from disk **without** checksum verification.
    ///
    /// Exists for recovery tooling and the fault-injection layer; normal
    /// code paths go through [`read_page`](Pager::read_page).
    pub fn read_page_raw(&self, id: PageId) -> io::Result<Page> {
        let mut page = Page::zeroed();
        // Pages beyond EOF read as zeroes (sparse file semantics).
        let mut buf = &mut page.bytes_mut()[..];
        let mut off = id.offset();
        while !buf.is_empty() {
            match self.file.read_at(buf, off) {
                Ok(0) => break,
                Ok(n) => {
                    buf = &mut buf[n..];
                    off += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Reads page `id` from disk, verifying the footer checksum.
    pub fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let page = self.read_page_raw(id)?;
        page.verify()
            .map_err(|reason| StorageError::corrupt(id, reason))?;
        Ok(page)
    }

    /// Writes page `id` to disk, sealing a fresh footer checksum over the
    /// current contents (the caller's copy is not modified).
    pub fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut sealed = page.clone();
        sealed.seal();
        self.write_page_raw(id, &sealed)?;
        Ok(())
    }

    /// Writes consecutive pages `first..first + pages.len()` with one
    /// positional write, sealing each page's checksum into a staging
    /// buffer first. Counts one physical write per page (the same file
    /// bytes move either way); the saving over per-page writes is the
    /// syscall amortization for bulk emitters.
    pub fn write_pages(&self, first: PageId, pages: &[Page]) -> StorageResult<()> {
        use crate::page::{CRC_OFFSET, PAGE_SIZE};
        if pages.is_empty() {
            return Ok(());
        }
        let mut staging = Vec::with_capacity(pages.len() * PAGE_SIZE);
        for page in pages {
            let at = staging.len();
            staging.extend_from_slice(&page.bytes()[..]);
            let crc = crate::crc::crc32(&staging[at..at + CRC_OFFSET]);
            staging[at + CRC_OFFSET..at + PAGE_SIZE].copy_from_slice(&crc.to_le_bytes());
        }
        self.file.write_all_at(&staging, first.offset())?;
        self.stats
            .writes
            .fetch_add(pages.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Writes a page image verbatim — no checksum stamping. Used by the
    /// fault layer to simulate torn/garbage writes; normal code paths go
    /// through [`write_page`](Pager::write_page).
    pub fn write_page_raw(&self, id: PageId, page: &Page) -> io::Result<()> {
        self.file.write_all_at(&page.bytes()[..], id.offset())?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes only the first `len` bytes of `page` at `id`'s offset — a
    /// torn (partial) write, as a crash mid-`pwrite` would leave. Counts
    /// as one physical write.
    pub fn write_partial(&self, id: PageId, page: &Page, len: usize) -> io::Result<()> {
        let len = len.min(crate::page::PAGE_SIZE);
        self.file.write_all_at(&page.bytes()[..len], id.offset())?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Raw I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Flushes file contents to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl PageStore for Pager {
    fn allocate(&self) -> PageId {
        Pager::allocate(self)
    }

    fn free(&self, id: PageId) {
        Pager::free(self, id)
    }

    fn page_count(&self) -> u32 {
        Pager::page_count(self)
    }

    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        Pager::read_page(self, id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        Pager::write_page(self, id, page)
    }

    fn write_pages(&self, first: PageId, pages: &[Page]) -> StorageResult<()> {
        Pager::write_pages(self, first, pages)
    }

    fn sync(&self) -> StorageResult<()> {
        Pager::sync(self)?;
        Ok(())
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("pages", &self.page_count())
            .field("reads", &self.stats.reads())
            .field("writes", &self.stats.writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    #[test]
    fn allocate_sequential_and_recycle() {
        let pager = Pager::temp().unwrap();
        let a = pager.allocate();
        let b = pager.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        pager.free(a);
        assert_eq!(pager.allocate(), a);
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 7;
        page.bytes_mut()[PAGE_SIZE - 9] = 9;
        pager.write_page(id, &page).unwrap();
        let back = pager.read_page(id).unwrap();
        assert_eq!(back.bytes()[0], 7);
        assert_eq!(back.bytes()[PAGE_SIZE - 9], 9);
        assert_eq!(pager.stats().reads(), 1);
        assert_eq!(pager.stats().writes(), 1);
    }

    #[test]
    fn write_pages_batch_matches_per_page_writes() {
        let pager = Pager::temp().unwrap();
        let first = pager.allocate();
        let mut batch = Vec::new();
        for i in 0..5u8 {
            if i > 0 {
                pager.allocate();
            }
            let mut page = Page::zeroed();
            page.bytes_mut()[0] = i + 1;
            page.bytes_mut()[PAGE_SIZE - 9] = 0xA0 | i;
            batch.push(page);
        }
        pager.write_pages(first, &batch).unwrap();
        assert_eq!(pager.stats().writes(), 5);
        // Every page reads back with a valid checksum and its payload.
        for (i, expect) in batch.iter().enumerate() {
            let got = pager.read_page(PageId(first.0 + i as u32)).unwrap();
            assert_eq!(got.bytes()[0], expect.bytes()[0], "page {i}");
            assert_eq!(got.bytes()[PAGE_SIZE - 9], expect.bytes()[PAGE_SIZE - 9]);
        }
        // Empty batch is a no-op.
        pager.write_pages(PageId(0), &[]).unwrap();
        assert_eq!(pager.stats().writes(), 5);
    }

    #[test]
    fn trait_default_write_pages_goes_through_write_page() {
        // The default impl must issue one observable write per page, so
        // fault wrappers (which rely on per-write counting) stay exact.
        let pager = Pager::temp().unwrap();
        let faulty = crate::FaultPager::new(&pager, crate::FaultScript::new());
        let first = PageStore::allocate(&faulty);
        PageStore::allocate(&faulty);
        let pages = vec![Page::zeroed(), Page::zeroed()];
        PageStore::write_pages(&faulty, first, &pages).unwrap();
        assert_eq!(faulty.writes_seen(), 2);
    }

    #[test]
    fn unwritten_page_reads_as_zero() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let page = pager.read_page(id).unwrap();
        assert!(page.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn independent_pages_do_not_clobber() {
        let pager = Pager::temp().unwrap();
        let a = pager.allocate();
        let b = pager.allocate();
        let mut pa = Page::zeroed();
        pa.bytes_mut()[10] = 1;
        let mut pb = Page::zeroed();
        pb.bytes_mut()[10] = 2;
        pager.write_page(a, &pa).unwrap();
        pager.write_page(b, &pb).unwrap();
        assert_eq!(pager.read_page(a).unwrap().bytes()[10], 1);
        assert_eq!(pager.read_page(b).unwrap().bytes()[10], 2);
    }

    #[test]
    fn bit_flip_detected_as_corrupt() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let mut page = Page::zeroed();
        page.bytes_mut()[123] = 0xAA;
        pager.write_page(id, &page).unwrap();

        // Flip one bit behind the pager's back.
        let mut raw = pager.read_page_raw(id).unwrap();
        raw.bytes_mut()[123] ^= 0x10;
        pager.write_page_raw(id, &raw).unwrap();

        let err = pager.read_page(id).unwrap_err();
        assert!(err.is_corrupt(), "expected Corrupt, got {err:?}");
        match err {
            StorageError::Corrupt { page, reason } => {
                assert_eq!(page, id);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_write_detected_as_corrupt() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let mut page = Page::zeroed();
        for (i, b) in page.bytes_mut().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        pager.write_page(id, &page).unwrap();

        // A different image, torn halfway through.
        let mut torn = Page::zeroed();
        for b in torn.bytes_mut().iter_mut() {
            *b = 0xEE;
        }
        torn.seal();
        pager.write_partial(id, &torn, PAGE_SIZE / 2).unwrap();

        assert!(pager.read_page(id).unwrap_err().is_corrupt());
    }

    #[test]
    fn write_failures_propagate_as_errors() {
        // A pager opened on a read-only file must fail writes with an
        // io::Error, not panic — failure injection for the write path.
        let path = std::env::temp_dir().join(format!("pager-ro-{}.db", std::process::id()));
        {
            let pager = Pager::create(&path).unwrap();
            let id = pager.allocate();
            pager.write_page(id, &Page::zeroed()).unwrap();
        }
        let mut perms = std::fs::metadata(&path).unwrap().permissions();
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o444);
        std::fs::set_permissions(&path, perms).unwrap();

        // Read-only open still permits reads…
        let file = std::fs::OpenOptions::new().read(true).open(&path).unwrap();
        drop(file);
        if let Ok(pager) = Pager::open(&path) {
            // Some test environments run as root where 0o444 still allows
            // writes; only assert when the OS actually enforces it.
            let err = pager.write_page(PageId(0), &Page::zeroed());
            if err.is_err() {
                assert!(pager.read_page(PageId(0)).is_ok());
            }
        }
        let mut perms = std::fs::metadata(&path).unwrap().permissions();
        perms.set_mode(0o644);
        std::fs::set_permissions(&path, perms).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_resumes_high_water_mark() {
        let path = std::env::temp_dir().join(format!("pager-hwm-{}.db", std::process::id()));
        {
            let pager = Pager::create(&path).unwrap();
            for _ in 0..5 {
                let id = pager.allocate();
                pager.write_page(id, &Page::zeroed()).unwrap();
            }
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 5);
        assert_eq!(pager.allocate(), PageId(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_reset() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        pager.write_page(id, &Page::zeroed()).unwrap();
        pager.stats().reset();
        assert_eq!(pager.stats().writes(), 0);
    }
}
