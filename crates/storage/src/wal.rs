//! Append-only write-ahead log over the page substrate.
//!
//! The packed/frozen main tree is immutable between repacks, so dynamic
//! inserts buffer in a small in-memory delta tree (DESIGN.md §14). The
//! WAL is what makes those buffered writes durable: every logical write
//! is appended here and fsynced **before** it is acknowledged, and crash
//! recovery replays the log to rebuild the delta.
//!
//! # Format
//!
//! The log is a sequence of [`PageType::Wal`] pages written through any
//! [`PageStore`], so the pager's footer CRC covers every page and the
//! fault layer ([`FaultPager`](crate::FaultPager)) can torn-write or
//! crash any physical operation. Within a page's payload area:
//!
//! ```text
//! offset 0   u32  magic "WALP" (0x50_4C_41_57 LE)
//! offset 4   u64  sequence number of the first record in this page
//! offset 12  u16  record count
//! offset 14  records: (u32 len, len bytes) …
//! ```
//!
//! # Durability discipline
//!
//! * [`append`](Wal::append) rewrites the open **tail page** in place;
//!   nothing in it is acknowledged yet.
//! * [`sync`](Wal::sync) flushes to stable storage and then **closes**
//!   the tail page: subsequent appends start a fresh page. A page that
//!   holds acknowledged records is therefore never rewritten, so a torn
//!   write can only ever destroy unacknowledged tail records.
//! * [`Wal::open`] replays from page 0 and stops at the first page that
//!   is zeroed, fails its CRC, carries the wrong tag/magic, or breaks
//!   the sequence chain — the torn tail is truncated by positioning the
//!   next append there. Replay thus yields every acknowledged record
//!   plus possibly an intact-but-unacknowledged suffix, never a partial
//!   record.
//!
//! The `wal_crash_matrix` bench bin proves the discipline by crashing
//! every physical write under [`FaultPager`](crate::FaultPager) and
//! checking the replayed prefix.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PageType, PAYLOAD_SIZE};
use crate::pager::PageStore;

/// Bytes of per-page header inside the payload area (magic + seq + count).
const PAGE_HEADER: usize = 4 + 8 + 2;

/// Per-record framing overhead (length prefix).
const REC_HEADER: usize = 4;

/// Magic stamped at the start of every WAL page payload.
const WAL_MAGIC: u32 = 0x504C_4157; // "WALP" little-endian

/// Largest record payload a single WAL page can frame.
pub const WAL_RECORD_MAX: usize = PAYLOAD_SIZE - PAGE_HEADER - REC_HEADER;

/// An append-only, CRC-framed write-ahead log over a [`PageStore`].
///
/// Generic over the store so production code runs it on a
/// [`Pager`](crate::Pager) while crash tests run it on a
/// [`FaultPager`](crate::FaultPager) (via the blanket `&S: PageStore`
/// impl).
pub struct Wal<S: PageStore> {
    store: S,
    /// Page index the open tail occupies (next physical write target).
    tail_page: u32,
    /// Records accumulated in the open tail page (none acknowledged).
    tail: Vec<Vec<u8>>,
    /// Payload bytes consumed in the tail page (header included).
    tail_bytes: usize,
    /// Sequence number of the first record in the open tail page.
    tail_seq: u64,
    /// Total records appended (== next sequence number).
    next_seq: u64,
    /// Physical WAL page writes issued (tail rewrites included).
    pages_written: u64,
    /// `sync` calls issued.
    syncs: u64,
}

impl<S: PageStore> Wal<S> {
    /// Starts an empty log at page 0 of `store` (the store should be a
    /// fresh file; existing WAL pages are overwritten as the log grows).
    pub fn create(store: S) -> Wal<S> {
        Wal {
            store,
            tail_page: 0,
            tail: Vec::new(),
            tail_bytes: PAGE_HEADER,
            tail_seq: 0,
            next_seq: 0,
            pages_written: 0,
            syncs: 0,
        }
    }

    /// Opens an existing log, replaying every intact record in order.
    ///
    /// Returns the log positioned after the last intact page together
    /// with the replayed record payloads. The first zeroed, corrupt,
    /// mis-tagged, or out-of-sequence page ends the scan — that torn
    /// tail is logically truncated (the next append overwrites it). A
    /// corrupt page therefore never surfaces as an error here: it is
    /// exactly the crash residue recovery exists to discard.
    pub fn open(store: S) -> StorageResult<(Wal<S>, Vec<Vec<u8>>)> {
        let mut records = Vec::new();
        let mut seq: u64 = 0;
        let mut page_idx: u32 = 0;
        // No length limit needed: pages past EOF read back zeroed
        // (sparse-file semantics) and a zeroed page ends the chain.
        while page_idx < u32::MAX {
            let page = match store.read_page(PageId(page_idx)) {
                Ok(p) => p,
                // CRC mismatch (torn tail) or an I/O hiccup: stop replay.
                Err(_) => break,
            };
            match Self::decode_page(&page, seq) {
                Some(recs) => {
                    seq += recs.len() as u64;
                    records.extend(recs);
                    page_idx += 1;
                }
                None => break,
            }
        }
        let wal = Wal {
            store,
            tail_page: page_idx,
            tail: Vec::new(),
            tail_bytes: PAGE_HEADER,
            tail_seq: seq,
            next_seq: seq,
            pages_written: 0,
            syncs: 0,
        };
        Ok((wal, records))
    }

    /// Decodes one WAL page, or `None` if it is not the next intact page
    /// of the chain (zeroed, wrong tag/magic, wrong sequence, or a frame
    /// that overruns the payload).
    fn decode_page(page: &Page, expect_seq: u64) -> Option<Vec<Vec<u8>>> {
        if page.is_zeroed() || PageType::from_tag(page.tag()) != Some(PageType::Wal) {
            return None;
        }
        let buf = &page.bytes()[..PAYLOAD_SIZE];
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != WAL_MAGIC {
            return None;
        }
        let first_seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        if first_seq != expect_seq {
            return None;
        }
        let count = u16::from_le_bytes(buf[12..14].try_into().ok()?) as usize;
        let mut recs = Vec::with_capacity(count);
        let mut off = PAGE_HEADER;
        for _ in 0..count {
            if off + REC_HEADER > PAYLOAD_SIZE {
                return None;
            }
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().ok()?) as usize;
            off += REC_HEADER;
            if len > WAL_RECORD_MAX || off + len > PAYLOAD_SIZE {
                return None;
            }
            recs.push(buf[off..off + len].to_vec());
            off += len;
        }
        Some(recs)
    }

    /// Serializes the open tail into a sealed-tag page image.
    fn tail_image(&self) -> Page {
        let mut page = Page::zeroed();
        let buf = page.bytes_mut();
        buf[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        buf[4..12].copy_from_slice(&self.tail_seq.to_le_bytes());
        buf[12..14].copy_from_slice(&(self.tail.len() as u16).to_le_bytes());
        let mut off = PAGE_HEADER;
        for rec in &self.tail {
            buf[off..off + 4].copy_from_slice(&(rec.len() as u32).to_le_bytes());
            off += REC_HEADER;
            buf[off..off + rec.len()].copy_from_slice(rec);
            off += rec.len();
        }
        page.set_type(PageType::Wal);
        page
    }

    /// Closes the open tail page: subsequent appends go to a fresh page.
    fn close_tail(&mut self) {
        if !self.tail.is_empty() {
            self.tail_page += 1;
            self.tail.clear();
            self.tail_bytes = PAGE_HEADER;
            self.tail_seq = self.next_seq;
        }
    }

    /// Appends one record and writes the (open) tail page through the
    /// store. The record is **not** durable until [`sync`](Wal::sync)
    /// returns.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        if payload.len() > WAL_RECORD_MAX {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds max {}",
                    payload.len(),
                    WAL_RECORD_MAX
                ),
            )));
        }
        if self.tail_bytes + REC_HEADER + payload.len() > PAYLOAD_SIZE {
            // Tail page is full; it was already written with its final
            // contents by the previous append, so just roll over.
            self.close_tail();
        }
        self.tail.push(payload.to_vec());
        self.tail_bytes += REC_HEADER + payload.len();
        self.next_seq += 1;
        let image = self.tail_image();
        let res = self.store.write_page(PageId(self.tail_page), &image);
        if res.is_err() {
            // The record never became part of the persistent log; undo
            // the in-memory framing so a retry does not double-count.
            self.tail.pop();
            self.tail_bytes -= REC_HEADER + payload.len();
            self.next_seq -= 1;
        }
        self.pages_written += 1;
        res
    }

    /// Flushes to stable storage and closes the tail page, making every
    /// record appended so far acknowledged-durable. A page holding
    /// acknowledged records is never rewritten afterwards, so later torn
    /// writes cannot destroy them.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.store.sync()?;
        self.syncs += 1;
        self.close_tail();
        Ok(())
    }

    /// Total records appended over the log's lifetime (replayed ones
    /// included after [`open`](Wal::open)).
    pub fn record_count(&self) -> u64 {
        self.next_seq
    }

    /// WAL pages the log occupies (open tail included while non-empty).
    pub fn page_span(&self) -> u32 {
        self.tail_page + if self.tail.is_empty() { 0 } else { 1 }
    }

    /// Physical tail-page writes issued so far.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// `sync` calls issued so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }
}

impl<S: PageStore> std::fmt::Debug for Wal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.next_seq)
            .field("pages", &self.page_span())
            .field("syncs", &self.syncs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPager, FaultScript};
    use crate::pager::Pager;

    fn recs(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i}-{}", "x".repeat(i % 40)).into_bytes())
            .collect()
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        let data = recs(10);
        for r in &data {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.record_count(), 10);

        let (reopened, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, data);
        assert_eq!(reopened.record_count(), 10);
    }

    #[test]
    fn sync_closes_page_so_acked_records_are_never_rewritten() {
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        wal.append(b"first").unwrap();
        wal.sync().unwrap();
        let closed_span = wal.page_span();
        wal.append(b"second").unwrap();
        // The second record must live on a fresh page.
        assert_eq!(wal.page_span(), closed_span + 1);
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn records_spill_across_pages() {
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        let big = vec![0xAB; 1500];
        for _ in 0..10 {
            wal.append(&big).unwrap(); // 2 fit per page
        }
        wal.sync().unwrap();
        assert!(wal.page_span() >= 4, "span {}", wal.page_span());
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed.len(), 10);
        assert!(replayed.iter().all(|r| r == &big));
    }

    #[test]
    fn oversized_record_rejected() {
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        let err = wal.append(&vec![0u8; WAL_RECORD_MAX + 1]).unwrap_err();
        assert!(!err.is_corrupt());
        assert_eq!(wal.record_count(), 0);
        wal.append(&vec![0u8; WAL_RECORD_MAX]).unwrap();
    }

    #[test]
    fn empty_file_replays_empty() {
        let pager = Pager::temp().unwrap();
        let (wal, replayed) = Wal::open(&pager).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.record_count(), 0);
    }

    #[test]
    fn torn_tail_truncates_to_acknowledged_prefix() {
        let pager = Pager::temp().unwrap();
        {
            let mut wal = Wal::create(&pager);
            wal.append(b"acked-1").unwrap();
            wal.append(b"acked-2").unwrap();
            wal.sync().unwrap(); // page 0 closed + durable

            // Crash: the very next tail write (page 1) is torn.
            let script = FaultScript::new().on_write(1, FaultKind::TornWrite, true);
            let faulty = FaultPager::new(&pager, script);
            let mut wal2 = Wal {
                store: &faulty,
                tail_page: wal.tail_page,
                tail: Vec::new(),
                tail_bytes: PAGE_HEADER,
                tail_seq: wal.next_seq,
                next_seq: wal.next_seq,
                pages_written: 0,
                syncs: 0,
            };
            assert!(wal2.append(b"lost").is_err());
        }
        // Reopen cold: the torn page fails its CRC and is truncated.
        let (wal, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, vec![b"acked-1".to_vec(), b"acked-2".to_vec()]);
        assert_eq!(wal.record_count(), 2);
        // The log is usable again from the truncation point.
        let mut wal = wal;
        wal.append(b"after-recovery").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], b"after-recovery");
    }

    #[test]
    fn reopen_appends_to_fresh_page_after_intact_open_tail() {
        let pager = Pager::temp().unwrap();
        {
            let mut wal = Wal::create(&pager);
            wal.append(b"acked").unwrap();
            wal.sync().unwrap();
            wal.append(b"unacked-but-intact").unwrap();
            // No sync: crash here leaves page 1 intact on disk.
        }
        let (mut wal, replayed) = Wal::open(&pager).unwrap();
        // Intact unacknowledged suffix replays too (never a partial rec).
        assert_eq!(
            replayed,
            vec![b"acked".to_vec(), b"unacked-but-intact".to_vec()]
        );
        wal.append(b"next").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed.len(), 3);
    }

    #[test]
    fn failed_append_rolls_back_framing() {
        let pager = Pager::temp().unwrap();
        let script = FaultScript::new().on_write(2, FaultKind::FailWrite, false);
        let faulty = FaultPager::new(&pager, script);
        let mut wal = Wal::create(&faulty);
        wal.append(b"one").unwrap();
        assert!(wal.append(b"two").is_err());
        assert_eq!(wal.record_count(), 1);
        // Retry lands cleanly.
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn garbage_page_ends_replay_without_error() {
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        wal.append(b"good").unwrap();
        wal.sync().unwrap();
        // Stamp a sealed non-WAL page where the chain would continue.
        let mut rogue = Page::zeroed();
        rogue.bytes_mut()[0] = 0x99;
        rogue.set_type(PageType::Node);
        pager.write_page(PageId(1), &rogue).unwrap();
        let _ = pager.allocate();
        let _ = pager.allocate();
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, vec![b"good".to_vec()]);
    }

    #[test]
    fn sequence_break_ends_replay() {
        // Two valid WAL pages but the second repeats sequence 0 (stale
        // page from a recycled file): replay must stop after page 0.
        let pager = Pager::temp().unwrap();
        let mut wal = Wal::create(&pager);
        wal.append(b"a").unwrap();
        wal.sync().unwrap();
        let mut stale = Wal::create(&pager);
        stale.tail_page = 1; // misplaced page claiming seq 0
        stale.append(b"stale").unwrap();
        let (_, replayed) = Wal::open(&pager).unwrap();
        assert_eq!(replayed, vec![b"a".to_vec()]);
    }
}
