//! Two-slot (shadow) meta-page commit.
//!
//! A tree's meta page is its commit record: whoever it points at *is*
//! the tree. Overwriting a single meta page in place is not atomic — a
//! crash mid-`pwrite` tears it and loses the whole index. Instead both
//! page-resident trees keep **two** adjacent meta slots and alternate
//! between them, stamping each commit with a monotonically increasing
//! epoch:
//!
//! * commit epoch `e` writes slot `base + (e & 1)`, leaving the other
//!   slot — the previous commit — untouched;
//! * the data sync happens *before* the meta write (nodes must be
//!   durable before the meta points at them) and the meta sync after;
//! * open reads both slots and picks the one with the highest epoch whose
//!   page checksum and magic verify. A torn meta write therefore rolls
//!   back to the previous consistent tree instead of bricking the file.
//!
//! Slot layout (within the page payload):
//!
//! ```text
//! offset 0   u64  magic (per tree type)
//! offset 8   u64  epoch (≥ 1; 0 marks an empty slot)
//! offset 16  tree-specific fields
//! ```

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PageType, PAYLOAD_SIZE};
use crate::pager::PageStore;

/// Number of shadow slots (adjacent pages) a meta pair occupies.
pub const META_SLOTS: u32 = 2;

/// Offset of tree-specific fields within a meta slot payload.
pub const META_FIELDS: usize = 16;

/// Reads both slots of the pair at `base` and returns the newest one
/// that verifies (checksum ok, magic matches, epoch ≥ 1) together with
/// its epoch, or `None` when neither slot is usable.
///
/// A slot that fails its checksum — a torn meta write — is *skipped*,
/// not propagated: that is the roll-back-to-previous-commit path. Plain
/// I/O errors still propagate.
pub fn load_newest(
    store: &dyn PageStore,
    base: PageId,
    magic: u64,
) -> StorageResult<Option<(Page, u64)>> {
    let mut best: Option<(Page, u64)> = None;
    for slot in 0..META_SLOTS {
        let id = PageId(base.0 + slot);
        let page = match store.read_page(id) {
            Ok(p) => p,
            Err(StorageError::Corrupt { .. }) => continue,
            Err(e) => return Err(e),
        };
        let b = page.bytes();
        if u64::from_le_bytes(b[0..8].try_into().expect("8")) != magic {
            continue;
        }
        let epoch = u64::from_le_bytes(b[8..16].try_into().expect("8"));
        if epoch == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|&(_, e)| epoch > e) {
            best = Some((page, epoch));
        }
    }
    Ok(best)
}

/// Commits a meta record with the given `epoch` into the slot pair at
/// `base`: data sync → write the alternating slot → meta sync.
///
/// `fill` receives the tree-specific field region (payload bytes from
/// [`META_FIELDS`]) of a zeroed page.
pub fn commit(
    store: &dyn PageStore,
    base: PageId,
    magic: u64,
    epoch: u64,
    ty: PageType,
    fill: impl FnOnce(&mut [u8]),
) -> StorageResult<()> {
    debug_assert!(epoch >= 1, "epoch 0 marks an empty slot");
    let mut page = Page::zeroed();
    let bytes = page.bytes_mut();
    bytes[0..8].copy_from_slice(&magic.to_le_bytes());
    bytes[8..16].copy_from_slice(&epoch.to_le_bytes());
    fill(&mut bytes[META_FIELDS..PAYLOAD_SIZE]);
    page.set_type(ty);

    // Barrier: everything the meta record points at must be durable
    // before the record itself is.
    store.sync()?;
    let slot = PageId(base.0 + (epoch & 1) as u32);
    store.write_page(slot, &page)?;
    store.sync()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    const MAGIC: u64 = 0x5445_5354_4D45_5441; // "TESTMETA"

    fn setup() -> Pager {
        let pager = Pager::temp().unwrap();
        pager.allocate();
        pager.allocate();
        pager
    }

    #[test]
    fn empty_pair_loads_none() {
        let pager = setup();
        assert!(load_newest(&pager, PageId(0), MAGIC).unwrap().is_none());
    }

    #[test]
    fn commit_then_load_roundtrip() {
        let pager = setup();
        commit(&pager, PageId(0), MAGIC, 1, PageType::Meta, |b| b[0] = 0xAB).unwrap();
        let (page, epoch) = load_newest(&pager, PageId(0), MAGIC).unwrap().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(page.bytes()[META_FIELDS], 0xAB);
    }

    #[test]
    fn newer_epoch_wins_and_slots_alternate() {
        let pager = setup();
        commit(&pager, PageId(0), MAGIC, 1, PageType::Meta, |b| b[0] = 1).unwrap();
        commit(&pager, PageId(0), MAGIC, 2, PageType::Meta, |b| b[0] = 2).unwrap();
        let (page, epoch) = load_newest(&pager, PageId(0), MAGIC).unwrap().unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(page.bytes()[META_FIELDS], 2);
        // Slot pages differ: epoch 1 in slot 1, epoch 2 in slot 0.
        let s0 = pager.read_page(PageId(0)).unwrap();
        let s1 = pager.read_page(PageId(1)).unwrap();
        assert_eq!(u64::from_le_bytes(s0.bytes()[8..16].try_into().unwrap()), 2);
        assert_eq!(u64::from_le_bytes(s1.bytes()[8..16].try_into().unwrap()), 1);
    }

    #[test]
    fn torn_slot_rolls_back_to_previous_epoch() {
        let pager = setup();
        commit(&pager, PageId(0), MAGIC, 1, PageType::Meta, |b| b[0] = 1).unwrap();
        commit(&pager, PageId(0), MAGIC, 2, PageType::Meta, |b| b[0] = 2).unwrap();
        // Tear the epoch-2 slot (slot 0) with a partial garbage write.
        let mut garbage = Page::zeroed();
        garbage.bytes_mut()[..64].copy_from_slice(&[0xFF; 64]);
        pager
            .write_partial(PageId(0), &garbage, crate::page::PAGE_SIZE / 2)
            .unwrap();
        let (page, epoch) = load_newest(&pager, PageId(0), MAGIC).unwrap().unwrap();
        assert_eq!(epoch, 1, "must fall back to the surviving slot");
        assert_eq!(page.bytes()[META_FIELDS], 1);
    }

    #[test]
    fn wrong_magic_ignored() {
        let pager = setup();
        commit(&pager, PageId(0), MAGIC, 1, PageType::Meta, |_| {}).unwrap();
        assert!(load_newest(&pager, PageId(0), MAGIC ^ 1).unwrap().is_none());
    }
}
