//! R-tree node ⇄ page serialization.
//!
//! Fixed little-endian layout, one node per page (the paper's
//! node-fills-a-block organization):
//!
//! ```text
//! offset 0   u32  level          (0 = leaf)
//! offset 4   u32  entry count
//! offset 8   entries, 40 bytes each:
//!            f64 min_x, f64 min_y, f64 max_x, f64 max_y, u64 child
//! ```
//!
//! `child` holds an [`ItemId`] in leaves and a [`PageId`] (zero-extended)
//! in internal nodes — exactly the paper's `POINTER` field, "interpreted
//! as pointers to other R-tree nodes if CLASS is non_leaf and to database
//! tuples if CLASS is leaf".
//!
//! [`encode`] tags the page as [`PageType::Node`]; [`decode`] validates
//! the tag and structural bounds and reports violations as an error
//! string (the storage layers wrap it into
//! [`StorageError::Corrupt`](crate::StorageError::Corrupt) with the page
//! id attached). The page-level CRC is the pager's job.

use crate::page::{Page, PageId, PageType, PAYLOAD_SIZE};
use rtree_geom::Rect;
use rtree_index::ItemId;

/// Bytes per serialized entry.
pub const ENTRY_SIZE: usize = 40;
/// Bytes of node header.
pub const HEADER_SIZE: usize = 8;
/// Maximum entries a page can hold — the natural "disk branching factor"
/// (102 with 4 KiB pages and the 8-byte checksum footer).
pub const MAX_ENTRIES_PER_PAGE: usize = (PAYLOAD_SIZE - HEADER_SIZE) / ENTRY_SIZE;

/// Sanity bound on node levels; real trees at branching ~100 are depth
/// ≤ 10 even at billions of items, so anything larger is corruption.
const MAX_LEVEL: u32 = 64;

/// A decoded on-disk entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskEntry {
    /// Bounding rectangle.
    pub mbr: Rect,
    /// Child page (internal) or item id (leaf), per the node's level.
    pub child: u64,
}

/// A decoded on-disk node.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskNode {
    /// Height above the leaves (0 = leaf).
    pub level: u32,
    /// The node's entries.
    pub entries: Vec<DiskEntry>,
}

impl DiskNode {
    /// `true` if this node's entries point at items.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Child as a page id (internal nodes).
    pub fn child_page(&self, i: usize) -> PageId {
        debug_assert!(!self.is_leaf());
        PageId(u32::try_from(self.entries[i].child).expect("page id fits u32"))
    }

    /// Child as an item id (leaf nodes).
    pub fn child_item(&self, i: usize) -> ItemId {
        debug_assert!(self.is_leaf());
        ItemId(self.entries[i].child)
    }
}

/// Serializes a node into a page and tags it as [`PageType::Node`].
///
/// # Panics
///
/// Panics if the node has more than [`MAX_ENTRIES_PER_PAGE`] entries.
pub fn encode(node: &DiskNode, page: &mut Page) {
    assert!(
        node.entries.len() <= MAX_ENTRIES_PER_PAGE,
        "{} entries exceed page capacity {}",
        node.entries.len(),
        MAX_ENTRIES_PER_PAGE
    );
    let bytes = page.bytes_mut();
    bytes[0..4].copy_from_slice(&node.level.to_le_bytes());
    bytes[4..8].copy_from_slice(&(node.entries.len() as u32).to_le_bytes());
    for (i, e) in node.entries.iter().enumerate() {
        let at = HEADER_SIZE + i * ENTRY_SIZE;
        bytes[at..at + 8].copy_from_slice(&e.mbr.min_x.to_le_bytes());
        bytes[at + 8..at + 16].copy_from_slice(&e.mbr.min_y.to_le_bytes());
        bytes[at + 16..at + 24].copy_from_slice(&e.mbr.max_x.to_le_bytes());
        bytes[at + 24..at + 32].copy_from_slice(&e.mbr.max_y.to_le_bytes());
        bytes[at + 32..at + 40].copy_from_slice(&e.child.to_le_bytes());
    }
    page.set_type(PageType::Node);
}

/// Deserializes a node from a page, validating the page-type tag and
/// structural bounds. Returns the corruption reason on failure.
pub fn decode(page: &Page) -> Result<DiskNode, String> {
    let tag = page.tag();
    // `Free` (0) is accepted: an allocated-but-never-written page reads
    // as all zeroes, which decodes as an empty leaf.
    if tag != PageType::Node as u8 && tag != PageType::Free as u8 {
        return Err(format!("expected node page, found tag {tag}"));
    }
    let bytes = page.bytes();
    let level = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if count > MAX_ENTRIES_PER_PAGE {
        return Err(format!(
            "entry count {count} exceeds page capacity {MAX_ENTRIES_PER_PAGE}"
        ));
    }
    if level > MAX_LEVEL {
        return Err(format!("implausible node level {level}"));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_SIZE + i * ENTRY_SIZE;
        let f = |o: usize| f64::from_le_bytes(bytes[at + o..at + o + 8].try_into().expect("8"));
        entries.push(DiskEntry {
            mbr: Rect::new(f(0), f(8), f(16), f(24)),
            child: u64::from_le_bytes(bytes[at + 32..at + 40].try_into().expect("8")),
        });
    }
    Ok(DiskNode { level, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node(level: u32, n: usize) -> DiskNode {
        DiskNode {
            level,
            entries: (0..n)
                .map(|i| DiskEntry {
                    mbr: Rect::new(i as f64, -(i as f64), i as f64 + 0.5, i as f64 + 1.25),
                    child: 1000 + i as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip_leaf() {
        let node = sample_node(0, 7);
        let mut page = Page::zeroed();
        encode(&node, &mut page);
        assert_eq!(page.tag(), PageType::Node as u8);
        assert_eq!(decode(&page).unwrap(), node);
    }

    #[test]
    fn roundtrip_internal_full_page() {
        let node = sample_node(3, MAX_ENTRIES_PER_PAGE);
        let mut page = Page::zeroed();
        encode(&node, &mut page);
        let back = decode(&page).unwrap();
        assert_eq!(back, node);
        assert!(!back.is_leaf());
        assert_eq!(back.child_page(0), PageId(1000));
    }

    #[test]
    fn roundtrip_empty_node() {
        let node = DiskNode {
            level: 0,
            entries: vec![],
        };
        let mut page = Page::zeroed();
        encode(&node, &mut page);
        assert_eq!(decode(&page).unwrap(), node);
    }

    #[test]
    fn zeroed_page_decodes_as_empty_leaf() {
        let node = decode(&Page::zeroed()).unwrap();
        assert!(node.is_leaf());
        assert!(node.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed page capacity")]
    fn overflow_rejected() {
        let node = sample_node(0, MAX_ENTRIES_PER_PAGE + 1);
        encode(&node, &mut Page::zeroed());
    }

    #[test]
    fn corrupt_count_rejected_not_panicking() {
        let mut page = Page::zeroed();
        encode(&sample_node(0, 3), &mut page);
        page.bytes_mut()[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&page).unwrap_err();
        assert!(err.contains("entry count"), "{err}");
    }

    #[test]
    fn corrupt_level_rejected() {
        let mut page = Page::zeroed();
        encode(&sample_node(0, 1), &mut page);
        page.bytes_mut()[0..4].copy_from_slice(&9999u32.to_le_bytes());
        assert!(decode(&page).unwrap_err().contains("level"));
    }

    #[test]
    fn wrong_page_type_rejected() {
        let mut page = Page::zeroed();
        encode(&sample_node(0, 1), &mut page);
        page.set_type(PageType::Meta);
        assert!(decode(&page).unwrap_err().contains("tag"));
    }

    #[test]
    fn capacity_is_paper_scale() {
        // 4 KiB pages must give a branching factor of ~100 even with the
        // 8-byte checksum footer (8 + 102·40 = 4088 = PAYLOAD_SIZE).
        assert_eq!(MAX_ENTRIES_PER_PAGE, 102);
        const { assert!(HEADER_SIZE + MAX_ENTRIES_PER_PAGE * ENTRY_SIZE <= PAYLOAD_SIZE) }
    }

    #[test]
    fn leaf_child_is_item() {
        let node = sample_node(0, 2);
        assert_eq!(node.child_item(1), ItemId(1001));
    }
}
