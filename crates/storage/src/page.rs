//! Fixed-size disk pages with a checksummed footer.
//!
//! Every page reserves its last 8 bytes for a footer:
//!
//! ```text
//! offset PAGE_SIZE-8   u8   page-type tag (see [`PageType`])
//! offset PAGE_SIZE-7   [u8; 3] reserved (zero)
//! offset PAGE_SIZE-4   u32  CRC-32 over bytes [0, PAGE_SIZE-4)
//! ```
//!
//! The tag is set by whoever encodes the page (node codec, meta
//! writers); the CRC is stamped by the pager on every physical write and
//! verified on every physical read, so a torn write, bit rot, or a
//! misdirected read surfaces as a typed corruption error instead of a
//! garbage decode. A **fully zeroed** page is exempt: it is the
//! "never written" state (sparse-file semantics) and always verifies.

use crate::crc::crc32;
use std::fmt;

/// Size of one logical disk block. 4 KiB is the conventional choice; with
/// the [`codec`](crate::codec) entry layout this yields a branching
/// factor of ~100 — the "fill a logical disk block" configuration of §3.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the end of every page for the tag + CRC footer.
pub const FOOTER_SIZE: usize = 8;

/// Bytes available to page payloads (node codec, meta fields).
pub const PAYLOAD_SIZE: usize = PAGE_SIZE - FOOTER_SIZE;

/// Offset of the page-type tag byte.
pub const TYPE_OFFSET: usize = PAGE_SIZE - 8;

/// Offset of the little-endian CRC-32 field.
pub const CRC_OFFSET: usize = PAGE_SIZE - 4;

/// What a page holds; stored in the footer tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Never written / freed (all-zero pages read as this).
    Free = 0,
    /// A serialized R-tree node ([`codec`](crate::codec)).
    Node = 1,
    /// A [`DiskRTree`](crate::DiskRTree) meta slot.
    Meta = 2,
    /// A [`PagedRTree`](crate::PagedRTree) meta slot.
    DynMeta = 3,
    /// A write-ahead-log page ([`wal`](crate::wal)).
    Wal = 4,
    /// An external-pack spill-run page (the `rtree-extpack` crate).
    Spill = 5,
}

impl PageType {
    /// Decodes a tag byte, or `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<PageType> {
        match tag {
            0 => Some(PageType::Free),
            1 => Some(PageType::Node),
            2 => Some(PageType::Meta),
            3 => Some(PageType::DynMeta),
            4 => Some(PageType::Wal),
            5 => Some(PageType::Spill),
            _ => None,
        }
    }
}

/// Identifier of a page within a [`Pager`](crate::Pager) file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the backing file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One in-memory page image.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            bytes: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("size"),
        }
    }

    /// Read access to the raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Write access to the raw bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// `true` if every byte is zero (the "never written" state).
    pub fn is_zeroed(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// The footer's page-type tag byte (raw).
    #[inline]
    pub fn tag(&self) -> u8 {
        self.bytes[TYPE_OFFSET]
    }

    /// Sets the footer's page-type tag.
    #[inline]
    pub fn set_type(&mut self, ty: PageType) {
        self.bytes[TYPE_OFFSET] = ty as u8;
    }

    /// Stamps the footer CRC over the current contents. Called by the
    /// pager on every physical write.
    pub fn seal(&mut self) {
        let crc = crc32(&self.bytes[..CRC_OFFSET]);
        self.bytes[CRC_OFFSET..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verifies the footer CRC. A fully zeroed page passes (it was never
    /// written). Returns the failure reason on mismatch.
    pub fn verify(&self) -> Result<(), String> {
        let stored = u32::from_le_bytes(self.bytes[CRC_OFFSET..].try_into().expect("4 bytes"));
        let computed = crc32(&self.bytes[..CRC_OFFSET]);
        if stored == computed {
            return Ok(());
        }
        if self.is_zeroed() {
            return Ok(());
        }
        Err(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} (tag {})",
            self.tag()
        ))
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert!(p.is_zeroed());
    }

    #[test]
    fn page_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[17] = 0xAB;
        assert_eq!(p.bytes()[17], 0xAB);
        assert!(!p.is_zeroed());
    }

    #[test]
    fn zeroed_page_verifies() {
        assert!(Page::zeroed().verify().is_ok());
    }

    #[test]
    fn sealed_page_verifies_and_flip_fails() {
        let mut p = Page::zeroed();
        p.bytes_mut()[100] = 0x42;
        p.set_type(PageType::Node);
        p.seal();
        assert!(p.verify().is_ok());
        p.bytes_mut()[100] ^= 0x01;
        let err = p.verify().unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn unsealed_nonzero_page_fails_verify() {
        let mut p = Page::zeroed();
        p.bytes_mut()[0] = 1;
        assert!(p.verify().is_err());
    }

    #[test]
    fn footer_does_not_overlap_payload() {
        assert_eq!(PAYLOAD_SIZE, 4088);
        const { assert!(TYPE_OFFSET >= PAYLOAD_SIZE) }
        assert_eq!(CRC_OFFSET + 4, PAGE_SIZE);
    }

    #[test]
    fn type_tag_roundtrip() {
        let mut p = Page::zeroed();
        p.set_type(PageType::DynMeta);
        assert_eq!(PageType::from_tag(p.tag()), Some(PageType::DynMeta));
        assert_eq!(PageType::from_tag(250), None);
    }
}
