//! Fixed-size disk pages.

use std::fmt;

/// Size of one logical disk block. 4 KiB is the conventional choice; with
/// the [`codec`](crate::codec) entry layout this yields a branching
/// factor of ~100 — the "fill a logical disk block" configuration of §3.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`Pager`](crate::Pager) file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the backing file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One in-memory page image.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            bytes: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("size"),
        }
    }

    /// Read access to the raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Write access to the raw bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn page_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[17] = 0xAB;
        assert_eq!(p.bytes()[17], 0xAB);
    }
}
