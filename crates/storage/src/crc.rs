//! CRC-32 (IEEE 802.3) used for page checksums.
//!
//! Table-driven, table built at compile time — no external crate, per
//! the workspace's offline-build constraint.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE polynomial, init/final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0u8; 4096];
        data[100] = 0x55;
        let base = crc32(&data);
        for bit in 0..8 {
            data[2000] ^= 1 << bit;
            assert_ne!(crc32(&data), base, "bit {bit} undetected");
            data[2000] ^= 1 << bit;
        }
        assert_eq!(crc32(&data), base);
    }

    #[test]
    fn zeros_are_not_fixed_point() {
        // An all-zero payload must not checksum to zero, so a page of
        // zeroes with a zero CRC field is distinguishable from a sealed
        // page (the pager special-cases fully zeroed pages instead).
        assert_ne!(crc32(&[0u8; 4092]), 0);
    }
}
