//! CRC-32 (IEEE 802.3) used for page checksums.
//!
//! Slice-by-8: eight 256-entry tables built at compile time let the hot
//! loop fold eight bytes per iteration instead of one — no external
//! crate, per the workspace's offline-build constraint, and the same
//! polynomial/init/final-xor as the classic byte-at-a-time form, so
//! every checksum value is unchanged. Page-sized inputs (4 KiB) are the
//! common case: the external packer seals and verifies every spill and
//! node page, so checksum throughput sits directly on the bulk-load
//! critical path.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // Table k maps a byte processed k positions early: one more table
    // lookup in place of eight shift/xor rounds.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (IEEE polynomial, init/final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic byte-at-a-time form, kept as the reference the
    /// sliced implementation must agree with on every input.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn matches_bytewise_reference_at_every_alignment() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 + 7) as u8).collect();
        for start in 0..9 {
            for end in [
                start,
                start + 1,
                start + 7,
                start + 8,
                start + 63,
                data.len(),
            ] {
                let slice = &data[start..end.max(start)];
                assert_eq!(
                    crc32(slice),
                    crc32_bytewise(slice),
                    "start {start} len {}",
                    slice.len()
                );
            }
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0u8; 4096];
        data[100] = 0x55;
        let base = crc32(&data);
        for bit in 0..8 {
            data[2000] ^= 1 << bit;
            assert_ne!(crc32(&data), base, "bit {bit} undetected");
            data[2000] ^= 1 << bit;
        }
        assert_eq!(crc32(&data), base);
    }

    #[test]
    fn zeros_are_not_fixed_point() {
        // An all-zero payload must not checksum to zero, so a page of
        // zeroes with a zero CRC field is distinguishable from a sealed
        // page (the pager special-cases fully zeroed pages instead).
        assert_ne!(crc32(&[0u8; 4092]), 0);
    }
}
