//! LRU buffer pool over a [`PageStore`].
//!
//! "R-trees … are better in dealing with paging and disk I/O buffering"
//! (§1): this pool is where that claim is measured. Fixed number of
//! frames, strict LRU eviction, write-back of dirty frames, and hit/miss
//! counters that the `io_sweep` experiment reads.
//!
//! # Durability contract
//!
//! Callers that care about their writes must end with an explicit
//! [`close`](BufferPool::close) (or [`flush`](BufferPool::flush)) and
//! handle the error. `Drop` is only a best-effort backstop: it attempts
//! a flush and **logs** failures to stderr — it cannot report them, so
//! relying on it silently trades away write errors.

use crate::error::StorageResult;
use crate::page::{Page, PageId};
use crate::pager::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back.
    pub writebacks: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 for no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    last_used: u64,
}

struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    tick: u64,
    stats: BufferStats,
}

/// A fixed-capacity LRU buffer pool.
pub struct BufferPool<'a> {
    store: &'a dyn PageStore,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl<'a> BufferPool<'a> {
    /// Creates a pool of `capacity` frames over `store`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(store: &'a dyn PageStore, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            capacity,
            state: Mutex::new(PoolState {
                frames: Vec::with_capacity(capacity),
                map: HashMap::with_capacity(capacity),
                tick: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Runs `f` with read access to the page, faulting it in if needed.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&Page) -> T) -> StorageResult<T> {
        let mut st = self.state.lock();
        let frame = self.fault(&mut st, id)?;
        Ok(f(&st.frames[frame].page))
    }

    /// Runs `f` with write access to the page, marking the frame dirty.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> StorageResult<T> {
        let mut st = self.state.lock();
        let frame = self.fault(&mut st, id)?;
        st.frames[frame].dirty = true;
        Ok(f(&mut st.frames[frame].page))
    }

    /// Writes all dirty frames back to the store.
    ///
    /// On error, frames successfully written so far are marked clean; the
    /// failing frame stays dirty, so a later retry (or `close`) writes it
    /// again.
    pub fn flush(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        for frame in st.frames.iter_mut() {
            if frame.dirty {
                self.store.write_page(frame.page_id, &frame.page)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes all dirty frames and consumes the pool, reporting any
    /// write failure. This is the durability-correct way to finish with
    /// a pool; dropping one without closing leaves only the best-effort
    /// backstop.
    pub fn close(self) -> StorageResult<()> {
        self.flush()
        // Drop then finds no dirty frames and is a no-op.
    }

    /// `true` if any frame holds unwritten changes.
    pub fn has_dirty_frames(&self) -> bool {
        self.state.lock().frames.iter().any(|f| f.dirty)
    }

    /// The underlying page store.
    pub fn store(&self) -> &'a dyn PageStore {
        self.store
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.state.lock().stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&self) {
        self.state.lock().stats = BufferStats::default();
    }

    /// Drops every cached frame (writing back dirty ones), so the next
    /// accesses all miss — used between experiment phases for cold-cache
    /// measurements.
    pub fn clear(&self) -> StorageResult<()> {
        self.flush()?;
        let mut st = self.state.lock();
        st.frames.clear();
        st.map.clear();
        Ok(())
    }

    /// Ensures `id` is resident and returns its frame index.
    fn fault(&self, st: &mut PoolState, id: PageId) -> StorageResult<usize> {
        st.tick += 1;
        let tick = st.tick;
        if let Some(&idx) = st.map.get(&id) {
            st.stats.hits += 1;
            st.frames[idx].last_used = tick;
            return Ok(idx);
        }
        st.stats.misses += 1;
        let page = self.store.read_page(id)?;
        let idx = if st.frames.len() < self.capacity {
            st.frames.push(Frame {
                page_id: id,
                page,
                dirty: false,
                last_used: tick,
            });
            st.frames.len() - 1
        } else {
            // Strict LRU victim.
            let victim = st
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            st.stats.evictions += 1;
            if st.frames[victim].dirty {
                self.store
                    .write_page(st.frames[victim].page_id, &st.frames[victim].page)?;
                st.stats.writebacks += 1;
            }
            let old = st.frames[victim].page_id;
            st.map.remove(&old);
            st.frames[victim] = Frame {
                page_id: id,
                page,
                dirty: false,
                last_used: tick,
            };
            victim
        };
        st.map.insert(id, idx);
        Ok(idx)
    }
}

impl Drop for BufferPool<'_> {
    /// Best-effort backstop only: attempts a flush and logs failures.
    /// Use [`close`](BufferPool::close) to actually observe write errors.
    fn drop(&mut self) {
        if let Err(e) = self.flush() {
            eprintln!("warning: BufferPool dropped with unflushed dirty frames: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    #[test]
    fn hit_after_first_access() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let pool = BufferPool::new(&pager, 4);
        pool.with_page(id, |_| ()).unwrap();
        pool.with_page(id, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn writes_survive_eviction() {
        let pager = Pager::temp().unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| pager.allocate()).collect();
        let pool = BufferPool::new(&pager, 2);
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| p.bytes_mut()[0] = i as u8 + 1)
                .unwrap();
        }
        // Re-read everything; early pages were evicted and written back.
        for (i, &id) in ids.iter().enumerate() {
            let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        let s = pool.stats();
        assert!(s.evictions > 0);
        assert!(s.writebacks > 0);
    }

    #[test]
    fn dirty_eviction_survives_cold_reopen() {
        // Fill a 2-frame pool, dirty a page, force its eviction purely by
        // pool pressure, then reopen the file cold: the evicted dirty
        // frame must have been written back at eviction time — the
        // durability path in `fault()`.
        let path = std::env::temp_dir().join(format!(
            "pool-evict-durability-{}-{:?}.db",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let pager = Pager::create(&path).unwrap();
            let a = pager.allocate();
            let b = pager.allocate();
            let c = pager.allocate();
            let pool = BufferPool::new(&pager, 2);
            pool.with_page_mut(a, |p| p.bytes_mut()[7] = 0xA7).unwrap();
            // Pressure: b fills the second frame, c evicts a (LRU).
            pool.with_page(b, |_| ()).unwrap();
            pool.with_page(c, |_| ()).unwrap();
            let s = pool.stats();
            assert_eq!(s.evictions, 1, "a must have been evicted");
            assert_eq!(s.writebacks, 1, "the evicted dirty frame was written");
            // Deliberately neither flush nor close: no dirty frames are
            // left (asserted above via `writebacks`), so the write-back
            // at eviction alone must have persisted the page.
            assert!(!pool.has_dirty_frames());
        }
        {
            let pager = Pager::open(&path).unwrap();
            let page = pager.read_page(PageId(0)).unwrap();
            assert_eq!(page.bytes()[7], 0xA7, "evicted dirty page lost");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pager = Pager::temp().unwrap();
        let a = pager.allocate();
        let b = pager.allocate();
        let c = pager.allocate();
        let pool = BufferPool::new(&pager, 2);
        pool.with_page(a, |_| ()).unwrap(); // a
        pool.with_page(b, |_| ()).unwrap(); // a b
        pool.with_page(a, |_| ()).unwrap(); // b a (a recent)
        pool.with_page(c, |_| ()).unwrap(); // evicts b
        pool.reset_stats();
        pool.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(pool.stats().hits, 1);
        pool.with_page(b, |_| ()).unwrap(); // miss
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        {
            let pool = BufferPool::new(&pager, 2);
            pool.with_page_mut(id, |p| p.bytes_mut()[5] = 42).unwrap();
            pool.flush().unwrap();
        }
        assert_eq!(pager.read_page(id).unwrap().bytes()[5], 42);
    }

    #[test]
    fn close_reports_success() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let pool = BufferPool::new(&pager, 2);
        pool.with_page_mut(id, |p| p.bytes_mut()[5] = 42).unwrap();
        pool.close().unwrap();
        assert_eq!(pager.read_page(id).unwrap().bytes()[5], 42);
    }

    #[test]
    fn flush_failure_is_reported_and_retryable() {
        // Regression: BufferPool used to swallow flush errors in Drop
        // (`let _ = self.flush()`). With an injected write failure, the
        // explicit flush/close path must surface the error, keep the
        // frame dirty, and let a retry complete the write.
        use crate::fault::{FaultKind, FaultPager, FaultScript};
        let pager = Pager::temp().unwrap();
        let script = FaultScript::new().on_write(1, FaultKind::FailWrite, false);
        let faulty = FaultPager::new(&pager, script);
        let id = faulty.allocate();
        let pool = BufferPool::new(&faulty, 2);
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = 9).unwrap();
        assert!(pool.flush().is_err(), "flush must report the write failure");
        assert!(pool.has_dirty_frames(), "failed frame must stay dirty");
        // The fault was one-shot: the retry inside close() succeeds.
        pool.close().unwrap();
        assert_eq!(pager.read_page(id).unwrap().bytes()[0], 9);
    }

    #[test]
    fn close_reports_persistent_write_failure() {
        use crate::fault::{FaultKind, FaultPager, FaultScript};
        let pager = Pager::temp().unwrap();
        // crash=true: every write after the first failure also fails, so
        // not even the Drop backstop can save the page — close() is the
        // only place the caller learns about the loss.
        let script = FaultScript::new().on_write(1, FaultKind::FailWrite, true);
        let faulty = FaultPager::new(&pager, script);
        let id = faulty.allocate();
        let pool = BufferPool::new(&faulty, 2);
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = 9).unwrap();
        assert!(pool.close().is_err(), "close must surface the flush error");
        assert_eq!(
            pager.read_page(id).unwrap().bytes()[0],
            0,
            "nothing reached the file"
        );
    }

    #[test]
    fn clear_forces_cold_cache() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        let pool = BufferPool::new(&pager, 2);
        pool.with_page(id, |_| ()).unwrap();
        pool.clear().unwrap();
        pool.reset_stats();
        pool.with_page(id, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let pager = Pager::temp().unwrap();
        let _ = BufferPool::new(&pager, 0);
    }
}
