//! A page-resident R-tree image with I/O-counted search.
//!
//! [`DiskRTree::store`] lays an in-memory [`RTree`] out one node per page
//! (children before parents, so a packed tree's pages are written in a
//! single sequential pass); searches then run through a [`BufferPool`],
//! so the `A` metric of Table 1 becomes real page requests and the pool's
//! hit/miss counters quantify "dealing with paging and disk I/O
//! buffering" (§1). Used by the EXT-5 `io_sweep` experiment.
//!
//! # Crash safety
//!
//! [`store_with_meta`](DiskRTree::store_with_meta) is a full commit:
//! node pages are appended to fresh pages (never overwriting a previous
//! image), synced, and only then does the two-slot meta pair (pages
//! 0–1, see [`meta`](crate::meta)) flip to the new epoch. A crash at any
//! point during the store leaves the previously committed tree — or, on
//! a fresh file, a cleanly detected "no valid meta" state — never a
//! half-written index that parses.

use crate::buffer::BufferPool;
use crate::codec::{self, DiskEntry, DiskNode, MAX_ENTRIES_PER_PAGE};
use crate::error::{StorageError, StorageResult};
use crate::meta::{self, META_SLOTS};
use crate::page::{Page, PageId, PageType};
use crate::pager::PageStore;
use rtree_geom::{Point, Rect};
use rtree_index::{
    Child, FrozenChild, FrozenRTree, ItemId, NodeId, RTree, RTreeConfig, SearchStats,
};
use std::io;

/// Identifies a [`DiskRTree`] meta slot ("PRTREE85" little-endian).
const META_MAGIC: u64 = u64::from_le_bytes(*b"PRTREE85");

/// Handle to an R-tree stored in a page file.
#[derive(Debug, Clone, Copy)]
pub struct DiskRTree {
    root: PageId,
    depth: u32,
    len: usize,
    pages: u32,
    epoch: u64,
}

impl DiskRTree {
    /// Writes `tree` into `store`, one node per page, and returns the
    /// handle. No meta record is written — the image is unreachable
    /// after a reopen until [`store_with_meta`](DiskRTree::store_with_meta)
    /// commits one.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, or if the tree's branching factor exceeds
    /// [`MAX_ENTRIES_PER_PAGE`].
    pub fn store(tree: &RTree, store: &dyn PageStore) -> StorageResult<DiskRTree> {
        if tree.config().max_entries > MAX_ENTRIES_PER_PAGE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "branching factor {} exceeds page capacity {}",
                    tree.config().max_entries,
                    MAX_ENTRIES_PER_PAGE
                ),
            )
            .into());
        }
        let mut pages_written = 0u32;
        let root = Self::store_node(tree, tree.root(), store, &mut pages_written)?;
        Ok(DiskRTree {
            root,
            depth: tree.depth(),
            len: tree.len(),
            pages: pages_written,
            epoch: 0,
        })
    }

    /// Like [`store`](DiskRTree::store), but commits the image through
    /// the two-slot **meta pair** on pages 0–1 so the tree can be
    /// [`open`](DiskRTree::open)ed from the file later.
    ///
    /// On a fresh file the meta pair is allocated first (pages 0 and 1).
    /// On a file holding an earlier image this *replaces* it atomically:
    /// new nodes are appended to fresh pages, and the meta flip is the
    /// commit point — a crash anywhere during the store leaves the old
    /// tree intact (the old image's pages are not reclaimed; this is a
    /// rebuild-and-swap, not an in-place update).
    pub fn store_with_meta(tree: &RTree, store: &dyn PageStore) -> StorageResult<DiskRTree> {
        // Reserve the meta pair on a fresh (or degenerate) file.
        while store.page_count() < META_SLOTS {
            store.allocate();
        }
        let prev_epoch = meta::load_newest(store, PageId(0), META_MAGIC)?
            .map(|(_, e)| e)
            .unwrap_or(0);
        let disk = Self::store(tree, store)?;
        let epoch = prev_epoch + 1;
        meta::commit(store, PageId(0), META_MAGIC, epoch, PageType::Meta, |b| {
            b[0..4].copy_from_slice(&disk.root.0.to_le_bytes());
            b[4..8].copy_from_slice(&disk.depth.to_le_bytes());
            b[8..16].copy_from_slice(&(disk.len as u64).to_le_bytes());
            b[16..20].copy_from_slice(&disk.pages.to_le_bytes());
        })?;
        Ok(DiskRTree { epoch, ..disk })
    }

    /// Commits a node image that was written into `store` by an
    /// *external* builder (the `rtree-extpack` streaming packer), which
    /// emits fully packed pages itself instead of serializing an
    /// in-memory [`RTree`].
    ///
    /// The caller must have reserved the meta pair (pages 0–1) before
    /// writing any node page, and `root`/`depth`/`len`/`pages` must
    /// describe the emitted image. The meta flip performed here is the
    /// commit point: node pages are synced first (inside
    /// [`meta::commit`]), so a crash before the flip leaves the previous
    /// tree — or a cleanly detected "no valid meta" state — never a
    /// half-written index that opens.
    pub fn commit_external(
        store: &dyn PageStore,
        root: PageId,
        depth: u32,
        len: usize,
        pages: u32,
    ) -> StorageResult<DiskRTree> {
        while store.page_count() < META_SLOTS {
            store.allocate();
        }
        let prev_epoch = meta::load_newest(store, PageId(0), META_MAGIC)?
            .map(|(_, e)| e)
            .unwrap_or(0);
        let epoch = prev_epoch + 1;
        meta::commit(store, PageId(0), META_MAGIC, epoch, PageType::Meta, |b| {
            b[0..4].copy_from_slice(&root.0.to_le_bytes());
            b[4..8].copy_from_slice(&depth.to_le_bytes());
            b[8..16].copy_from_slice(&(len as u64).to_le_bytes());
            b[16..20].copy_from_slice(&pages.to_le_bytes());
        })?;
        Ok(DiskRTree {
            root,
            depth,
            len,
            pages,
            epoch,
        })
    }

    /// Reopens a tree previously committed by
    /// [`store_with_meta`](DiskRTree::store_with_meta), reading the meta
    /// pair whose first slot is `meta` (page 0 by default) and picking
    /// the newest slot that verifies.
    pub fn open(store: &dyn PageStore, meta: PageId) -> StorageResult<DiskRTree> {
        let Some((page, epoch)) = meta::load_newest(store, meta, META_MAGIC)? else {
            return Err(StorageError::corrupt(
                meta,
                "no valid packed-rtree meta slot (wrong magic or torn write)",
            ));
        };
        let b = &page.bytes()[meta::META_FIELDS..];
        Ok(DiskRTree {
            root: PageId(u32::from_le_bytes(b[0..4].try_into().expect("4"))),
            depth: u32::from_le_bytes(b[4..8].try_into().expect("4")),
            len: u64::from_le_bytes(b[8..16].try_into().expect("8")) as usize,
            pages: u32::from_le_bytes(b[16..20].try_into().expect("4")),
            epoch,
        })
    }

    /// [`open`](DiskRTree::open) with the conventional meta pair at
    /// pages 0–1.
    pub fn open_default(store: &dyn PageStore) -> StorageResult<DiskRTree> {
        Self::open(store, PageId(0))
    }

    fn store_node(
        tree: &RTree,
        id: NodeId,
        store: &dyn PageStore,
        pages_written: &mut u32,
    ) -> StorageResult<PageId> {
        let node = tree.node(id);
        let mut entries = Vec::with_capacity(node.len());
        for e in &node.entries {
            let child = match e.child {
                Child::Item(item) => item.0,
                Child::Node(c) => {
                    // Post-order: children are on disk before the parent.
                    Self::store_node(tree, c, store, pages_written)?.0 as u64
                }
            };
            entries.push(DiskEntry { mbr: e.mbr, child });
        }
        let page_id = store.allocate();
        let mut page = Page::zeroed();
        codec::encode(
            &DiskNode {
                level: node.level,
                entries,
            },
            &mut page,
        );
        store.write_page(page_id, &page)?;
        *pages_written += 1;
        Ok(page_id)
    }

    /// Root page of the stored tree.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Depth (root level), as in Table 1's `D`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the tree occupies (= node count).
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Commit epoch this handle was stored/opened at (0 for an
    /// uncommitted [`store`](DiskRTree::store)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The paper's `SEARCH` against the disk image: descend entries
    /// intersecting `window`, report leaf entries within it. Each node
    /// touched is one page request through `pool`.
    pub fn search_within(
        &self,
        pool: &BufferPool<'_>,
        window: &Rect,
        stats: &mut SearchStats,
    ) -> StorageResult<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = read_node(pool, pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.covered_by(window) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.intersects(window) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// The Table 1 point query against the disk image.
    pub fn point_query(
        &self,
        pool: &BufferPool<'_>,
        p: Point,
        stats: &mut SearchStats,
    ) -> StorageResult<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = read_node(pool, pid)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Decodes every reachable node, breadth-first from the root.
    ///
    /// This is the raw material for external structure checking (the
    /// differential oracle's `validate_deep`): each entry pairs the page
    /// id with its decoded [`DiskNode`], so a validator can rebuild the
    /// parent/child graph without this crate hardcoding any invariant
    /// policy.
    pub fn dump_nodes(&self, pool: &BufferPool<'_>) -> StorageResult<Vec<(PageId, DiskNode)>> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(pid) = queue.pop_front() {
            let node = read_node(pool, pid)?;
            if !node.is_leaf() {
                for i in 0..node.entries.len() {
                    queue.push_back(node.child_page(i));
                }
            }
            out.push((pid, node));
        }
        Ok(out)
    }

    /// Materializes the page image as an in-memory
    /// [`FrozenRTree`] — the cache-conscious SoA layout — reading every
    /// reachable page through `pool` once. The disk image does not record
    /// its packing configuration, so the caller supplies the `config` the
    /// tree was built with.
    pub fn freeze(&self, pool: &BufferPool<'_>, config: RTreeConfig) -> StorageResult<FrozenRTree> {
        frozen_from_dump(
            self.dump_nodes(pool)?,
            config,
            self.depth,
            self.len,
            self.root,
        )
    }
}

/// Compiles a `dump_nodes` result into a [`FrozenRTree`]; shared by
/// [`DiskRTree::freeze`] and [`PagedRTree::freeze`](crate::PagedRTree::freeze).
pub(crate) fn frozen_from_dump(
    dump: Vec<(PageId, DiskNode)>,
    config: RTreeConfig,
    depth: u32,
    len: usize,
    root: PageId,
) -> StorageResult<FrozenRTree> {
    let nodes: std::collections::HashMap<u64, DiskNode> =
        dump.into_iter().map(|(pid, n)| (pid.0 as u64, n)).collect();
    Ok(FrozenRTree::from_nodes(
        config,
        depth,
        len,
        root.0 as u64,
        |key| {
            let node = &nodes[&key];
            let leaf = node.is_leaf();
            let entries = node
                .entries
                .iter()
                .map(|e| {
                    let child = if leaf {
                        FrozenChild::Item(ItemId(e.child))
                    } else {
                        FrozenChild::Node(e.child)
                    };
                    (e.mbr, child)
                })
                .collect();
            (node.level, entries)
        },
    ))
}

/// Decodes a node page through the pool, attaching the page id to any
/// corruption reason.
fn read_node(pool: &BufferPool<'_>, id: PageId) -> StorageResult<DiskNode> {
    pool.with_page(id, codec::decode)?
        .map_err(|reason| StorageError::corrupt(id, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use rtree_index::RTreeConfig;

    fn sample_tree(n: u64) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i * 37 % 1009) as f64;
            let y = (i * 91 % 997) as f64;
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i));
        }
        t
    }

    #[test]
    fn store_and_search_matches_memory() {
        let tree = sample_tree(300);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        assert_eq!(disk.pages() as usize, tree.node_count());
        assert_eq!(disk.depth(), tree.depth());
        assert_eq!(disk.len(), 300);

        let pool = BufferPool::new(&pager, 64);
        let window = Rect::new(100.0, 100.0, 600.0, 600.0);
        let mut mem_stats = SearchStats::default();
        let mut disk_stats = SearchStats::default();
        let mut expect = tree.search_within(&window, &mut mem_stats);
        let mut got = disk.search_within(&pool, &window, &mut disk_stats).unwrap();
        expect.sort();
        got.sort();
        assert_eq!(got, expect);
        // Same pruning → same nodes visited.
        assert_eq!(mem_stats.nodes_visited, disk_stats.nodes_visited);
    }

    #[test]
    fn point_query_matches_memory() {
        let tree = sample_tree(200);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let pool = BufferPool::new(&pager, 32);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        for i in 0..50u64 {
            let p = Point::new((i * 37 % 1009) as f64, (i * 91 % 997) as f64);
            let mut a = tree.point_query(p, &mut s1);
            let mut b = disk.point_query(&pool, p, &mut s2).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(s1.nodes_visited, s2.nodes_visited);
    }

    #[test]
    fn small_pool_misses_large_pool_hits() {
        let tree = sample_tree(500);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let queries: Vec<Point> = (0..200)
            .map(|i| Point::new((i * 13 % 1009) as f64, (i * 29 % 997) as f64))
            .collect();

        let run = |cap: usize| {
            let pool = BufferPool::new(&pager, cap);
            let mut stats = SearchStats::default();
            for &q in &queries {
                disk.point_query(&pool, q, &mut stats).unwrap();
            }
            pool.stats().hit_ratio()
        };
        let small = run(2);
        let large = run(tree.node_count() + 8);
        assert!(
            large > small,
            "bigger pool should hit more: {large} vs {small}"
        );
        assert!(large > 0.8, "full-tree pool should mostly hit: {large}");
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree = RTree::new(RTreeConfig::PAPER);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let pool = BufferPool::new(&pager, 4);
        let mut stats = SearchStats::default();
        let hits = disk
            .search_within(&pool, &Rect::new(0.0, 0.0, 1.0, 1.0), &mut stats)
            .unwrap();
        assert!(hits.is_empty());
        assert!(disk.is_empty());
    }

    #[test]
    fn persistence_roundtrip_through_file() {
        let path =
            std::env::temp_dir().join(format!("packed-rtree-persist-{}.db", std::process::id()));
        let tree = sample_tree(250);
        let expected_window = Rect::new(100.0, 100.0, 500.0, 500.0);
        let expected = {
            let mut s = SearchStats::default();
            let mut v = tree.search_within(&expected_window, &mut s);
            v.sort();
            v
        };
        {
            let pager = Pager::create(&path).unwrap();
            let disk = DiskRTree::store_with_meta(&tree, &pager).unwrap();
            // Meta pair occupies pages 0–1; nodes are written
            // children-first, so the root lands on the last page.
            assert_eq!(disk.root(), PageId(tree.node_count() as u32 + 1));
            assert_eq!(disk.epoch(), 1);
        }
        // Reopen the file cold and search through the meta pair.
        {
            let pager = Pager::open(&path).unwrap();
            let disk = DiskRTree::open_default(&pager).unwrap();
            assert_eq!(disk.len(), 250);
            assert_eq!(disk.depth(), tree.depth());
            let pool = BufferPool::new(&pager, 32);
            let mut s = SearchStats::default();
            let mut got = disk.search_within(&pool, &expected_window, &mut s).unwrap();
            got.sort();
            assert_eq!(got, expected);
            // New allocations go past the existing pages.
            let fresh = pager.allocate();
            assert!(fresh.0 as usize > tree.node_count() + 1);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_replaces_image_atomically() {
        let pager = Pager::temp().unwrap();
        let a = sample_tree(100);
        let b = sample_tree(220);
        let disk_a = DiskRTree::store_with_meta(&a, &pager).unwrap();
        assert_eq!(disk_a.epoch(), 1);
        let disk_b = DiskRTree::store_with_meta(&b, &pager).unwrap();
        assert_eq!(disk_b.epoch(), 2);
        // Open resolves to the newest commit.
        let reopened = DiskRTree::open_default(&pager).unwrap();
        assert_eq!(reopened.len(), 220);
        assert_eq!(reopened.root(), disk_b.root());
        // The new image was appended past the old one.
        assert!(disk_b.root().0 > disk_a.root().0);
    }

    #[test]
    fn open_rejects_garbage_meta() {
        let pager = Pager::temp().unwrap();
        for _ in 0..2 {
            let id = pager.allocate();
            pager.write_page(id, &Page::zeroed()).unwrap();
        }
        let err = DiskRTree::open(&pager, PageId(0)).unwrap_err();
        assert!(err.is_corrupt(), "{err:?}");
    }

    #[test]
    fn oversized_branching_rejected() {
        let t = RTree::new(RTreeConfig::with_branching(200));
        let pager = Pager::temp().unwrap();
        assert!(DiskRTree::store(&t, &pager).is_err());
    }
}
