//! A page-resident R-tree image with I/O-counted search.
//!
//! [`DiskRTree::store`] lays an in-memory [`RTree`] out one node per page
//! (children before parents, so a packed tree's pages are written in a
//! single sequential pass); searches then run through a [`BufferPool`],
//! so the `A` metric of Table 1 becomes real page requests and the pool's
//! hit/miss counters quantify "dealing with paging and disk I/O
//! buffering" (§1). Used by the EXT-5 `io_sweep` experiment.

use crate::buffer::BufferPool;
use crate::codec::{self, DiskEntry, DiskNode, MAX_ENTRIES_PER_PAGE};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use rtree_geom::{Point, Rect};
use rtree_index::{Child, ItemId, NodeId, RTree, SearchStats};
use std::io;

/// Identifies a [`DiskRTree`] meta page ("PRTREE85" little-endian).
const META_MAGIC: u64 = u64::from_le_bytes(*b"PRTREE85");

/// Handle to an R-tree stored in a page file.
#[derive(Debug, Clone, Copy)]
pub struct DiskRTree {
    root: PageId,
    depth: u32,
    len: usize,
    pages: u32,
}

impl DiskRTree {
    /// Writes `tree` into `pager`, one node per page, and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, or if the tree's branching factor exceeds
    /// [`MAX_ENTRIES_PER_PAGE`].
    pub fn store(tree: &RTree, pager: &Pager) -> io::Result<DiskRTree> {
        if tree.config().max_entries > MAX_ENTRIES_PER_PAGE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "branching factor {} exceeds page capacity {}",
                    tree.config().max_entries,
                    MAX_ENTRIES_PER_PAGE
                ),
            ));
        }
        let mut pages_written = 0u32;
        let root = Self::store_node(tree, tree.root(), pager, &mut pages_written)?;
        Ok(DiskRTree {
            root,
            depth: tree.depth(),
            len: tree.len(),
            pages: pages_written,
        })
    }

    /// Like [`store`](DiskRTree::store), but also writes a **meta page**
    /// recording root/depth/length so the tree can be
    /// [`open`](DiskRTree::open)ed from the file later. The meta page is
    /// allocated first, so on a fresh pager it is page 0.
    pub fn store_with_meta(tree: &RTree, pager: &Pager) -> io::Result<DiskRTree> {
        let meta_page = pager.allocate();
        let disk = Self::store(tree, pager)?;
        let mut page = Page::zeroed();
        let b = page.bytes_mut();
        b[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&disk.root.0.to_le_bytes());
        b[12..16].copy_from_slice(&disk.depth.to_le_bytes());
        b[16..24].copy_from_slice(&(disk.len as u64).to_le_bytes());
        b[24..28].copy_from_slice(&disk.pages.to_le_bytes());
        pager.write_page(meta_page, &page)?;
        pager.sync()?;
        Ok(disk)
    }

    /// Reopens a tree previously written by
    /// [`store_with_meta`](DiskRTree::store_with_meta), reading the meta
    /// page (page 0 by default).
    pub fn open(pager: &Pager, meta_page: PageId) -> io::Result<DiskRTree> {
        let page = pager.read_page(meta_page)?;
        let b = page.bytes();
        let magic = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        if magic != META_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a packed-rtree meta page",
            ));
        }
        Ok(DiskRTree {
            root: PageId(u32::from_le_bytes(b[8..12].try_into().expect("4"))),
            depth: u32::from_le_bytes(b[12..16].try_into().expect("4")),
            len: u64::from_le_bytes(b[16..24].try_into().expect("8")) as usize,
            pages: u32::from_le_bytes(b[24..28].try_into().expect("4")),
        })
    }

    /// [`open`](DiskRTree::open) with the conventional meta page 0.
    pub fn open_default(pager: &Pager) -> io::Result<DiskRTree> {
        Self::open(pager, PageId(0))
    }

    fn store_node(
        tree: &RTree,
        id: NodeId,
        pager: &Pager,
        pages_written: &mut u32,
    ) -> io::Result<PageId> {
        let node = tree.node(id);
        let mut entries = Vec::with_capacity(node.len());
        for e in &node.entries {
            let child = match e.child {
                Child::Item(item) => item.0,
                Child::Node(c) => {
                    // Post-order: children are on disk before the parent.
                    Self::store_node(tree, c, pager, pages_written)?.0 as u64
                }
            };
            entries.push(DiskEntry { mbr: e.mbr, child });
        }
        let page_id = pager.allocate();
        let mut page = Page::zeroed();
        codec::encode(
            &DiskNode {
                level: node.level,
                entries,
            },
            &mut page,
        );
        pager.write_page(page_id, &page)?;
        *pages_written += 1;
        Ok(page_id)
    }

    /// Root page of the stored tree.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Depth (root level), as in Table 1's `D`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the tree occupies (= node count).
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// The paper's `SEARCH` against the disk image: descend entries
    /// intersecting `window`, report leaf entries within it. Each node
    /// touched is one page request through `pool`.
    pub fn search_within(
        &self,
        pool: &BufferPool<'_>,
        window: &Rect,
        stats: &mut SearchStats,
    ) -> io::Result<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = pool.with_page(pid, codec::decode)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.covered_by(window) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.intersects(window) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// The Table 1 point query against the disk image.
    pub fn point_query(
        &self,
        pool: &BufferPool<'_>,
        p: Point,
        stats: &mut SearchStats,
    ) -> io::Result<Vec<ItemId>> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            stats.nodes_visited += 1;
            let node = pool.with_page(pid, codec::decode)?;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stats.items_reported += 1;
                        out.push(node.child_item(i));
                    }
                }
            } else {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.mbr.contains_point(p) {
                        stack.push(node.child_page(i));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_index::RTreeConfig;

    fn sample_tree(n: u64) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i * 37 % 1009) as f64;
            let y = (i * 91 % 997) as f64;
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i));
        }
        t
    }

    #[test]
    fn store_and_search_matches_memory() {
        let tree = sample_tree(300);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        assert_eq!(disk.pages() as usize, tree.node_count());
        assert_eq!(disk.depth(), tree.depth());
        assert_eq!(disk.len(), 300);

        let pool = BufferPool::new(&pager, 64);
        let window = Rect::new(100.0, 100.0, 600.0, 600.0);
        let mut mem_stats = SearchStats::default();
        let mut disk_stats = SearchStats::default();
        let mut expect = tree.search_within(&window, &mut mem_stats);
        let mut got = disk.search_within(&pool, &window, &mut disk_stats).unwrap();
        expect.sort();
        got.sort();
        assert_eq!(got, expect);
        // Same pruning → same nodes visited.
        assert_eq!(mem_stats.nodes_visited, disk_stats.nodes_visited);
    }

    #[test]
    fn point_query_matches_memory() {
        let tree = sample_tree(200);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let pool = BufferPool::new(&pager, 32);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        for i in 0..50u64 {
            let p = Point::new((i * 37 % 1009) as f64, (i * 91 % 997) as f64);
            let mut a = tree.point_query(p, &mut s1);
            let mut b = disk.point_query(&pool, p, &mut s2).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(s1.nodes_visited, s2.nodes_visited);
    }

    #[test]
    fn small_pool_misses_large_pool_hits() {
        let tree = sample_tree(500);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let queries: Vec<Point> = (0..200)
            .map(|i| Point::new((i * 13 % 1009) as f64, (i * 29 % 997) as f64))
            .collect();

        let run = |cap: usize| {
            let pool = BufferPool::new(&pager, cap);
            let mut stats = SearchStats::default();
            for &q in &queries {
                disk.point_query(&pool, q, &mut stats).unwrap();
            }
            pool.stats().hit_ratio()
        };
        let small = run(2);
        let large = run(tree.node_count() + 8);
        assert!(
            large > small,
            "bigger pool should hit more: {large} vs {small}"
        );
        assert!(large > 0.8, "full-tree pool should mostly hit: {large}");
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree = RTree::new(RTreeConfig::PAPER);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let pool = BufferPool::new(&pager, 4);
        let mut stats = SearchStats::default();
        let hits = disk
            .search_within(&pool, &Rect::new(0.0, 0.0, 1.0, 1.0), &mut stats)
            .unwrap();
        assert!(hits.is_empty());
        assert!(disk.is_empty());
    }

    #[test]
    fn persistence_roundtrip_through_file() {
        let path =
            std::env::temp_dir().join(format!("packed-rtree-persist-{}.db", std::process::id()));
        let tree = sample_tree(250);
        let expected_window = Rect::new(100.0, 100.0, 500.0, 500.0);
        let expected = {
            let mut s = SearchStats::default();
            let mut v = tree.search_within(&expected_window, &mut s);
            v.sort();
            v
        };
        {
            let pager = Pager::create(&path).unwrap();
            let disk = DiskRTree::store_with_meta(&tree, &pager).unwrap();
            // Meta page is 0; nodes are written children-first, so the
            // root lands on the last page.
            assert_eq!(disk.root(), PageId(tree.node_count() as u32));
        }
        // Reopen the file cold and search through the meta page.
        {
            let pager = Pager::open(&path).unwrap();
            let disk = DiskRTree::open_default(&pager).unwrap();
            assert_eq!(disk.len(), 250);
            assert_eq!(disk.depth(), tree.depth());
            let pool = BufferPool::new(&pager, 32);
            let mut s = SearchStats::default();
            let mut got = disk.search_within(&pool, &expected_window, &mut s).unwrap();
            got.sort();
            assert_eq!(got, expected);
            // New allocations go past the existing pages.
            let fresh = pager.allocate();
            assert!(fresh.0 as usize > tree.node_count());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_garbage_meta() {
        let pager = Pager::temp().unwrap();
        let id = pager.allocate();
        pager.write_page(id, &Page::zeroed()).unwrap();
        let err = DiskRTree::open(&pager, id).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_branching_rejected() {
        let t = RTree::new(RTreeConfig::with_branching(200));
        let pager = Pager::temp().unwrap();
        assert!(DiskRTree::store(&t, &pager).is_err());
    }
}
