//! Storage-layer error type.
//!
//! The disk substrate distinguishes plain I/O failures (the OS said no)
//! from **corruption**: a page that was read back but whose checksum or
//! structure does not match what was written. Corruption is surfaced as
//! [`StorageError::Corrupt`] with the offending page id, never as a
//! garbage decode or a panic — the fail-loudly half of the crash-safety
//! model (DESIGN.md §9).

use crate::page::PageId;
use std::fmt;
use std::io;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors from the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying file I/O failed.
    Io(io::Error),
    /// A page was read back in a state that fails validation: checksum
    /// mismatch, wrong page-type tag, or an impossible structure.
    Corrupt {
        /// The page that failed validation.
        page: PageId,
        /// Human-readable description of what failed.
        reason: String,
    },
}

impl StorageError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(page: PageId, reason: impl Into<String>) -> Self {
        StorageError::Corrupt {
            page,
            reason: reason.into(),
        }
    }

    /// `true` if this error is a detected-corruption error (as opposed to
    /// a plain I/O failure).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StorageError::Corrupt { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { page, reason } => {
                write!(f, "corrupt page {page}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Lossy conversion so callers living in `io::Result` land (bench bins,
/// examples) can keep using `?`: corruption maps to
/// [`io::ErrorKind::InvalidData`].
impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(e) => e,
            StorageError::Corrupt { page, reason } => io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt page {page}: {reason}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_display_names_page() {
        let e = StorageError::corrupt(PageId(7), "bad checksum");
        assert!(e.to_string().contains("p7"));
        assert!(e.is_corrupt());
    }

    #[test]
    fn io_roundtrips_kind() {
        let e = StorageError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(!e.is_corrupt());
        let back: io::Error = e.into();
        assert_eq!(back.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn corrupt_maps_to_invalid_data() {
        let e = StorageError::corrupt(PageId(3), "x");
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
    }
}
