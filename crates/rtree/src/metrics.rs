//! Whole-tree quality metrics: the `C`, `O`, `D`, `N` columns of Table 1.

use crate::tree::RTree;
use rtree_geom::rectset;

/// The structural quality measures defined in §3.1 and reported in
/// Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeMetrics {
    /// **Coverage** `C`: "the total area of all the MBRs of all leaf
    /// R-tree nodes" — the sum of leaf-node MBR areas.
    pub coverage: f64,
    /// **Overlap** `O`: "the total area contained within two or more leaf
    /// MBRs" — exact area of the ≥2-covered region.
    pub overlap: f64,
    /// Depth `D`: edges from root to leaf (0 when the root is a leaf).
    pub depth: u32,
    /// Total node count `N`, including the root.
    pub nodes: usize,
    /// Indexed items `J` (for convenience; the paper's independent
    /// variable).
    pub items: usize,
}

impl TreeMetrics {
    /// Computes all metrics for a tree.
    pub fn measure(tree: &RTree) -> TreeMetrics {
        let leaf_mbrs = tree.leaf_mbrs();
        TreeMetrics {
            coverage: rectset::total_area(&leaf_mbrs),
            overlap: rectset::overlap_area(&leaf_mbrs),
            depth: tree.depth(),
            nodes: tree.node_count(),
            items: tree.len(),
        }
    }
}

impl RTree {
    /// Convenience: [`TreeMetrics::measure`] on `self`.
    pub fn metrics(&self) -> TreeMetrics {
        TreeMetrics::measure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::node::ItemId;
    use rtree_geom::{Point, Rect};

    #[test]
    fn empty_tree_metrics() {
        let t = RTree::new(RTreeConfig::PAPER);
        let m = t.metrics();
        assert_eq!(m.coverage, 0.0);
        assert_eq!(m.overlap, 0.0);
        assert_eq!(m.depth, 0);
        assert_eq!(m.nodes, 1);
        assert_eq!(m.items, 0);
    }

    #[test]
    fn single_leaf_coverage() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(Rect::new(0.0, 0.0, 2.0, 2.0), ItemId(0));
        t.insert(Rect::new(4.0, 0.0, 6.0, 2.0), ItemId(1));
        let m = t.metrics();
        // One leaf (the root) with MBR [0,6]x[0,2].
        assert_eq!(m.coverage, 12.0);
        assert_eq!(m.overlap, 0.0);
        assert_eq!(m.items, 2);
    }

    #[test]
    fn coverage_sums_leaf_areas() {
        // Force a split so there are 2+ leaves; coverage is the SUM of
        // leaf MBR areas even if they overlap.
        let mut t = RTree::new(RTreeConfig::PAPER);
        for (i, &(x, y)) in [
            (0.0, 0.0),
            (1.0, 1.0),
            (10.0, 10.0),
            (11.0, 11.0),
            (0.5, 0.5),
        ]
        .iter()
        .enumerate()
        {
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i as u64));
        }
        assert_eq!(t.depth(), 1);
        let leaf_sum: f64 = t.leaf_mbrs().iter().map(|r| r.area()).sum();
        assert_eq!(t.metrics().coverage, leaf_sum);
    }

    #[test]
    fn overlap_detected() {
        // Two leaves forced to overlap: insert two clusters of fat rects
        // that interleave.
        let mut t = RTree::new(RTreeConfig::new(2, 1, crate::SplitPolicy::Quadratic));
        t.insert(Rect::new(0.0, 0.0, 10.0, 10.0), ItemId(0));
        t.insert(Rect::new(20.0, 0.0, 30.0, 10.0), ItemId(1));
        t.insert(Rect::new(5.0, 0.0, 25.0, 10.0), ItemId(2));
        t.assert_valid();
        let m = t.metrics();
        if t.leaf_mbrs().len() >= 2 {
            // The middle rect straddles both clusters; leaves must overlap.
            assert!(m.overlap > 0.0, "expected overlap, got {m:?}");
        }
    }
}
