//! Human-readable dumps of tree structure, for debugging and the figure
//! reproductions.

use crate::node::Child;
use crate::tree::RTree;
use std::fmt::Write as _;

impl RTree {
    /// Indented outline of the tree: one line per node with level, id,
    /// MBR and entry count; leaf entries listed beneath.
    ///
    /// ```text
    /// n5 level=1 [0.000,11.000]x[0.000,11.000] (2 entries)
    ///   n0 level=0 [0.000,1.000]x[0.000,1.000] (3 entries)
    ///     #0 [0.000,0.000]x[0.000,0.000]
    ///     ...
    /// ```
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_rec(self.root(), 0, &mut out);
        out
    }

    fn dump_rec(&self, id: crate::node::NodeId, indent: usize, out: &mut String) {
        let node = self.node(id);
        let mbr = node
            .mbr()
            .map(|m| m.to_string())
            .unwrap_or_else(|| "<empty>".into());
        let _ = writeln!(
            out,
            "{:indent$}{id} level={} {mbr} ({} entries)",
            "",
            node.level,
            node.len(),
            indent = indent * 2
        );
        for e in &node.entries {
            match e.child {
                Child::Node(c) => self.dump_rec(c, indent + 1, out),
                Child::Item(item) => {
                    let _ = writeln!(
                        out,
                        "{:indent$}{item} {}",
                        "",
                        e.mbr,
                        indent = (indent + 1) * 2
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::node::ItemId;
    use rtree_geom::{Point, Rect};

    #[test]
    fn dump_contains_all_items_and_nodes() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..9u64 {
            t.insert(Rect::from_point(Point::new(i as f64, 0.0)), ItemId(i));
        }
        let dump = t.dump();
        for i in 0..9 {
            assert!(
                dump.contains(&format!("#{i} ")),
                "missing item {i}:\n{dump}"
            );
        }
        assert_eq!(dump.matches("level=").count(), t.node_count());
    }

    #[test]
    fn empty_dump_shows_empty_root() {
        let t = RTree::new(RTreeConfig::PAPER);
        assert!(t.dump().contains("<empty>"));
    }
}
