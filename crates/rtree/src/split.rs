//! Node splitting: Guttman's linear, quadratic, and exhaustive algorithms.
//!
//! A split receives the `M + 1` entries of an overflowing node and returns
//! two groups, each with at least `m` entries, chosen to keep total area
//! (and hence dead space) small. These are the "requirement (1)" splits of
//! §3.2 whose dead-space pathology (Figure 3.4c) motivates PACK.

use crate::config::{RTreeConfig, SplitPolicy};
use crate::node::Entry;
use rtree_geom::Rect;

/// Splits `entries` (length `M + 1`) into two groups per the configured
/// policy. Both groups are non-empty and respect the minimum fill.
pub(crate) fn split_entries(config: &RTreeConfig, entries: Vec<Entry>) -> (Vec<Entry>, Vec<Entry>) {
    split_rect_entries(config, entries, |e| e.mbr)
}

/// Splits any list of entries carrying MBRs — the same Guttman algorithms
/// the in-memory tree uses, exposed for page-resident trees and other
/// node layouts. `mbr_of` extracts each entry's rectangle.
///
/// # Panics
///
/// Panics (in debug builds) if `entries.len() ≤ M` or a policy produces
/// an illegal partition.
pub fn split_rect_entries<T>(
    config: &RTreeConfig,
    entries: Vec<T>,
    mbr_of: impl Fn(&T) -> Rect + Copy,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() > config.max_entries);
    let (a, b) = match config.split {
        SplitPolicy::Linear => linear_split(config, entries, mbr_of),
        SplitPolicy::Quadratic => quadratic_split(config, entries, mbr_of),
        SplitPolicy::Exhaustive => exhaustive_split(config, entries, mbr_of),
    };
    debug_assert!(a.len() >= config.min_entries && b.len() >= config.min_entries);
    debug_assert!(a.len() <= config.max_entries && b.len() <= config.max_entries);
    (a, b)
}

#[cfg(test)]
fn group_mbr(entries: &[Entry]) -> Rect {
    Rect::mbr_of_rects(entries.iter().map(|e| e.mbr)).expect("non-empty group")
}

/// Guttman's `LinearPickSeeds`: the pair with the greatest separation,
/// normalized by the spread on each dimension; remaining entries are
/// assigned in input order to the group needing the least enlargement.
fn linear_split<T>(
    config: &RTreeConfig,
    entries: Vec<T>,
    mbr_of: impl Fn(&T) -> Rect + Copy,
) -> (Vec<T>, Vec<T>) {
    let n = entries.len();
    // Per dimension: highest low side and lowest high side, plus spread.
    let (mut best_norm_sep, mut seed_a, mut seed_b) = (f64::NEG_INFINITY, 0, 1);
    for dim in 0..2 {
        let low = |r: &Rect| if dim == 0 { r.min_x } else { r.min_y };
        let high = |r: &Rect| if dim == 0 { r.max_x } else { r.max_y };
        let mut highest_low = (0usize, f64::NEG_INFINITY);
        let mut lowest_high = (0usize, f64::INFINITY);
        let mut min_low = f64::INFINITY;
        let mut max_high = f64::NEG_INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let r = mbr_of(e);
            let (l, h) = (low(&r), high(&r));
            if l > highest_low.1 {
                highest_low = (i, l);
            }
            if h < lowest_high.1 {
                lowest_high = (i, h);
            }
            min_low = min_low.min(l);
            max_high = max_high.max(h);
        }
        let spread = (max_high - min_low).max(f64::MIN_POSITIVE);
        let sep = (highest_low.1 - lowest_high.1) / spread;
        if sep > best_norm_sep && highest_low.0 != lowest_high.0 {
            best_norm_sep = sep;
            seed_a = lowest_high.0;
            seed_b = highest_low.0;
        }
    }
    if seed_a == seed_b {
        // All entries identical on both dimensions; any pair will do.
        seed_b = (seed_a + 1) % n;
    }
    distribute_by_enlargement(config, entries, seed_a, seed_b, mbr_of)
}

/// Guttman's quadratic `PickSeeds` + `PickNext`.
fn quadratic_split<T>(
    config: &RTreeConfig,
    entries: Vec<T>,
    mbr_of: impl Fn(&T) -> Rect + Copy,
) -> (Vec<T>, Vec<T>) {
    let n = entries.len();
    // PickSeeds: the pair that wastes the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let (ri, rj) = (mbr_of(&entries[i]), mbr_of(&entries[j]));
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut mbr_a = mbr_of(&entries[seed_a]);
    let mut mbr_b = mbr_of(&entries[seed_b]);
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    let mut rest: Vec<T> = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if i == seed_a {
            group_a.push(e);
        } else if i == seed_b {
            group_b.push(e);
        } else {
            rest.push(e);
        }
    }

    while !rest.is_empty() {
        // If one group must absorb everything to reach minimum fill, do it.
        if group_a.len() + rest.len() == config.min_entries {
            group_a.append(&mut rest);
            break;
        }
        if group_b.len() + rest.len() == config.min_entries {
            group_b.append(&mut rest);
            break;
        }
        // PickNext: the entry with the greatest preference difference.
        let (mut best_idx, mut best_diff) = (0, f64::NEG_INFINITY);
        for (i, e) in rest.iter().enumerate() {
            let r = mbr_of(e);
            let d1 = mbr_a.enlargement(&r);
            let d2 = mbr_b.enlargement(&r);
            let diff = (d1 - d2).abs();
            if diff > best_diff {
                best_diff = diff;
                best_idx = i;
            }
        }
        let e = rest.swap_remove(best_idx);
        let r = mbr_of(&e);
        let d1 = mbr_a.enlargement(&r);
        let d2 = mbr_b.enlargement(&r);
        // Resolve by enlargement, then area, then count.
        let to_a = if group_a.len() >= config.max_entries {
            false
        } else if group_b.len() >= config.max_entries || d1 < d2 {
            true
        } else if d2 < d1 {
            false
        } else if mbr_a.area() != mbr_b.area() {
            mbr_a.area() < mbr_b.area()
        } else {
            group_a.len() <= group_b.len()
        };
        if to_a {
            mbr_a = mbr_a.union(&r);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// Distributes non-seed entries (in input order) to the group whose MBR
/// needs the least enlargement — the cheap assignment Guttman pairs with
/// linear seed picking.
fn distribute_by_enlargement<T>(
    config: &RTreeConfig,
    entries: Vec<T>,
    seed_a: usize,
    seed_b: usize,
    mbr_of: impl Fn(&T) -> Rect + Copy,
) -> (Vec<T>, Vec<T>) {
    let mut mbr_a = mbr_of(&entries[seed_a]);
    let mut mbr_b = mbr_of(&entries[seed_b]);
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    let mut rest: Vec<T> = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if i == seed_a {
            group_a.push(e);
        } else if i == seed_b {
            group_b.push(e);
        } else {
            rest.push(e);
        }
    }
    let total = rest.len() + 2;
    for (k, e) in rest.into_iter().enumerate() {
        let r = mbr_of(&e);
        let remaining = total - 2 - k - 1;
        if group_a.len() + remaining + 1 == config.min_entries {
            mbr_a = mbr_a.union(&r);
            group_a.push(e);
            continue;
        }
        if group_b.len() + remaining + 1 == config.min_entries {
            mbr_b = mbr_b.union(&r);
            group_b.push(e);
            continue;
        }
        let to_a = if group_a.len() >= config.max_entries {
            false
        } else if group_b.len() >= config.max_entries {
            true
        } else {
            mbr_a.enlargement(&r) <= mbr_b.enlargement(&r)
        };
        if to_a {
            mbr_a = mbr_a.union(&r);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// Exhaustive split: enumerate all 2-partitions (via bitmask) honouring
/// minimum fill, keep the one minimizing total MBR area, breaking ties by
/// overlap between the halves.
fn exhaustive_split<T>(
    config: &RTreeConfig,
    entries: Vec<T>,
    mbr_of: impl Fn(&T) -> Rect + Copy,
) -> (Vec<T>, Vec<T>) {
    let n = entries.len();
    assert!(n <= 16, "exhaustive split limited to 16 entries");
    let mut best: Option<(f64, f64, u32)> = None;
    // Fix entry 0 in group A to halve the search space.
    for mask in 0u32..(1 << (n - 1)) {
        let mask = mask << 1; // entry 0 always in A (bit 0 = 0)
        let count_b = mask.count_ones() as usize;
        let count_a = n - count_b;
        if count_a < config.min_entries
            || count_b < config.min_entries
            || count_a > config.max_entries
            || count_b > config.max_entries
        {
            continue;
        }
        let mut mbr_a: Option<Rect> = None;
        let mut mbr_b: Option<Rect> = None;
        for (i, e) in entries.iter().enumerate() {
            let er = mbr_of(e);
            let target = if mask & (1 << i) == 0 {
                &mut mbr_a
            } else {
                &mut mbr_b
            };
            *target = Some(match target {
                Some(r) => r.union(&er),
                None => er,
            });
        }
        let (ra, rb) = (mbr_a.unwrap(), mbr_b.unwrap());
        let score = ra.area() + rb.area();
        let tie = ra.intersection_area(&rb);
        if best.is_none_or(|(s, t, _)| score < s || (score == s && tie < t)) {
            best = Some((score, tie, mask));
        }
    }
    let (_, _, mask) = best.expect("some legal partition exists");
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if mask & (1 << i) == 0 {
            group_a.push(e);
        } else {
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ItemId;
    use rtree_geom::Point;

    fn entries_at(points: &[(f64, f64)]) -> Vec<Entry> {
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Entry::item(Rect::from_point(Point::new(x, y)), ItemId(i as u64)))
            .collect()
    }

    fn check_partition(config: &RTreeConfig, before: &[Entry], a: &[Entry], b: &[Entry]) {
        assert_eq!(a.len() + b.len(), before.len());
        assert!(a.len() >= config.min_entries && b.len() >= config.min_entries);
        assert!(a.len() <= config.max_entries && b.len() <= config.max_entries);
        // Every original entry appears exactly once.
        let mut ids: Vec<u64> = a.iter().chain(b).map(|e| e.child.expect_item().0).collect();
        ids.sort_unstable();
        let mut expect: Vec<u64> = before.iter().map(|e| e.child.expect_item().0).collect();
        expect.sort_unstable();
        assert_eq!(ids, expect);
    }

    fn two_clusters() -> Vec<Entry> {
        entries_at(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (0.5, 0.5),
            (100.0, 100.0),
            (101.0, 99.0),
        ])
    }

    #[test]
    fn all_policies_produce_legal_partitions() {
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::Exhaustive,
        ] {
            let config = RTreeConfig::new(4, 2, policy);
            let entries = two_clusters();
            let (a, b) = split_entries(&config, entries.clone());
            check_partition(&config, &entries, &a, &b);
        }
    }

    #[test]
    fn clusters_separate_cleanly() {
        // Quadratic and exhaustive must put the far cluster in its own
        // group (linear may too, but its distribution is order-dependent).
        for policy in [SplitPolicy::Quadratic, SplitPolicy::Exhaustive] {
            let config = RTreeConfig::new(4, 2, policy);
            let (a, b) = split_entries(&config, two_clusters());
            let ra = group_mbr(&a);
            let rb = group_mbr(&b);
            assert_eq!(
                ra.intersection_area(&rb),
                0.0,
                "{policy:?} should separate distant clusters"
            );
        }
    }

    #[test]
    fn identical_entries_still_split_legally() {
        let config = RTreeConfig::new(4, 2, SplitPolicy::Linear);
        let entries = entries_at(&[(5.0, 5.0); 5]);
        let (a, b) = split_entries(&config, entries.clone());
        check_partition(&config, &entries, &a, &b);
        let config_q = RTreeConfig::new(4, 2, SplitPolicy::Quadratic);
        let (a, b) = split_entries(&config_q, entries.clone());
        check_partition(&config_q, &entries, &a, &b);
    }

    #[test]
    fn exhaustive_is_optimal_on_small_case() {
        // Unit squares at x = 0,1,2,10,11: optimal 2-partition by total
        // MBR area is {0,1,2} (area 3) + {10,11} (area 2).
        let config = RTreeConfig::new(4, 2, SplitPolicy::Exhaustive);
        let entries: Vec<Entry> = [0.0, 1.0, 2.0, 10.0, 11.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| Entry::item(Rect::new(x, 0.0, x + 1.0, 1.0), ItemId(i as u64)))
            .collect();
        let (a, b) = split_entries(&config, entries.clone());
        check_partition(&config, &entries, &a, &b);
        let total_area = group_mbr(&a).area() + group_mbr(&b).area();
        assert_eq!(total_area, 5.0);
    }

    #[test]
    fn min_fill_is_forced() {
        // Adversarial: one far outlier; with m=2 the outlier group must
        // still end up with 2 entries.
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::Exhaustive,
        ] {
            let config = RTreeConfig::new(4, 2, policy);
            let entries =
                entries_at(&[(0.0, 0.0), (0.1, 0.1), (0.2, 0.0), (0.3, 0.1), (99.0, 99.0)]);
            let (a, b) = split_entries(&config, entries.clone());
            check_partition(&config, &entries, &a, &b);
        }
    }

    #[test]
    fn larger_branching_factor_split() {
        let config = RTreeConfig::new(10, 4, SplitPolicy::Quadratic);
        let entries = entries_at(
            &(0..11)
                .map(|i| (i as f64 * 3.0, (i % 3) as f64))
                .collect::<Vec<_>>(),
        );
        let (a, b) = split_entries(&config, entries.clone());
        check_partition(&config, &entries, &a, &b);
    }
}
