//! Dynamic R-trees after Guttman (1984), instrumented with the metrics of
//! Roussopoulos & Leifker (SIGMOD 1985).
//!
//! This crate implements the paper's baseline and the shared machinery that
//! the PACK algorithm (in `packed-rtree-core`) builds on:
//!
//! * an arena node store mirroring the paper's
//!   `RTREE: array [1..MaxNodes] of NODE` declaration (§3);
//! * Guttman's **INSERT** (`ChooseLeaf` + `SplitNode` + `AdjustTree`) with
//!   three split policies — linear, quadratic, exhaustive (§3.2);
//! * **DELETE** (`FindLeaf` + `CondenseTree` with orphan re-insertion);
//! * **SEARCH** exactly as the paper's recursive procedure (§3.1): descend
//!   entries that `INTERSECTS` the target window, report leaf entries
//!   `WITHIN` it — plus intersection search, point queries (the Table 1
//!   workload) and branch-and-bound nearest-neighbour search;
//! * per-query [`SearchStats`] (nodes visited — the `A` column of Table 1)
//!   and whole-tree [`TreeMetrics`] (coverage `C`, overlap `O`, depth `D`,
//!   node count `N`);
//! * a bottom-up [`builder`] used by the packing algorithms;
//! * a structural [`validate`](RTree::validate) invariant checker used
//!   heavily by tests.
//!
//! The index maps rectangles to opaque [`ItemId`]s; callers own the actual
//! spatial objects ("leaf nodes of an R-tree contain pointers to tuples and
//! not the actual tuples themselves", §3).

#![warn(missing_docs)]
// The crate is `unsafe`-free except for the `core::arch` intrinsic
// calls inside `simd::x86` (which carries a module-scoped `allow`).
// Without the `simd` feature — or off x86_64 — the stronger `forbid`
// applies to the whole crate.
#![cfg_attr(
    not(all(feature = "simd", target_arch = "x86_64")),
    forbid(unsafe_code)
)]
#![cfg_attr(all(feature = "simd", target_arch = "x86_64"), deny(unsafe_code))]

pub mod ascii;
pub mod batch;
pub mod builder;
pub mod config;
mod delete;
pub mod frozen;
mod insert;
pub mod iter;
pub mod knn;
pub mod metrics;
pub mod node;
pub mod search;
pub(crate) mod simd;
pub mod split;
pub mod stats;
pub mod tree;

pub use batch::{BatchScratch, ItemBatches, NeighborBatches};
pub use builder::{BottomUpBuilder, ReservedRange};
pub use config::{RTreeConfig, SplitPolicy};
pub use frozen::{FrozenBuilder, FrozenChild, FrozenRTree};
pub use knn::{KnnScratch, Neighbor};
pub use metrics::TreeMetrics;
pub use node::{Child, Entry, ItemId, Node, NodeId};
pub use search::SearchScratch;
pub use stats::SearchStats;
pub use tree::RTree;
