//! R-tree configuration: branching factor and split policy.

/// How an overflowing node is split into two (Guttman 1984 §3.5).
///
/// The 1985 paper compares PACK against "Guttman's INSERT" without fixing a
/// split policy; [`SplitPolicy::Quadratic`] is the customary default (and
/// Guttman's own recommendation), and the `ablation_split` experiment in
/// `rtree-bench` sweeps all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Guttman's linear-cost split: pick the two entries with the greatest
    /// normalized separation as seeds, distribute the rest arbitrarily
    /// (here: by least enlargement, in input order).
    Linear,
    /// Guttman's quadratic-cost split: pick the pair wasting the most area
    /// as seeds, then repeatedly assign the entry with the strongest
    /// preference.
    #[default]
    Quadratic,
    /// Exhaustive split: try every 2-partition honouring the minimum fill
    /// and keep the one with the least total area. Exponential in the
    /// branching factor; only permitted for small nodes (`M + 1 ≤ 16`)
    /// and intended for the branching-factor-4 experiments of the paper.
    Exhaustive,
}

/// Branching-factor and fill-factor parameters of an R-tree.
///
/// `max_entries` is the paper's branching factor `M` ("each node of an
/// R-tree with branching factor four, for example, points to a maximum of
/// four descendents"); `min_entries` is Guttman's `m ≤ M/2` ("every node
/// except the root must be m-filled", §3.2 requirement (1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). Must be ≥ 2.
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`). Must satisfy
    /// `1 ≤ m ≤ M/2`.
    pub min_entries: usize,
    /// Node-split policy for dynamic insertion.
    pub split: SplitPolicy,
}

impl RTreeConfig {
    /// The paper's experimental configuration: branching factor 4,
    /// minimum fill 2, quadratic split (§3, §3.5).
    pub const PAPER: RTreeConfig = RTreeConfig {
        max_entries: 4,
        min_entries: 2,
        split: SplitPolicy::Quadratic,
    };

    /// Creates a configuration, validating the Guttman constraints.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 2`, `min_entries < 1`, or
    /// `min_entries > max_entries / 2`.
    pub fn new(max_entries: usize, min_entries: usize, split: SplitPolicy) -> Self {
        assert!(max_entries >= 2, "branching factor must be at least 2");
        assert!(min_entries >= 1, "minimum fill must be at least 1");
        assert!(
            min_entries <= max_entries / 2,
            "Guttman requires m <= M/2 (got m={min_entries}, M={max_entries})"
        );
        if split == SplitPolicy::Exhaustive {
            assert!(
                max_entries < 16,
                "exhaustive split is exponential; limited to M+1 <= 16"
            );
        }
        RTreeConfig {
            max_entries,
            min_entries,
            split,
        }
    }

    /// Configuration with branching factor `m_max` and the conventional
    /// 40% minimum fill (clamped to `M/2`), quadratic split.
    pub fn with_branching(m_max: usize) -> Self {
        let m = ((m_max * 2) / 5).clamp(1, m_max / 2);
        RTreeConfig::new(m_max, m, SplitPolicy::Quadratic)
    }

    /// Same configuration with a different split policy.
    pub fn with_split(self, split: SplitPolicy) -> Self {
        RTreeConfig::new(self.max_entries, self.min_entries, split)
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config() {
        let c = RTreeConfig::PAPER;
        assert_eq!(c.max_entries, 4);
        assert_eq!(c.min_entries, 2);
        assert_eq!(c.split, SplitPolicy::Quadratic);
    }

    #[test]
    #[should_panic(expected = "m <= M/2")]
    fn min_fill_above_half_rejected() {
        RTreeConfig::new(4, 3, SplitPolicy::Linear);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_branching_rejected() {
        RTreeConfig::new(1, 1, SplitPolicy::Linear);
    }

    #[test]
    #[should_panic(expected = "exhaustive")]
    fn exhaustive_limited_to_small_nodes() {
        RTreeConfig::new(50, 20, SplitPolicy::Exhaustive);
    }

    #[test]
    fn with_branching_fill_factor() {
        let c = RTreeConfig::with_branching(50);
        assert_eq!(c.max_entries, 50);
        assert_eq!(c.min_entries, 20);
        let small = RTreeConfig::with_branching(2);
        assert_eq!(small.min_entries, 1);
    }
}
